//! Integration-test host crate; all content lives in `tests/tests/`.
