//! Integration tests for the paper's Theorem 6.1: schemes produced by the
//! full estimation → fragmentation → replication pipeline are Nash
//! equilibria (Definition 6.1), verified by the independent checker.

use nashdb_core::economics::{check_equilibrium, NodeSpec};
use nashdb_core::fragment::{fragment_stats, optimal_fragmentation, GreedyFragmenter};
use nashdb_core::replication::{ClusterScheme, ReplicationPolicy};
use nashdb_core::value::{PricedScan, TupleValueEstimator};
use nashdb_sim::SimRng;

const TABLE: u64 = 1_000_000;
const WINDOW: usize = 50;

fn estimator_after(scans: usize, seed: u64) -> TupleValueEstimator {
    let mut est = TupleValueEstimator::new(WINDOW);
    let mut rng = SimRng::seed_from_u64(seed);
    for _ in 0..scans {
        let a = rng.uniform_u64(0, TABLE - 1);
        let len = rng.uniform_u64(1_000, TABLE / 3);
        est.observe(PricedScan::new(
            a,
            (a + len).min(TABLE),
            0.5 + 4.0 * rng.uniform_f64(),
        ));
    }
    est
}

fn spec() -> NodeSpec {
    NodeSpec::new(30.0, 300_000)
}

#[test]
fn greedy_pipeline_schemes_are_equilibria() {
    for seed in [1u64, 7, 42, 1337] {
        let est = estimator_after(200, seed);
        let chunks = est.chunks(TABLE);
        let mut frag = GreedyFragmenter::new(TABLE, 16);
        frag.run(&chunks, 64);
        let frag = nashdb_core::fragment::split_oversized(&frag.fragmentation(), spec().disk);
        let stats = fragment_stats(&frag, &chunks).unwrap();
        let scheme = ClusterScheme::build(&stats, ReplicationPolicy::new(WINDOW, spec())).unwrap();
        assert_eq!(
            check_equilibrium(&scheme.economic_config()),
            Ok(()),
            "seed {seed}: scheme is not in equilibrium"
        );
    }
}

#[test]
fn optimal_pipeline_schemes_are_equilibria() {
    let est = estimator_after(120, 5);
    let chunks = est.chunks(TABLE);
    let frag = optimal_fragmentation(&chunks, 12).unwrap();
    let frag = nashdb_core::fragment::split_oversized(&frag, spec().disk);
    let stats = fragment_stats(&frag, &chunks).unwrap();
    let scheme = ClusterScheme::build(&stats, ReplicationPolicy::new(WINDOW, spec())).unwrap();
    assert_eq!(check_equilibrium(&scheme.economic_config()), Ok(()));
}

#[test]
fn equilibrium_holds_across_window_evolution() {
    // Keep observing and rebuilding: every intermediate scheme must be an
    // equilibrium for its own window state.
    let mut est = TupleValueEstimator::new(WINDOW);
    let mut rng = SimRng::seed_from_u64(9);
    let mut fragmenter = GreedyFragmenter::new(TABLE, 12);
    for round in 0..10 {
        for _ in 0..25 {
            let a = rng.uniform_u64(0, TABLE - 1);
            let len = rng.uniform_u64(10_000, TABLE / 4);
            est.observe(PricedScan::new(a, (a + len).min(TABLE), 1.0));
        }
        let chunks = est.chunks(TABLE);
        fragmenter.run(&chunks, 8);
        let frag = nashdb_core::fragment::split_oversized(&fragmenter.fragmentation(), spec().disk);
        let stats = fragment_stats(&frag, &chunks).unwrap();
        let scheme = ClusterScheme::build(&stats, ReplicationPolicy::new(WINDOW, spec())).unwrap();
        assert_eq!(
            check_equilibrium(&scheme.economic_config()),
            Ok(()),
            "round {round}"
        );
    }
}

#[test]
fn replica_cap_can_break_equilibrium_but_only_toward_entry() {
    // With a hard replica cap, very hot fragments stay under-replicated:
    // the only violations the checker may report are profitable additions
    // (conditions 2/4), never profitable drops (condition 1).
    let mut est = TupleValueEstimator::new(WINDOW);
    for _ in 0..WINDOW {
        // A single scalding range read by every scan in the window.
        est.observe(PricedScan::new(0, 10_000, 100.0));
    }
    let chunks = est.chunks(TABLE);
    let frag = optimal_fragmentation(&chunks, 4).unwrap();
    let frag = nashdb_core::fragment::split_oversized(&frag, spec().disk);
    let stats = fragment_stats(&frag, &chunks).unwrap();
    let policy = ReplicationPolicy::new(WINDOW, spec()).with_max_replicas(3);
    let scheme = ClusterScheme::build(&stats, policy).unwrap();
    match check_equilibrium(&scheme.economic_config()) {
        Ok(()) => {}
        Err(nashdb_core::economics::EquilibriumViolation::AddProfitable { .. })
        | Err(nashdb_core::economics::EquilibriumViolation::EntryProfitable { .. }) => {}
        Err(other) => panic!("unexpected violation under a cap: {other:?}"),
    }
}
