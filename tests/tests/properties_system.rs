//! Property tests over the routing and cluster layers.

use proptest::prelude::*;

use nashdb_baselines::{GreedySetCover, ShortestQueue};
use nashdb_cluster::{ClusterConfig, ClusterSim, DriverEvent, QueryRequest, ScanRange};
use nashdb_core::ids::{FragmentId, NodeId, TableId};
use nashdb_core::routing::{
    reference, Assignment, FragmentRequest, MaxOfMins, PowerOfTwoChoices, QueueView, RouteError,
    ScanRouter,
};
use nashdb_core::transition::{plan_transition, IntervalSet};
use nashdb_sim::{SimDuration, SimTime};

// ---------------------------------------------------------------------------
// Routers
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Problem {
    requests: Vec<FragmentRequest>,
    waits: Vec<u64>,
}

fn arb_problem() -> impl Strategy<Value = Problem> {
    (2usize..8).prop_flat_map(|nodes| {
        let reqs = proptest::collection::vec(
            (
                1u64..100_000,
                proptest::collection::hash_set(0..nodes as u64, 1..=nodes),
            ),
            1..20,
        );
        let waits = proptest::collection::vec(0u64..1_000_000, nodes..=nodes);
        (reqs, waits).prop_map(|(reqs, waits)| Problem {
            requests: reqs
                .into_iter()
                .enumerate()
                .map(|(i, (size, cands))| FragmentRequest {
                    fragment: FragmentId(i as u64),
                    size,
                    candidates: cands.into_iter().map(NodeId).collect(),
                })
                .collect(),
            waits,
        })
    })
}

/// A whole batch of scans over one node universe: mixed scan sizes
/// (including empty scans) with globally distinct fragment ids, the
/// precondition under which the incremental router is exact.
fn arb_batch() -> impl Strategy<Value = (Vec<Vec<FragmentRequest>>, Vec<u64>)> {
    (2usize..10).prop_flat_map(|nodes| {
        let scans = proptest::collection::vec(
            proptest::collection::vec(
                (
                    1u64..100_000,
                    proptest::collection::hash_set(0..nodes as u64, 1..=nodes),
                ),
                0..8,
            ),
            1..25,
        );
        let waits = proptest::collection::vec(0u64..1_000_000, nodes..=nodes);
        (scans, waits).prop_map(|(scans, waits)| {
            let mut next = 0u64;
            let scans = scans
                .into_iter()
                .map(|reqs| {
                    reqs.into_iter()
                        .map(|(size, cands)| {
                            next += 1;
                            FragmentRequest {
                                fragment: FragmentId(next),
                                size,
                                candidates: cands.into_iter().map(NodeId).collect(),
                            }
                        })
                        .collect()
                })
                .collect();
            (scans, waits)
        })
    })
}

fn check_router(router: &dyn ScanRouter, p: &Problem) -> Result<(), TestCaseError> {
    let mut queues = QueueView::from_waits(p.waits.clone());
    let out: Vec<Assignment> = match router.route(&p.requests, &mut queues) {
        Ok(out) => out,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "router {} errored: {e}",
                router.name()
            )))
        }
    };
    // Every request assigned exactly once, to one of its candidates.
    prop_assert_eq!(out.len(), p.requests.len(), "router {}", router.name());
    for req in &p.requests {
        let assigned: Vec<&Assignment> =
            out.iter().filter(|a| a.fragment == req.fragment).collect();
        prop_assert_eq!(assigned.len(), 1);
        prop_assert!(req.candidates.contains(&assigned[0].node));
    }
    // Work is conserved: total queue growth equals total request size.
    let before: u64 = p.waits.iter().sum();
    let after: u64 = (0..p.waits.len())
        .map(|n| queues.wait(NodeId(n as u64)))
        .sum();
    let work: u64 = p.requests.iter().map(|r| r.size).sum();
    prop_assert_eq!(after - before, work);
    Ok(())
}

proptest! {
    #[test]
    fn all_routers_satisfy_contract(p in arb_problem()) {
        check_router(&MaxOfMins::new(50_000), &p)?;
        check_router(&ShortestQueue, &p)?;
        check_router(&GreedySetCover, &p)?;
        check_router(&PowerOfTwoChoices::new(50_000, 9), &p)?;
    }

    /// Max-of-mins never assigns a request to a node strictly worse than
    /// every alternative *at assignment time* is hard to check post hoc, but
    /// a weaker global bound holds: its makespan (max queue) never exceeds
    /// total work + max initial wait, and is no worse than 2x the best
    /// possible balance over its own placements.
    #[test]
    fn max_of_mins_makespan_bounded(p in arb_problem()) {
        let mut queues = QueueView::from_waits(p.waits.clone());
        let _ = MaxOfMins::new(0).route(&p.requests, &mut queues).unwrap();
        let max_after = (0..p.waits.len())
            .map(|n| queues.wait(NodeId(n as u64)))
            .max()
            .unwrap();
        let total: u64 = p.requests.iter().map(|r| r.size).sum();
        let max_before = *p.waits.iter().max().unwrap();
        prop_assert!(max_after <= max_before + total);
    }

    /// The incremental Max-of-mins router is an exact optimization: for any
    /// problem (varied ϕ, candidate lists, pre-loaded queues) it produces
    /// the same assignments, in the same order, with the same final queue
    /// state, as the naive Eq. 11 reference loop it replaced.
    #[test]
    fn max_of_mins_matches_naive_reference(p in arb_problem(), phi in 0u64..200_000) {
        let mut fast_q = QueueView::from_waits(p.waits.clone());
        let mut ref_q = QueueView::from_waits(p.waits.clone());
        let fast = MaxOfMins::new(phi).route(&p.requests, &mut fast_q).unwrap();
        let naive = reference::max_of_mins(phi, &p.requests, &mut ref_q).unwrap();
        prop_assert_eq!(&fast, &naive, "phi {}", phi);
        for n in 0..p.waits.len() {
            let n = NodeId(n as u64);
            prop_assert_eq!(fast_q.wait(n), ref_q.wait(n));
        }
    }

    /// Batched routing is an exact optimization of per-scan routing: for
    /// any batch (varied ϕ, scan count, empty scans, candidate lists,
    /// pre-loaded queues) `route_batch` produces the same per-scan
    /// assignments, in the same order, with the same final queue state as
    /// sequential `route` calls, the naive Eq. 11 reference loop, and the
    /// pre-batching per-scan incremental reference.
    #[test]
    fn route_batch_matches_sequential_and_reference(
        (scans, waits) in arb_batch(),
        phi in 0u64..200_000,
    ) {
        let router = MaxOfMins::new(phi);
        let mut q_batch = QueueView::from_waits(waits.clone());
        let batch = router.route_batch(scans.clone(), &mut q_batch).unwrap();
        let mut q_seq = QueueView::from_waits(waits.clone());
        let seq: Vec<Vec<Assignment>> = scans
            .iter()
            .map(|s| router.route(s, &mut q_seq).unwrap())
            .collect();
        let mut q_ref = QueueView::from_waits(waits.clone());
        let naive = reference::max_of_mins_batch(phi, &scans, &mut q_ref).unwrap();
        let mut q_old = QueueView::from_waits(waits.clone());
        let per_scan: Vec<Vec<Assignment>> = scans
            .iter()
            .map(|s| reference::incremental_per_scan(phi, s, &mut q_old).unwrap())
            .collect();
        prop_assert_eq!(&batch, &seq, "phi {}", phi);
        prop_assert_eq!(&batch, &naive, "phi {}", phi);
        prop_assert_eq!(&batch, &per_scan, "phi {}", phi);
        for n in 0..waits.len() {
            let n = NodeId(n as u64);
            prop_assert_eq!(q_batch.wait(n), q_seq.wait(n));
            prop_assert_eq!(q_batch.wait(n), q_ref.wait(n));
            prop_assert_eq!(q_batch.wait(n), q_old.wait(n));
        }
    }

    /// Any request with an empty candidate list is rejected up front as a
    /// typed error by every router, before any queue mutation.
    #[test]
    fn routers_reject_unroutable_requests(p in arb_problem(), hole in 0usize..1024) {
        let mut reqs = p.requests.clone();
        let victim = hole % reqs.len();
        reqs[victim].candidates.clear();
        let expected = RouteError::NoReplicas { fragment: reqs[victim].fragment };
        for router in [
            &MaxOfMins::new(50_000) as &dyn ScanRouter,
            &ShortestQueue,
            &GreedySetCover,
            &PowerOfTwoChoices::new(50_000, 9),
        ] {
            let mut queues = QueueView::from_waits(p.waits.clone());
            prop_assert_eq!(router.route(&reqs, &mut queues), Err(expected));
            for n in 0..p.waits.len() {
                prop_assert_eq!(queues.wait(NodeId(n as u64)), p.waits[n]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cluster simulator
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SimPlan {
    nodes: usize,
    queries: Vec<(u64, Vec<(usize, u64)>)>, // (arrival secs, reads (node, tuples))
}

fn arb_sim_plan() -> impl Strategy<Value = SimPlan> {
    (1usize..5).prop_flat_map(|nodes| {
        proptest::collection::vec(
            (
                0u64..600,
                proptest::collection::vec((0..nodes, 1u64..500_000), 1..6),
            ),
            1..25,
        )
        .prop_map(move |mut queries| {
            queries.sort_by_key(|q| q.0);
            SimPlan { nodes, queries }
        })
    })
}

proptest! {
    /// Conservation and sanity on the simulator: every query completes, read
    /// throughput equals dispatched tuples, latency is at least the largest
    /// single read's service time, and cost is positive.
    #[test]
    fn cluster_conserves_work(plan in arb_sim_plan()) {
        let tps = 100_000.0;
        let mut sim = ClusterSim::new(ClusterConfig {
            throughput_tps: tps,
            node_cost_per_hour: 60.0,
            metrics_bucket: SimDuration::from_secs(60),
            network: None,
        });
        let sets: Vec<IntervalSet> = (0..plan.nodes)
            .map(|i| IntervalSet::from_intervals([(i as u64 * 10, i as u64 * 10 + 5)]))
            .collect();
        sim.reconfigure(&plan_transition(&[], &sets)).unwrap();

        for (at, _) in &plan.queries {
            sim.schedule_query(
                SimTime::from_secs(*at),
                QueryRequest {
                    price: 1.0,
                    scans: vec![ScanRange::new(TableId(0), 0, 1)],
                    tag: 0,
                },
            );
        }
        let mut idx = 0usize;
        let mut completed = 0usize;
        loop {
            match sim.next_event() {
                DriverEvent::QueryArrived { id, .. } => {
                    let reads: Vec<(NodeId, u64)> = plan.queries[idx]
                        .1
                        .iter()
                        .map(|&(n, t)| (NodeId(n as u64), t))
                        .collect();
                    idx += 1;
                    sim.dispatch(id, &reads).unwrap();
                }
                DriverEvent::QueryCompleted { id, latency } => {
                    completed += 1;
                    // Latency at least the biggest read of that query.
                    let q = &plan.queries[usize::try_from(id.get()).unwrap()];
                    let biggest = q.1.iter().map(|&(_, t)| t).max().unwrap();
                    let floor = biggest as f64 / tps;
                    prop_assert!(
                        latency.as_secs_f64() >= floor - 1e-6,
                        "latency {} below service floor {}",
                        latency.as_secs_f64(),
                        floor
                    );
                }
                DriverEvent::Wakeup { .. } => {}
                DriverEvent::Finished => break,
                // No faults are scheduled in this property, so failure
                // events cannot occur.
                _ => {}
            }
        }
        prop_assert_eq!(completed, plan.queries.len());
        let metrics = sim.finish();
        prop_assert_eq!(metrics.queries.len(), plan.queries.len());
        let dispatched: u64 = plan
            .queries
            .iter()
            .flat_map(|(_, reads)| reads.iter().map(|&(_, t)| t))
            .sum();
        prop_assert!((metrics.read_throughput.total() - dispatched as f64).abs() < 0.5);
        prop_assert!(metrics.total_cost > 0.0);
        prop_assert_eq!(metrics.peak_nodes, plan.nodes);
    }
}

// ---------------------------------------------------------------------------
// Invariant audits, end to end (feature `invariant-audit`)
// ---------------------------------------------------------------------------

/// Drives the full NashDB pipeline with the audit hooks compiled in: every
/// reconfiguration re-checks the value tree, fragmentation, packing, and
/// transition invariants inside the driver/distributor, and the resulting
/// schemes are additionally audited here at the economics layer.
#[cfg(feature = "invariant-audit")]
mod audit_system {
    use super::*;
    use nashdb::{run_workload, MaxOfMins, NashDbConfig, NashDbDistributor, RunConfig};
    use nashdb_core::audit::{audit_equilibrium, audit_packing, audit_transition};
    use nashdb_core::economics::NodeSpec;
    use nashdb_core::fragment::{fragment_stats, optimal_fragmentation};
    use nashdb_core::replication::{ClusterScheme, ReplicationPolicy};
    use nashdb_core::value::{Chunk, TupleValueEstimator};
    use nashdb_workload::bernoulli::{workload as bernoulli, BernoulliConfig};

    proptest! {
        /// Whole runs complete with every driver/distributor audit hook
        /// armed: any invariant breach inside the pipeline would abort the
        /// run, so completion is the assertion.
        #[test]
        fn audited_runs_complete(queries in 20usize..60, price in 1.0f64..8.0) {
            let w = bernoulli(&BernoulliConfig {
                size_gb: 2,
                queries,
                price,
                ..BernoulliConfig::default()
            });
            let run = RunConfig {
                cluster: ClusterConfig {
                    throughput_tps: 1_000_000.0,
                    node_cost_per_hour: 100.0,
                    metrics_bucket: SimDuration::from_secs(600),
                    network: None,
                },
                ..RunConfig::default()
            };
            let cfg = NashDbConfig {
                spec: NodeSpec::new(100.0, 1_000_000),
                max_frags_per_table: 12,
                ..NashDbConfig::default()
            };
            let mut nash = NashDbDistributor::new(&w.db, cfg);
            let m = run_workload(&w, &mut nash, &MaxOfMins::new(run.phi_tuples()), &run);
            prop_assert_eq!(m.queries.len(), queries);
        }

        /// Schemes built from estimator-derived statistics pass the packing
        /// and equilibrium audits, and transitions between the schemes of
        /// two different workloads pass the transition audit.
        #[test]
        fn estimated_schemes_audit_clean(
            scans in proptest::collection::vec((0u64..900, 1u64..100, 0.5f64..4.0), 4..40),
            shift in 0u64..500,
        ) {
            let table = 1_000u64;
            let build = |offset: u64| {
                let mut est = TupleValueEstimator::new(16);
                for &(s, l, p) in &scans {
                    let start = (s + offset) % (table - 1);
                    let end = (start + l).min(table);
                    est.observe(nashdb_core::value::PricedScan::new(start, end, p));
                }
                let chunks: Vec<Chunk> = est.chunks(table);
                let frag = optimal_fragmentation(&chunks, 5).unwrap();
                let stats = fragment_stats(&frag, &chunks).unwrap();
                let policy = ReplicationPolicy::new(16, NodeSpec::new(500.0, table));
                ClusterScheme::build(&stats, policy).expect("fragments fit one node")
            };
            let a = build(0);
            let b = build(shift);
            for s in [&a, &b] {
                prop_assert!(
                    audit_packing(&s.nodes, &s.decisions, s.policy.spec.disk).is_ok()
                );
                prop_assert!(audit_equilibrium(&s.economic_config()).is_ok());
            }
            let old = nashdb_core::transition::scheme_intervals(&a);
            let new = nashdb_core::transition::scheme_intervals(&b);
            let plan = nashdb_core::transition::plan_transition(&old, &new);
            prop_assert!(audit_transition(&old, &new, &plan).is_ok());
        }
    }
}
