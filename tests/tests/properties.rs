//! Property-based tests (proptest) over the core invariants promised in
//! DESIGN.md §6.

use std::collections::HashSet;

use proptest::prelude::*;

use nashdb_core::fragment::{
    fragment_stats, optimal_fragmentation, split_oversized, ChunkPrefix, Fragmentation,
    GreedyFragmenter,
};
use nashdb_core::replication::{decide_replicas, pack_bffd, ReplicationPolicy};
use nashdb_core::transition::{hungarian, plan_transition, IntervalSet, NodeMove};
use nashdb_core::value::{AvlValueTree, BTreeValueTree, Chunk, PricedScan, TupleValueEstimator};
use nashdb_core::NodeSpec;

// ---------------------------------------------------------------------------
// Value estimation
// ---------------------------------------------------------------------------

const TABLE: u64 = 10_000;

fn arb_scan() -> impl Strategy<Value = PricedScan> {
    (0..TABLE - 1, 1..TABLE / 2, 0.0f64..10.0)
        .prop_map(|(start, len, price)| PricedScan::new(start, (start + len).min(TABLE), price))
}

proptest! {
    /// The AVL tree and the BTreeMap reference are observationally
    /// equivalent under any insert/evict sequence.
    #[test]
    fn avl_matches_btree_reference(scans in proptest::collection::vec(arb_scan(), 1..120),
                                   window in 1usize..40) {
        let mut avl: TupleValueEstimator<AvlValueTree> =
            TupleValueEstimator::with_backend(window);
        let mut bt: TupleValueEstimator<BTreeValueTree> =
            TupleValueEstimator::with_backend(window);
        for s in &scans {
            avl.observe(*s);
            bt.observe(*s);
            let (ca, cb) = (avl.chunks(TABLE), bt.chunks(TABLE));
            prop_assert_eq!(ca.len(), cb.len());
            for (a, b) in ca.iter().zip(&cb) {
                prop_assert_eq!((a.start, a.end), (b.start, b.end));
                prop_assert!((a.value - b.value).abs() < 1e-9);
            }
        }
    }

    /// Chunks tile the table exactly, and every value is nonnegative. The
    /// total value equals the windowed per-scan average income.
    #[test]
    fn chunks_tile_table_and_conserve_value(
        scans in proptest::collection::vec(arb_scan(), 1..80),
        window in 1usize..30,
    ) {
        let mut est = TupleValueEstimator::new(window);
        let mut windowed: Vec<PricedScan> = Vec::new();
        for s in &scans {
            est.observe(*s);
            windowed.push(*s);
            if windowed.len() > window {
                windowed.remove(0);
            }
        }
        let chunks = est.chunks(TABLE);
        prop_assert_eq!(chunks.first().unwrap().start, 0);
        prop_assert_eq!(chunks.last().unwrap().end, TABLE);
        for w in chunks.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        let total: f64 = chunks.iter().map(Chunk::sum).sum();
        let expected: f64 = windowed.iter().map(|s| s.price).sum::<f64>()
            / windowed.len() as f64;
        prop_assert!((total - expected).abs() < 1e-6 * (1.0 + expected),
            "total {} vs windowed mean price {}", total, expected);
        prop_assert!(chunks.iter().all(|c| c.value >= 0.0));
    }
}

// ---------------------------------------------------------------------------
// Fragmentation
// ---------------------------------------------------------------------------

fn arb_chunks() -> impl Strategy<Value = Vec<Chunk>> {
    proptest::collection::vec((1u64..500, 0.0f64..5.0), 1..24).prop_map(|parts| {
        let mut chunks = Vec::with_capacity(parts.len());
        let mut pos = 0;
        for (len, value) in parts {
            chunks.push(Chunk {
                start: pos,
                end: pos + len,
                value,
            });
            pos += len;
        }
        chunks
    })
}

proptest! {
    /// Optimal ≤ greedy ≤ single-fragment error, and all are nonnegative.
    #[test]
    fn error_ordering(chunks in arb_chunks(), k in 1usize..10) {
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        let table = prefix.table_len();
        let single = Fragmentation::single(table).total_error(&prefix);
        let opt = optimal_fragmentation(&chunks, k).unwrap().total_error(&prefix);
        let mut g = GreedyFragmenter::new(table, k);
        g.run(&chunks, 8 * k);
        let greedy = g.fragmentation().total_error(&prefix);
        prop_assert!(opt >= 0.0);
        prop_assert!(opt <= greedy + 1e-9 + 1e-9 * single);
        prop_assert!(greedy <= single + 1e-9 + 1e-9 * single);
    }

    /// Greedy steps never lose coverage or exceed the cap, and error never
    /// increases along the trajectory.
    #[test]
    fn greedy_trajectory_is_sound(chunks in arb_chunks(), k in 1usize..10) {
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        let table = prefix.table_len();
        let mut g = GreedyFragmenter::new(table, k);
        let mut prev = g.fragmentation().total_error(&prefix);
        for _ in 0..4 * k {
            if g.step(&chunks) == nashdb_core::fragment::StepOutcome::Stable {
                break;
            }
            let f = g.fragmentation();
            prop_assert!(f.len() <= k);
            prop_assert_eq!(f.table_len(), table);
            let err = f.total_error(&prefix);
            prop_assert!(err <= prev + 1e-9 + 1e-9 * prev.abs());
            prev = err;
        }
    }

    /// split_oversized caps sizes, preserves coverage, and never raises the
    /// error objective.
    #[test]
    fn split_oversized_invariants(chunks in arb_chunks(), max_size in 1u64..400) {
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        let table = prefix.table_len();
        let base = Fragmentation::single(table);
        let capped = split_oversized(&base, max_size);
        prop_assert_eq!(capped.table_len(), table);
        prop_assert!(capped.ranges().all(|r| r.size() <= max_size));
        prop_assert!(capped.total_error(&prefix) <= base.total_error(&prefix) + 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Replication & packing
// ---------------------------------------------------------------------------

proptest! {
    /// BFFD output: every replica placed, no duplicates per node, capacity
    /// respected.
    #[test]
    fn bffd_invariants(chunks in arb_chunks(), disk in 500u64..5_000) {
        let frag = split_oversized(
            &Fragmentation::single(ChunkPrefix::new(&chunks).unwrap().table_len()),
            disk,
        );
        let stats = fragment_stats(&frag, &chunks).unwrap();
        let policy = ReplicationPolicy::new(20, NodeSpec::new(10.0, disk))
            .with_max_replicas(12);
        let decisions = decide_replicas(&stats, &policy);
        let nodes = pack_bffd(&decisions, disk).unwrap();
        let mut placed = vec![0u64; decisions.len()];
        for frags in &nodes {
            let mut seen = HashSet::new();
            let mut used = 0;
            for f in frags {
                prop_assert!(seen.insert(*f), "duplicate replica on node");
                let d = decisions.iter().find(|d| d.id == *f).unwrap();
                used += d.range.size();
                placed[usize::try_from(f.get()).unwrap()] += 1;
            }
            prop_assert!(used <= disk);
        }
        for (d, &p) in decisions.iter().zip(&placed) {
            prop_assert_eq!(d.replicas, p, "fragment {} placement", d.id);
        }
    }

    /// Replica decisions never drop below one and respect the cap; higher
    /// value never means fewer replicas (monotonicity in V).
    #[test]
    fn replica_decisions_monotone(value in 0.0f64..50.0, size in 1u64..100_000) {
        let spec = NodeSpec::new(25.0, 200_000);
        let policy = ReplicationPolicy::new(50, spec).with_max_replicas(64);
        let mk = |v: f64| nashdb_core::fragment::FragmentStats {
            id: nashdb_core::FragmentId(0),
            range: nashdb_core::fragment::FragmentRange::new(0, size),
            value: v,
            error: 0.0,
        };
        let lo = decide_replicas(&[mk(value)], &policy)[0].replicas;
        let hi = decide_replicas(&[mk(value * 2.0)], &policy)[0].replicas;
        prop_assert!(lo >= 1);
        prop_assert!(hi >= lo);
        prop_assert!(hi <= 64);
    }
}

// ---------------------------------------------------------------------------
// Transitions
// ---------------------------------------------------------------------------

fn arb_interval_set() -> impl Strategy<Value = IntervalSet> {
    proptest::collection::vec((0u64..5_000, 1u64..2_000), 0..6)
        .prop_map(|v| IntervalSet::from_intervals(v.into_iter().map(|(s, l)| (s, s + l))))
}

proptest! {
    /// Interval-set algebra: |A∩B| ≤ min(|A|,|B|), |A−B| + |A∩B| = |A|, and
    /// the union is no smaller than either side.
    #[test]
    fn interval_set_algebra(a in arb_interval_set(), b in arb_interval_set()) {
        let inter = a.intersection_len(&b);
        prop_assert!(inter <= a.len().min(b.len()));
        prop_assert_eq!(a.difference_len(&b) + inter, a.len());
        let u = a.union(&b);
        prop_assert!(u.len() >= a.len().max(b.len()));
        prop_assert!(u.len() <= a.len() + b.len());
    }

    /// The Hungarian matching never exceeds the identity or any single
    /// random permutation's cost.
    #[test]
    fn hungarian_not_worse_than_samples(
        n in 1usize..7,
        seed in 0u64..1_000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cost: Vec<Vec<u64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0..10_000u64)).collect())
            .collect();
        let (_, best) = hungarian(&cost).unwrap();
        let identity: u64 = (0..n).map(|i| cost[i][i]).sum();
        prop_assert!(best <= identity);
        // A few random permutations.
        for _ in 0..5 {
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let c: u64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            prop_assert!(best <= c);
        }
    }

    /// Transition plans conserve nodes: every old node is reused or
    /// decommissioned, every new node is reused-into or provisioned, and
    /// reuse transfer never exceeds the target node's size.
    #[test]
    fn transition_plans_conserve_nodes(
        old in proptest::collection::vec(arb_interval_set(), 0..6),
        new in proptest::collection::vec(arb_interval_set(), 0..6),
    ) {
        let plan = plan_transition(&old, &new);
        let mut old_seen = HashSet::new();
        let mut new_seen = HashSet::new();
        for m in &plan.moves {
            match *m {
                NodeMove::Reuse { old: o, new: n, transfer } => {
                    prop_assert!(old_seen.insert(o));
                    prop_assert!(new_seen.insert(n));
                    prop_assert!(transfer <= new[usize::try_from(n.get()).unwrap()].len());
                }
                NodeMove::Provision { new: n, transfer } => {
                    prop_assert!(new_seen.insert(n));
                    prop_assert_eq!(transfer, new[usize::try_from(n.get()).unwrap()].len());
                }
                NodeMove::Decommission { old: o } => {
                    prop_assert!(old_seen.insert(o));
                }
            }
        }
        prop_assert_eq!(old_seen.len(), old.len());
        prop_assert_eq!(new_seen.len(), new.len());
        // Identity transitions are free.
        if old == new {
            prop_assert_eq!(plan.total_transfer, 0);
        }
    }
}
