//! Cross-crate integration tests: the full NashDB pipeline against the
//! simulated cluster, on every workload family.

use nashdb::{run_workload, MaxOfMins, NashDbConfig, NashDbDistributor, RunConfig};
use nashdb_baselines::{
    GreedySetCover, HypergraphDistributor, ShortestQueue, ThresholdDistributor,
};
use nashdb_cluster::ClusterConfig;
use nashdb_core::economics::NodeSpec;
use nashdb_core::routing::ScanRouter;
use nashdb_sim::SimDuration;
use nashdb_workload::bernoulli::{workload as bernoulli, BernoulliConfig};
use nashdb_workload::random::{workload as random, RandomConfig};
use nashdb_workload::tpch::{workload as tpch, TpchConfig};
use nashdb_workload::{realistic, Workload};

fn cluster() -> ClusterConfig {
    ClusterConfig {
        throughput_tps: 500_000.0,
        node_cost_per_hour: 50.0,
        metrics_bucket: SimDuration::from_secs(600),
        network: None,
    }
}

fn nash_cfg(disk: u64) -> NashDbConfig {
    NashDbConfig {
        window: 50,
        spec: NodeSpec::new(50.0, disk),
        max_frags_per_table: 24,
        max_fragment_tuples: disk / 4,
        ..NashDbConfig::default()
    }
}

fn run_nash(w: &Workload, disk: u64) -> nashdb_cluster::Metrics {
    let run = RunConfig {
        cluster: cluster(),
        reconfig_interval: SimDuration::from_secs(3600),
        ..RunConfig::default()
    };
    let mut dist = NashDbDistributor::new(&w.db, nash_cfg(disk));
    run_workload(w, &mut dist, &MaxOfMins::new(run.phi_tuples()), &run)
}

#[test]
fn tpch_pipeline_completes_all_queries() {
    let w = tpch(&TpchConfig {
        size_gb: 10,
        rounds: 2,
        ..TpchConfig::default()
    });
    let m = run_nash(&w, 2_000_000);
    assert_eq!(m.queries.len(), w.queries.len());
    assert!(m.total_cost > 0.0);
    assert!(m.peak_nodes >= 1);
}

#[test]
fn bernoulli_pipeline_completes_all_queries() {
    let w = bernoulli(&BernoulliConfig {
        size_gb: 5,
        queries: 120,
        spacing: SimDuration::from_secs(10),
        ..BernoulliConfig::default()
    });
    let m = run_nash(&w, 1_000_000);
    assert_eq!(m.queries.len(), 120);
    // At this arrival rate the suffix reads (a few GB at 0.5 GB/s-tuples)
    // must not queue indefinitely; a full-table scan would take 10 s.
    assert!(
        m.mean_latency_secs() < 30.0,
        "latency {}",
        m.mean_latency_secs()
    );
}

#[test]
fn random_dynamic_reconfigures_hourly() {
    let w = random(&RandomConfig {
        size_gb: 5,
        queries: 100,
        duration: SimDuration::from_secs(6 * 3600),
        ..RandomConfig::default()
    });
    let m = run_nash(&w, 1_000_000);
    assert_eq!(m.queries.len(), 100);
    // Initial provision + 5 hourly wakeups (the last arrivals are before
    // hour 6).
    assert!(m.reconfigurations >= 5, "{} reconfigs", m.reconfigurations);
}

#[test]
fn realistic_generators_run_end_to_end() {
    // Scaled-down check that all three Table-1 analogues drive the full
    // pipeline; the real sizes run in the bench harness.
    let mut w = realistic::real1_dynamic(3);
    w.queries.truncate(80);
    let m = run_nash(&w, w.db.total_tuples() / 6);
    assert_eq!(m.queries.len(), 80);
}

#[test]
fn all_routers_complete_the_same_workload() {
    let w = bernoulli(&BernoulliConfig {
        size_gb: 4,
        queries: 80,
        ..BernoulliConfig::default()
    });
    let run = RunConfig {
        cluster: cluster(),
        ..RunConfig::default()
    };
    let routers: Vec<Box<dyn ScanRouter>> = vec![
        Box::new(MaxOfMins::new(run.phi_tuples())),
        Box::new(ShortestQueue),
        Box::new(GreedySetCover),
    ];
    let mut spans = Vec::new();
    for router in &routers {
        let mut dist = NashDbDistributor::new(&w.db, nash_cfg(1_000_000));
        let m = run_workload(&w, &mut dist, router.as_ref(), &run);
        assert_eq!(m.queries.len(), 80, "router {}", router.name());
        spans.push(m.mean_span());
    }
    // Greedy set cover minimizes span; it must be the narrowest.
    assert!(
        spans[2] <= spans[0] && spans[2] <= spans[1],
        "greedy-sc span {} vs max-of-mins {} / shortest-queue {}",
        spans[2],
        spans[0],
        spans[1]
    );
}

#[test]
fn baseline_distributors_run_end_to_end() {
    let w = bernoulli(&BernoulliConfig {
        size_gb: 4,
        queries: 60,
        ..BernoulliConfig::default()
    });
    let run = RunConfig {
        cluster: cluster(),
        ..RunConfig::default()
    };
    let disk = 1_000_000;

    let mut hyper = HypergraphDistributor::new(&w.db, 6, disk, 50).with_block(disk / 4);
    let m = run_workload(&w, &mut hyper, &MaxOfMins::new(run.phi_tuples()), &run);
    assert_eq!(m.queries.len(), 60);

    let mut thresh = ThresholdDistributor::new(&w.db, 6, disk, 50).with_block(disk / 4);
    let m = run_workload(&w, &mut thresh, &MaxOfMins::new(run.phi_tuples()), &run);
    assert_eq!(m.queries.len(), 60);
    assert_eq!(m.peak_nodes, 6, "threshold clusters are fixed-size");
}

#[test]
fn determinism_across_identical_runs() {
    let w = tpch(&TpchConfig {
        size_gb: 5,
        rounds: 1,
        ..TpchConfig::default()
    });
    let a = run_nash(&w, 1_000_000);
    let b = run_nash(&w, 1_000_000);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.total_transfer(), b.total_transfer());
    assert!((a.total_cost - b.total_cost).abs() < 1e-9);
}

#[test]
fn prices_buy_performance_end_to_end() {
    // The paper's central promise, checked on the whole stack.
    let mk = |price: f64| {
        bernoulli(&BernoulliConfig {
            size_gb: 5,
            queries: 150,
            price,
            spacing: SimDuration::from_secs(5),
            ..BernoulliConfig::default()
        })
    };
    let run = RunConfig {
        cluster: cluster(),
        warmup_queries: 75,
        ..RunConfig::default()
    };
    let go = |w: &Workload| {
        let mut dist = NashDbDistributor::new(&w.db, nash_cfg(1_000_000));
        run_workload(w, &mut dist, &MaxOfMins::new(run.phi_tuples()), &run)
    };
    let cheap = go(&mk(1.0));
    let pricey = go(&mk(16.0));
    assert!(
        pricey.peak_nodes > cheap.peak_nodes,
        "higher prices must provision more: {} vs {}",
        pricey.peak_nodes,
        cheap.peak_nodes
    );
    assert!(
        pricey.mean_latency_secs() <= cheap.mean_latency_secs(),
        "higher prices must not be slower: {} vs {}",
        pricey.mean_latency_secs(),
        cheap.mean_latency_secs()
    );
}
