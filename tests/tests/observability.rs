//! Driver-level observability coverage: a full pipeline run under an
//! `ObsSession` must leave at least one metric from every stage, with a
//! well-formed span hierarchy, and serialize through the snapshot schema.

use nashdb::{run_workload, NashDbConfig, NashDbDistributor, RunConfig};
use nashdb_cluster::ClusterConfig;
use nashdb_core::economics::NodeSpec;
use nashdb_core::routing::MaxOfMins;
use nashdb_obs::{ObsSession, ObsSnapshot};
use nashdb_sim::SimDuration;
use nashdb_workload::bernoulli::{workload as bernoulli, BernoulliConfig};

/// One metric-name prefix per pipeline stage.
const STAGES: &[&str] = &[
    "value_tree.",
    "fragment.",
    "replication.",
    "packing.",
    "transition.",
    "routing.",
    "cluster.",
];

fn run_under_session() -> ObsSnapshot {
    let w = bernoulli(&BernoulliConfig {
        size_gb: 2,
        queries: 80,
        spacing: SimDuration::from_secs(10),
        ..BernoulliConfig::default()
    });
    let run = RunConfig {
        cluster: ClusterConfig {
            throughput_tps: 1_000_000.0,
            node_cost_per_hour: 100.0,
            metrics_bucket: SimDuration::from_secs(600),
            network: None,
        },
        reconfig_interval: SimDuration::from_secs(300),
        ..RunConfig::default()
    };
    let cfg = NashDbConfig {
        spec: NodeSpec::new(100.0, 2_000_000),
        max_frags_per_table: 16,
        ..NashDbConfig::default()
    };
    let session = ObsSession::start();
    let mut nash = NashDbDistributor::new(&w.db, cfg);
    let m = run_workload(&w, &mut nash, &MaxOfMins::new(run.phi_tuples()), &run);
    assert_eq!(m.queries.len(), 80, "workload must complete");
    session.finish()
}

#[test]
fn every_pipeline_stage_emits_at_least_one_metric() {
    let snap = run_under_session();
    let missing = snap.missing_stages(STAGES);
    assert!(missing.is_empty(), "stages without metrics: {missing:?}");
    // Spot-check one concrete metric per stage, so a rename that keeps the
    // prefix but loses the signal still fails loudly.
    for name in [
        "value_tree.inserts",
        "fragment.greedy_runs",
        "replication.decisions",
        "packing.placements",
        "transition.plans",
        "routing.scans_routed",
        "cluster.queries_completed",
    ] {
        assert!(
            snap.counter(name).is_some_and(|v| v > 0),
            "expected counter {name} > 0"
        );
    }
}

#[test]
fn driver_spans_nest_and_account() {
    let snap = run_under_session();
    let pipeline = snap.span("pipeline").expect("root span");
    assert_eq!(pipeline.count, 1);
    // Direct children of the root must fit inside it.
    let child_total: u64 = [
        "pipeline/provision",
        "pipeline/query",
        "pipeline/reconfigure",
    ]
    .iter()
    .filter_map(|p| snap.span(p))
    .map(|s| s.total_ns)
    .sum();
    assert!(
        child_total <= pipeline.total_ns,
        "children ({child_total} ns) exceed root ({} ns)",
        pipeline.total_ns
    );
    assert_eq!(pipeline.child_ns, child_total);
    // The per-query span fired once per query, and its route child too.
    let query = snap.span("pipeline/query").expect("query span");
    assert_eq!(query.count, 80);
    let route = snap.span("pipeline/query/route").expect("route span");
    assert_eq!(route.count, 80);
    assert_eq!(query.child_ns, route.total_ns);
}

/// Two same-seed driver runs — batched arrivals, routed through
/// `route_batch` over the persistent pool — must leave byte-identical
/// scrubbed snapshots: every counter, histogram, and span count is a pure
/// function of the seed, whatever the host's core count.
#[test]
fn same_seed_runs_leave_byte_identical_scrubbed_snapshots() {
    let snapshot = || {
        let mut snap = run_under_session();
        snap.scrub_timings();
        snap.to_json_string()
    };
    assert_eq!(snapshot(), snapshot());
}

#[test]
fn snapshot_round_trips_through_schema() {
    let mut snap = run_under_session();
    snap.scrub_timings();
    let json = snap.to_json_string();
    let parsed = ObsSnapshot::from_json_str(&json).expect("schema-valid");
    assert_eq!(parsed, snap);
    assert_eq!(parsed.to_json_string(), json);
}
