//! Failure-injection integration coverage: the driver must re-route around
//! crashed replicas, account every query exactly once (completed or
//! abandoned, never lost or double-counted), and stay byte-for-byte
//! deterministic under seeded fault schedules — the same snapshot contract
//! every fault-free run honours.

use std::collections::HashSet;

use proptest::prelude::*;

use nashdb::{
    run_workload_with_faults, DistScheme, Distributor, GlobalFragment, NashDbConfig,
    NashDbDistributor, RunConfig,
};
use nashdb_cluster::{ClusterConfig, Metrics, NetConfig, QueryRequest, ScanRange};
use nashdb_core::economics::NodeSpec;
use nashdb_core::fragment::FragmentRange;
use nashdb_core::ids::TableId;
use nashdb_core::routing::MaxOfMins;
use nashdb_obs::{ObsSession, ObsSnapshot};
use nashdb_sim::{FaultEvent, FaultKind, FaultSchedule, FaultScheduleConfig, SimDuration, SimTime};
use nashdb_workload::bernoulli::{workload as bernoulli, BernoulliConfig};
use nashdb_workload::{Database, TimedQuery, Workload};

/// A distributor that always wants the same hand-built scheme — the fixture
/// for testing the *driver's* failure handling in isolation from the
/// economics.
struct FixedDistributor {
    scheme: DistScheme,
}

impl Distributor for FixedDistributor {
    fn observe(&mut self, _query: &QueryRequest) {}

    fn scheme(&mut self) -> DistScheme {
        self.scheme.clone()
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// One 1M-tuple table split into four 250k fragments, each hosted on two of
/// three nodes — every fragment survives any single-node crash.
fn replicated_scheme(db: &Database) -> DistScheme {
    let tuples = db.tables[0].tuples;
    let quarter = tuples / 4;
    let fragments: Vec<GlobalFragment> = (0..4)
        .map(|i| GlobalFragment {
            table: TableId(0),
            range: FragmentRange::new(i * quarter, (i + 1) * quarter),
        })
        .collect();
    // Hosts: frag0 {0,1}, frag1 {1,2}, frag2 {2,0}, frag3 {0,1}.
    DistScheme::new(fragments, vec![vec![0, 2, 3], vec![0, 1, 3], vec![1, 2]])
}

fn run_config(network: Option<NetConfig>) -> RunConfig {
    RunConfig {
        cluster: ClusterConfig {
            throughput_tps: 1_000_000.0,
            node_cost_per_hour: 100.0,
            metrics_bucket: SimDuration::from_secs(600),
            network,
        },
        reconfig_interval: SimDuration::from_secs(3600),
        phi: SimDuration::from_millis(350),
        warmup_queries: 0,
    }
}

fn scan_query(start: u64, end: u64) -> QueryRequest {
    QueryRequest {
        price: 1.0,
        scans: vec![ScanRange::new(TableId(0), start, end)],
        tag: 0,
    }
}

/// Every completed query appears exactly once, with a sane time range.
fn assert_records_well_formed(m: &Metrics) {
    let ids: HashSet<_> = m.queries.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), m.queries.len(), "duplicate QueryRecord ids");
    for r in &m.queries {
        assert!(
            r.completion >= r.arrival,
            "completion before arrival: {r:?}"
        );
    }
}

#[test]
fn driver_reroutes_around_a_single_node_crash() {
    let db = Database::new([("t", 1_000_000)]);
    // A burst of 300 identical scans of fragment 1 (hosted on nodes 1 and
    // 2): both replicas build deep queues, so node 1 is guaranteed to hold
    // in-flight work when it dies.
    let queries: Vec<TimedQuery> = (0..300)
        .map(|_| TimedQuery {
            at: SimTime::from_secs(0),
            query: scan_query(250_000, 500_000),
        })
        .collect();
    let w = Workload {
        name: "crash-burst".into(),
        db: db.clone(),
        queries,
    }
    .validated();

    let faults = FaultSchedule::from_events(vec![FaultEvent {
        at: SimTime::from_secs(10),
        node: 1,
        kind: FaultKind::Crash,
    }]);
    let mut dist = FixedDistributor {
        scheme: replicated_scheme(&db),
    };
    let run = run_config(Some(NetConfig {
        nic_tps: 100_000_000,
        core_tps: 200_000_000,
    }));
    let m = run_workload_with_faults(
        &w,
        &mut dist,
        &MaxOfMins::new(run.phi_tuples()),
        &run,
        &faults,
    );

    // Acceptance: ≥ 99% completion by re-routing to the surviving replica.
    assert!(
        m.queries.len() as f64 >= 0.99 * 300.0,
        "only {}/300 queries completed under a single-node crash",
        m.queries.len()
    );
    assert_eq!(
        m.availability.queries_abandoned, 0,
        "fragment 1 never lost its last replica"
    );
    assert_eq!(m.queries.len(), 300);
    assert_eq!(m.availability.node_crashes, 1);
    assert!(
        m.availability.queries_failed > 0,
        "node 1 held queued work at the crash; some attempts must fail"
    );
    assert!(
        m.availability.queries_retried >= m.availability.queries_failed,
        "every failed query had a live replica to retry on"
    );
    assert_records_well_formed(&m);
}

#[test]
fn losing_the_last_replica_abandons_cleanly() {
    let db = Database::new([("t", 1_000_000)]);
    // Two single-replica fragments; every query reads fragment 0, which
    // lives only on node 0.
    let fragments = vec![
        GlobalFragment {
            table: TableId(0),
            range: FragmentRange::new(0, 500_000),
        },
        GlobalFragment {
            table: TableId(0),
            range: FragmentRange::new(500_000, 1_000_000),
        },
    ];
    let scheme = DistScheme::new(fragments, vec![vec![0], vec![1]]);
    let queries: Vec<TimedQuery> = (0..50)
        .map(|i| TimedQuery {
            at: SimTime::from_secs(i),
            query: scan_query(0, 500_000),
        })
        .collect();
    let w = Workload {
        name: "last-replica".into(),
        db,
        queries,
    }
    .validated();

    // Crash node 0 mid-service of the query that arrived at t = 10.
    let faults = FaultSchedule::from_events(vec![FaultEvent {
        at: SimTime::from_secs(10) + SimDuration::from_millis(250),
        node: 0,
        kind: FaultKind::Crash,
    }]);
    let mut dist = FixedDistributor { scheme };
    let run = run_config(None);
    let m = run_workload_with_faults(
        &w,
        &mut dist,
        &MaxOfMins::new(run.phi_tuples()),
        &run,
        &faults,
    );

    // Conservation: every query is completed or abandoned, never lost.
    assert_eq!(
        m.queries.len() as u64 + m.availability.queries_abandoned,
        50,
        "queries lost or double-counted: {} completed, {} abandoned",
        m.queries.len(),
        m.availability.queries_abandoned
    );
    assert_eq!(m.queries.len(), 10, "only the pre-crash queries complete");
    assert!(
        m.availability.queries_failed >= 1,
        "the in-flight query at the crash must fail"
    );
    assert_eq!(m.availability.queries_retried, 0, "nowhere to retry to");
    assert_records_well_formed(&m);
}

/// A full NashDB pipeline run under an `ObsSession`, with a seeded chaos
/// schedule (crash + restart + straggler) and the network model enabled.
fn nashdb_run_under_faults(seed: u64) -> (ObsSnapshot, usize, u64) {
    let w = bernoulli(&BernoulliConfig {
        size_gb: 2,
        queries: 80,
        spacing: SimDuration::from_secs(10),
        ..BernoulliConfig::default()
    });
    let run = run_config(Some(NetConfig {
        nic_tps: 50_000_000,
        core_tps: 100_000_000,
    }));
    let run = RunConfig {
        reconfig_interval: SimDuration::from_secs(300),
        ..run
    };
    let cfg = NashDbConfig {
        spec: NodeSpec::new(100.0, 2_000_000),
        max_frags_per_table: 16,
        ..NashDbConfig::default()
    };
    let faults = FaultSchedule::generate(&FaultScheduleConfig {
        seed,
        horizon: SimDuration::from_secs(800),
        nodes: 4,
        crashes: 1,
        restarts: 1,
        stragglers: 1,
        down_for: SimDuration::from_secs(60),
        slowdown: 3.0,
        straggle_for: SimDuration::from_secs(60),
    });
    let session = ObsSession::start();
    let mut nash = NashDbDistributor::new(&w.db, cfg);
    let m = run_workload_with_faults(
        &w,
        &mut nash,
        &MaxOfMins::new(run.phi_tuples()),
        &run,
        &faults,
    );
    assert_eq!(
        m.queries.len() as u64 + m.availability.queries_abandoned,
        80,
        "conservation under chaos schedule"
    );
    assert!(
        m.availability.node_crashes + m.availability.faults_skipped >= 1,
        "the schedule must have been consumed"
    );
    assert_records_well_formed(&m);
    let mut snap = session.finish();
    snap.scrub_timings();
    (snap, m.queries.len(), m.availability.queries_abandoned)
}

#[test]
fn same_fault_schedule_gives_byte_identical_snapshots() {
    let (a, completed_a, abandoned_a) = nashdb_run_under_faults(11);
    let (b, completed_b, abandoned_b) = nashdb_run_under_faults(11);
    assert_eq!(completed_a, completed_b);
    assert_eq!(abandoned_a, abandoned_b);
    assert_eq!(
        a.to_json_string(),
        b.to_json_string(),
        "same seed must give byte-identical scrubbed snapshots"
    );
    // And the snapshot round-trips through the schema like any other.
    let parsed = ObsSnapshot::from_json_str(&a.to_json_string()).expect("schema-valid");
    assert_eq!(parsed, a);
}

// ---------------------------------------------------------------------------
// Property: conservation and determinism hold for *any* bounded schedule.
// ---------------------------------------------------------------------------

fn run_fixed_under(faults: &FaultSchedule) -> Metrics {
    let db = Database::new([("t", 1_000_000)]);
    let quarter = 250_000u64;
    let queries: Vec<TimedQuery> = (0..60)
        .map(|i| {
            let f = i % 4;
            TimedQuery {
                at: SimTime::from_secs(i),
                query: scan_query(f * quarter, (f + 1) * quarter),
            }
        })
        .collect();
    let w = Workload {
        name: "prop-faults".into(),
        db: db.clone(),
        queries,
    }
    .validated();
    let mut dist = FixedDistributor {
        scheme: replicated_scheme(&db),
    };
    let run = run_config(Some(NetConfig {
        nic_tps: 100_000_000,
        core_tps: 200_000_000,
    }));
    run_workload_with_faults(
        &w,
        &mut dist,
        &MaxOfMins::new(run.phi_tuples()),
        &run,
        faults,
    )
}

proptest! {
    /// Whatever the schedule throws at the cluster — up to two crashes, two
    /// restarts, and two straggler windows on three nodes — every query is
    /// accounted exactly once and a replay is identical.
    #[test]
    fn any_bounded_schedule_conserves_queries(
        seed in 0u64..1_000_000,
        crashes in 0usize..=2,
        restarts in 0usize..=2,
        stragglers in 0usize..=2,
    ) {
        let faults = FaultSchedule::generate(&FaultScheduleConfig {
            seed,
            horizon: SimDuration::from_secs(60),
            nodes: 3,
            crashes,
            restarts,
            stragglers,
            down_for: SimDuration::from_secs(10),
            slowdown: 4.0,
            straggle_for: SimDuration::from_secs(10),
        });
        let m = run_fixed_under(&faults);
        prop_assert_eq!(
            m.queries.len() as u64 + m.availability.queries_abandoned,
            60,
            "lost or double-counted queries"
        );
        prop_assert!(m.availability.queries_retried <= m.availability.queries_failed);
        let ids: HashSet<_> = m.queries.iter().map(|r| r.id).collect();
        prop_assert_eq!(ids.len(), m.queries.len(), "duplicate QueryRecord ids");

        let again = run_fixed_under(&faults);
        prop_assert_eq!(again.queries.len(), m.queries.len());
        prop_assert_eq!(again.availability, m.availability);
        prop_assert_eq!(again.total_cost.to_bits(), m.total_cost.to_bits());
    }
}
