//! Offline stand-in for the subset of the [`criterion` 0.5](https://docs.rs/criterion)
//! API this workspace's benches use.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal timing harness with the same surface: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from real criterion, deliberately accepted: no statistical
//! analysis, no warm-up calibration beyond a fixed burn-in, no HTML reports.
//! Each benchmark runs a short timed loop and prints a median ns/iter line,
//! which is enough to compare hot paths between commits by hand. Passing
//! `--test` (as `cargo test` does for `harness = false` bench targets) runs
//! every benchmark exactly once as a smoke test.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, e.g. `algo/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) method times the
/// routine.
#[derive(Debug)]
pub struct Bencher {
    smoke: bool,
    reported_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing a median ns/iter estimate for the caller to
    /// print. In smoke mode (`--test`), runs the routine exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            black_box(routine());
            self.reported_ns = None;
            return;
        }
        // Burn-in to fault in caches and let the routine reach steady state.
        for _ in 0..3 {
            black_box(routine());
        }
        // Run batches until we have a stable sample or hit the time budget.
        let budget = Duration::from_millis(300);
        let started = Instant::now();
        let mut samples: Vec<f64> = Vec::new();
        while started.elapsed() < budget && samples.len() < 50 {
            let t = Instant::now();
            black_box(routine());
            #[allow(clippy::cast_precision_loss)]
            samples.push(t.elapsed().as_nanos() as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.reported_ns = samples.get(samples.len() / 2).copied();
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            smoke: self.criterion.smoke,
            reported_ns: None,
        };
        f(&mut b);
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        match b.reported_ns {
            Some(ns) => println!("bench {label:<50} {ns:>14.0} ns/iter"),
            None => println!("bench {label:<50} ok (smoke)"),
        }
    }

    /// Benchmarks `f`, passing it `input`.
    // `id` by value to match the real criterion signature callers compile
    // against.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run_one(&id.name, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under the given name.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run_one(&id.into(), f);
        self
    }

    /// Ends the group. (No-op in the shim; present for API compatibility.)
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    /// Detects `--test` (passed by `cargo test` to `harness = false` bench
    /// targets) and switches to run-once smoke mode in that case.
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Opens a benchmark group with the given name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name: String = id.into();
        let mut group = self.benchmark_group(String::new());
        group.run_one(&name, f);
        self
    }

    /// Benchmarks `f` with an input, outside any group.
    // `id` by value to match the real criterion signature callers compile
    // against.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut group = self.benchmark_group(String::new());
        group.run_one(&id.name, |b| f(b, input));
        self
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x));
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1u8)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runner_executes() {
        benches();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("algo", 64).name, "algo/64");
        assert_eq!(BenchmarkId::from_parameter(9).name, "9");
    }
}
