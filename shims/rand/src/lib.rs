//! Offline stand-in for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the traits and types
//! it actually calls: [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`,
//! `gen_range`, and `gen_bool`), and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), which is fine: nothing in the
//! workspace depends on the exact stream, only on determinism for a fixed
//! seed. Uniform integer sampling uses rejection from a widened draw, so it
//! is exact (unbiased), matching the contract the property tests rely on.

/// Error type for fallible RNG operations.
///
/// The shim's generators are infallible, so this is never constructed by
/// library code; it exists so `RngCore::try_fill_bytes` signatures match the
/// real crate.
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("rand shim error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output and byte fill.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure via `Result`.
    ///
    /// # Errors
    /// The shim's generators never fail; this always returns `Ok(())`.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly from the full bit pattern of the generator
/// (the shim's equivalent of `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let mantissa = (rng.next_u64() >> 11) as f64;
        mantissa * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let mantissa = (rng.next_u32() >> 8) as f32;
        mantissa * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range from which a value can be drawn uniformly (the shim's equivalent
/// of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` by rejection, so the result is exact.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "uniform_u64_below requires span > 0");
    // Largest multiple of `span` that fits in u64; draws at or above it are
    // rejected to remove modulo bias.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let draw = rng.next_u64();
        if draw < zone {
            return draw.wrapping_rem(span);
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start);
                let offset = uniform_u64_below(rng, u64::from(span));
                #[allow(clippy::cast_possible_truncation)]
                let offset = offset as $t;
                self.start.wrapping_add(offset)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = u64::from(hi.abs_diff(lo));
                if span == u64::MAX {
                    // Full-width range: every bit pattern is valid.
                    #[allow(clippy::cast_possible_truncation)]
                    return rng.next_u64() as $t;
                }
                let offset = uniform_u64_below(rng, span + 1);
                #[allow(clippy::cast_possible_truncation)]
                let offset = offset as $t;
                lo.wrapping_add(offset)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_sample_range_size {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = uniform_u64_below(rng, span);
                #[allow(clippy::cast_possible_truncation)]
                let offset = offset as $t;
                self.start.wrapping_add(offset)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    #[allow(clippy::cast_possible_truncation)]
                    return rng.next_u64() as $t;
                }
                let offset = uniform_u64_below(rng, span + 1);
                #[allow(clippy::cast_possible_truncation)]
                let offset = offset as $t;
                lo.wrapping_add(offset)
            }
        }
    )*};
}

impl_sample_range_size!(usize, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                // May round to `end` for extreme spans; clamp keeps the
                // half-open contract.
                let v = self.start + (self.end - self.start) * unit;
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// High-level sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the generator's raw output.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    ///
    /// Not cryptographically secure — this workspace only uses it for
    /// simulation and property-test input generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per the
            // xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            #[allow(clippy::cast_possible_truncation)]
            let hi = (self.step() >> 32) as u32;
            hi
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams for different seeds look identical");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
