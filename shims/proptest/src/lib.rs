//! Offline stand-in for the subset of the [`proptest` 1.x](https://docs.rs/proptest)
//! API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface syntax:
//! the [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`], the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, and [`collection::vec`] / [`collection::hash_set`].
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports the generated input; it is not
//!   minimized.
//! - **Fixed derived seeds.** Each test function derives its case seeds from
//!   a hash of its own name, so runs are fully deterministic. Set
//!   `PROPTEST_CASES` to change the case count (default 64).

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: a strategy is just a
    /// deterministic sampler from an RNG stream.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Regenerates until `f` accepts the value (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            // Test-failure machinery: a filter this selective is a bug in the
            // test's strategy, and panicking is how proptest reports it.
            #[allow(clippy::panic)]
            {
                panic!(
                    "prop_filter({}) rejected 1000 samples in a row",
                    self.whence
                )
            }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A length specification: anything a `usize` can be drawn from.
    pub trait SizeRange {
        /// Draws a length from `rng`.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and length range `L`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates a `Vec` whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`; see [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates a `HashSet` with a target size drawn from `len`.
    ///
    /// If the element domain is too small to reach the target size, the set
    /// is returned at whatever size bounded resampling achieved (matching
    /// real proptest's local-rejection behavior loosely, without its global
    /// rejection accounting).
    pub fn hash_set<S, L>(element: S, len: L) -> HashSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        L: SizeRange,
    {
        HashSetStrategy { element, len }
    }

    impl<S, L> Strategy for HashSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        L: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.len.sample_len(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 100 * (target + 1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod test_runner {
    //! The case loop behind [`crate::proptest!`].

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the case is a genuine failure.
        Fail(String),
        /// The input was rejected (e.g. by `prop_assume!`); not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Per-case result type the bodies of [`crate::proptest!`] return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn default_cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }

    /// FNV-1a over the test name, used to give every test its own stream.
    fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `body` against `cases` inputs sampled from `strat`.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) on the first case whose body
    /// returns [`TestCaseError::Fail`] or itself panics.
    pub fn run_cases<S, F>(name: &str, strat: &S, body: F)
    where
        S: Strategy,
        S::Value: core::fmt::Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let cases = default_cases();
        let base = name_seed(name);
        let mut rejected = 0u64;
        for case in 0..cases {
            let mut rng = StdRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let value = strat.sample(&mut rng);
            let shown = format!("{value:?}");
            match body(value) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= 16 * cases,
                        "{name}: too many rejected inputs ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    // Test-failure machinery: panicking is the contract by
                    // which proptest reports a failing case to the harness.
                    #[allow(clippy::panic)]
                    {
                        panic!("{name}: case {case}/{cases} failed: {msg}\n  input: {shown}")
                    }
                }
            }
        }
    }
}

/// Everything a test module needs: the [`strategy::Strategy`] trait, the
/// macros, and the `prop` alias for nested paths like `prop::collection`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests.
///
/// Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0f64..1.0, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// Each declared function becomes a normal `#[test]` that samples inputs and
/// runs the body once per case. Bodies may `return Ok(())` early and use the
/// `prop_assert*` macros exactly as with real proptest.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let strat = ($($strat,)+);
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &strat,
                    |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects the current case (not a failure) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vec_strategy_respects_len() {
        let strat = crate::collection::vec(0u64..10, 3..7usize);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn hash_set_strategy_hits_target_when_possible() {
        let strat = crate::collection::hash_set(0u64..100, 5..=5usize);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut rng).len(), 5);
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2usize..8).prop_flat_map(|n| (Just(n), 0..n));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let (n, k) = strat.sample(&mut rng);
            assert!(k < n);
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u64..50, v in crate::collection::vec(0.0f64..1.0, 1..5usize)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.len());
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.iter().all(|p| (0.0..1.0).contains(p)));
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::test_runner::run_cases("always_fails", &(0u64..10), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
