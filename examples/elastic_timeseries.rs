//! Elastic scaling: the cluster grows for the rush and shrinks for the
//! lull (paper §1: "scaling up the cluster during workload spikes, and
//! scaling down during lulls in activity").
//!
//! ```text
//! cargo run --release --example elastic_timeseries
//! ```
//!
//! A monitoring workload alternates busy and quiet hours. NashDB's
//! provisioning is a by-product of its economics: when the scan window
//! carries more (or pricier) scans, fragments earn more replicas, BFFD
//! packs more nodes; when demand fades, replicas stop being profitable and
//! nodes are decommissioned by the transition planner.

use nashdb::{run_workload, MaxOfMins, NashDbConfig, NashDbDistributor, RunConfig};
use nashdb_cluster::{ClusterConfig, QueryRequest, ScanRange};
use nashdb_core::economics::NodeSpec;
use nashdb_core::ids::TableId;
use nashdb_sim::{SimDuration, SimRng, SimTime};
use nashdb_workload::{Database, TimedQuery, Workload};

fn build_workload() -> Workload {
    let db = Database::new([("metrics", 6_000_000u64)]);
    let table = db.tables[0];
    let mut rng = SimRng::seed_from_u64(99);
    let mut queries = Vec::new();
    let hours = 8u64;
    for h in 0..hours {
        // Busy hours fire 6x the queries of quiet hours.
        let busy = h % 2 == 0;
        let n = if busy { 180 } else { 30 };
        for i in 0..n {
            let at = SimTime::from_secs(h * 3600) + SimDuration::from_secs(3600 * i / n);
            let reach = (rng.geometric(0.3) + 1).min(10) * 300_000;
            let start = table.tuples.saturating_sub(reach);
            queries.push(TimedQuery {
                at,
                query: QueryRequest {
                    price: 1.0,
                    scans: vec![ScanRange::new(TableId(0), start, table.tuples)],
                    tag: u32::try_from(h).unwrap_or(u32::MAX),
                },
            });
        }
    }
    Workload {
        name: "elastic-timeseries".into(),
        db,
        queries,
    }
    .validated()
}

fn main() {
    let w = build_workload();
    let mut nashdb = NashDbDistributor::new(
        &w.db,
        NashDbConfig {
            spec: NodeSpec::new(50.0, 1_500_000),
            max_frags_per_table: 32,
            max_fragment_tuples: 400_000,
            ..NashDbConfig::default()
        },
    );
    let run = RunConfig {
        cluster: ClusterConfig {
            throughput_tps: 200_000.0,
            node_cost_per_hour: 50.0,
            metrics_bucket: SimDuration::from_secs(600),
            network: None,
        },
        reconfig_interval: SimDuration::from_secs(1200), // 20 min
        ..RunConfig::default()
    };
    let metrics = run_workload(&w, &mut nashdb, &MaxOfMins::new(run.phi_tuples()), &run);

    println!("queries completed : {}", metrics.queries.len());
    println!("reconfigurations  : {}", metrics.reconfigurations);
    println!("peak cluster size : {} nodes", metrics.peak_nodes);
    println!(
        "data moved        : {:.1} MB over {} transitions",
        metrics.total_transfer() as f64 / 1e3,
        metrics.reconfigurations
    );
    println!();
    println!("throughput per 10-minute bucket (GB read):");
    for (t, v) in metrics.read_throughput.buckets() {
        let hour = t.as_secs_f64() / 3600.0;
        let gb = v / 1e6;
        let bar = "#".repeat(nashdb_core::num::saturating_usize(gb * 4.0));
        println!("  t={hour:4.1}h {gb:7.2} {bar}");
    }
    println!();
    println!("the alternating bars show the busy/quiet hours; the cluster");
    println!("resizes at each transition to track them (peak size above).");
}
