//! Workload shift: watch the fragmentation follow a moving hot spot
//! (paper §5.3 — the split/merge fragmenter's whole reason to exist).
//!
//! ```text
//! cargo run --release --example workload_shift
//! ```
//!
//! Drives the tuple value estimator and the greedy fragmenter directly
//! (no cluster), shifting the hot range every phase, and prints how the
//! fragment boundaries chase it — plus the error a split-only fragmenter
//! (the paper's DT baseline) accumulates by never merging.

use nashdb_core::fragment::{ChunkPrefix, GreedyFragmenter};
use nashdb_core::value::{PricedScan, TupleValueEstimator};

const TABLE: u64 = 1_000_000;
const WINDOW: usize = 50;
const MAX_FRAGS: usize = 8;

fn main() {
    let mut estimator = TupleValueEstimator::new(WINDOW);
    let mut nash = GreedyFragmenter::new(TABLE, MAX_FRAGS);

    // Three phases, each hammering a different 150k-tuple range.
    let phases = [
        (100_000u64, "early keys"),
        (450_000, "mid keys"),
        (800_000, "recent keys"),
    ];
    for (phase, (hot_start, label)) in phases.iter().enumerate() {
        for i in 0..60u64 {
            // 80% hot-range scans, 20% background full scans.
            let scan = if i % 5 == 0 {
                PricedScan::new(0, TABLE, 1.0)
            } else {
                PricedScan::new(*hot_start, hot_start + 150_000, 1.0)
            };
            estimator.observe(scan);
            let chunks = estimator.chunks(TABLE);
            nash.run(&chunks, 4);
        }
        let chunks = estimator.chunks(TABLE);
        let Ok(prefix) = ChunkPrefix::new(&chunks) else {
            return; // estimator chunks are contiguous by construction
        };
        let frag = nash.fragmentation();
        println!(
            "phase {} — hot range at {label} ({hot_start}..{})",
            phase + 1,
            hot_start + 150_000
        );
        println!("  boundaries: {:?}", frag.boundaries());
        println!(
            "  fragments: {}   total error: {:.3e}",
            frag.len(),
            frag.total_error(&prefix)
        );
        // Which fragments are worth replicating? Show the value density.
        let stats = nashdb_core::fragment::fragment_stats(&frag, &chunks).unwrap_or_default();
        for s in &stats {
            let density = s.value / s.range.size() as f64;
            if density > 1e-9 {
                println!(
                    "    {} value {:.3e} ({} tuples) {}",
                    s.range,
                    s.value,
                    s.range.size(),
                    if density > 5e-7 { "<- hot" } else { "" }
                );
            }
        }
        println!();
    }

    println!("the boundary list above relocates each phase: splits chase the new");
    println!("hot range after merges reclaim fragments from the old one (paper §5.3).");
}
