//! Priority tiers: pay more, wait less (paper §10.2).
//!
//! ```text
//! cargo run --release --example priority_tiers
//! ```
//!
//! Two user groups share one cluster: *analysts* scan the archive region
//! and *dashboards* scan the live region. Query priority in NashDB is a
//! price, and the price only matters through the data a query reads — so we
//! run the same workload twice: once with every query at price 1, once
//! with dashboard queries at price 8. The higher price buys the live
//! region more replicas, and dashboard latency drops while analyst latency
//! barely moves (paper Fig. 9a's mechanism).

use nashdb::{run_workload, MaxOfMins, NashDbConfig, NashDbDistributor, RunConfig};
use nashdb_cluster::{ClusterConfig, Metrics, QueryRequest, ScanRange};
use nashdb_core::economics::NodeSpec;
use nashdb_core::ids::TableId;
use nashdb_sim::{SimDuration, SimRng, SimTime};
use nashdb_workload::{Database, TimedQuery, Workload};

const TABLE: u64 = 8_000_000;
const LIVE_START: u64 = 6_000_000; // last quarter of the table is "live"
const ANALYST: u32 = 0;
const DASHBOARD: u32 = 1;

fn build_workload(dashboard_price: f64) -> Workload {
    let db = Database::new([("events", TABLE)]);
    let mut rng = SimRng::seed_from_u64(7);
    let mut queries = Vec::new();
    for i in 0..500u64 {
        let dashboard = i % 4 == 0;
        // Dashboards refresh the whole live region; analysts scan a random
        // 2M-tuple slice of the archive. Both regions see the same read
        // demand per tuple, so at equal prices they earn equal replication.
        let (start, end) = if dashboard {
            (LIVE_START, TABLE)
        } else {
            let s = rng.uniform_u64(0, LIVE_START - 2_000_000 + 1);
            (s, s + 2_000_000)
        };
        queries.push(TimedQuery {
            at: SimTime::ZERO + SimDuration::from_secs(4) * i,
            query: QueryRequest {
                price: if dashboard { dashboard_price } else { 1.0 },
                scans: vec![ScanRange::new(TableId(0), start, end)],
                tag: if dashboard { DASHBOARD } else { ANALYST },
            },
        });
    }
    Workload {
        name: "priority-tiers".into(),
        db,
        queries,
    }
    .validated()
}

fn run(dashboard_price: f64) -> (Workload, Metrics) {
    let w = build_workload(dashboard_price);
    let mut nashdb = NashDbDistributor::new(
        &w.db,
        NashDbConfig {
            spec: NodeSpec::new(6.0, 2_000_000),
            max_frags_per_table: 32,
            max_fragment_tuples: 500_000,
            ..NashDbConfig::default()
        },
    );
    let cfg = RunConfig {
        cluster: ClusterConfig {
            throughput_tps: 200_000.0,
            node_cost_per_hour: 6.0,
            metrics_bucket: SimDuration::from_secs(60),
            network: None,
        },
        reconfig_interval: SimDuration::from_secs(300),
        warmup_queries: 120,
        ..RunConfig::default()
    };
    let m = run_workload(&w, &mut nashdb, &MaxOfMins::new(cfg.phi_tuples()), &cfg);
    (w, m)
}

fn tier_latency(w: &Workload, m: &Metrics, tier: u32) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for q in &m.queries {
        if w.queries[nashdb_core::num::usize_from(q.id.get())]
            .query
            .tag
            == tier
        {
            sum += q.latency().as_secs_f64();
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

fn main() {
    let (w1, m1) = run(1.0);
    let (w8, m8) = run(8.0);

    println!("                         price 1     price 8");
    println!(
        "dashboard latency (s)   {:8.2}    {:8.2}",
        tier_latency(&w1, &m1, DASHBOARD),
        tier_latency(&w8, &m8, DASHBOARD)
    );
    println!(
        "analyst latency (s)     {:8.2}    {:8.2}",
        tier_latency(&w1, &m1, ANALYST),
        tier_latency(&w8, &m8, ANALYST)
    );
    println!(
        "peak cluster size       {:8}    {:8}",
        m1.peak_nodes, m8.peak_nodes
    );
    println!(
        "total cost (1/100 c)    {:8.1}    {:8.1}",
        m1.total_cost, m8.total_cost
    );
    println!();
    println!("raising only the dashboard tier's price buys the live region more");
    println!("replicas: dashboard latency falls, analyst latency barely moves,");
    println!("and the cost difference is the price of the extra nodes.");

    let d1 = tier_latency(&w1, &m1, DASHBOARD);
    let d8 = tier_latency(&w8, &m8, DASHBOARD);
    assert!(
        d8 < d1,
        "pricier dashboards should be faster: {d8:.2} vs {d1:.2}"
    );
}
