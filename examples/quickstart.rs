//! Quickstart: run NashDB end to end on a small time-series workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 4 GB "recent data is hot" workload (the paper's Bernoulli
//! pattern), lets NashDB estimate tuple values, fragment, replicate,
//! provision, and route it on a simulated elastic cluster, and prints the
//! headline numbers.

use nashdb::{run_workload, MaxOfMins, NashDbConfig, NashDbDistributor, RunConfig};
use nashdb_cluster::ClusterConfig;
use nashdb_core::economics::NodeSpec;
use nashdb_sim::SimDuration;
use nashdb_workload::bernoulli::{workload, BernoulliConfig};

fn main() {
    // 1. A workload: 200 range scans over a 4 GB fact table, every query
    //    ending at the newest tuple (time-series analysis).
    let w = workload(&BernoulliConfig {
        size_gb: 4,
        queries: 200,
        price: 1.0,
        spacing: SimDuration::from_secs(5),
        seed: 42,
    });
    println!("workload: {} ({} queries)", w.name, w.queries.len());

    // 2. NashDB, configured with the node economics of the elastic cluster:
    //    each node rents for 60 (1/100 cent)/hour and stores 1M tuples.
    let nash_cfg = NashDbConfig {
        window: 50,
        spec: NodeSpec::new(60.0, 1_000_000),
        max_frags_per_table: 32,
        max_fragment_tuples: 500_000,
        ..NashDbConfig::default()
    };
    let mut nashdb = NashDbDistributor::new(&w.db, nash_cfg);

    // 3. The simulated cluster and driver settings.
    let run = RunConfig {
        cluster: ClusterConfig {
            throughput_tps: 200_000.0,
            node_cost_per_hour: 60.0,
            metrics_bucket: SimDuration::from_secs(60),
            network: None,
        },
        reconfig_interval: SimDuration::from_secs(600),
        ..RunConfig::default()
    };

    // 4. Run, routing with the paper's Max-of-mins (ϕ = 350 ms).
    let metrics = run_workload(&w, &mut nashdb, &MaxOfMins::new(run.phi_tuples()), &run);

    println!("completed queries : {}", metrics.queries.len());
    println!("mean latency      : {:.2} s", metrics.mean_latency_secs());
    println!(
        "p95 latency       : {:.2} s",
        metrics.latency_percentile_secs(95.0).unwrap_or(0.0)
    );
    println!("mean query span   : {:.2} nodes", metrics.mean_span());
    println!("peak cluster size : {} nodes", metrics.peak_nodes);
    println!("reconfigurations  : {}", metrics.reconfigurations);
    println!(
        "data moved        : {:.1} MB",
        metrics.total_transfer() as f64 / 1e3
    );
    println!("total cost        : {:.1} (1/100 cent)", metrics.total_cost);
}
