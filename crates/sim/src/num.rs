//! Saturating numeric conversions (private mirror of `nashdb_core::num`;
//! this crate deliberately has no dependency on the core crate).

/// `f64` → `u64` with `as`-cast saturating semantics (NaN → 0, negatives
/// → 0, overflow → `u64::MAX`), named so call sites state their intent.
#[must_use]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub(crate) fn saturating_u64(x: f64) -> u64 {
    x as u64
}

/// `f64` → `usize` with saturating semantics. See [`saturating_u64`].
#[must_use]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub(crate) fn saturating_usize(x: f64) -> usize {
    x as usize
}

/// `u64` count → container index, saturating on hypothetical 32-bit
/// targets so an out-of-range value fails a bounds check instead of
/// aliasing a wrong element.
#[must_use]
pub(crate) fn usize_from(x: u64) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}
