//! A contended shared-bandwidth link.
//!
//! The cluster simulator's "one big switch" network model is built from
//! [`SharedLink`]s: each node has a NIC link, and all NICs feed one core
//! link. A link serves transmissions FIFO at a fixed tuple rate; a transfer
//! that arrives while the link is busy waits for everything already
//! accepted. This is the standard store-and-forward abstraction used by
//! flow-level datacenter simulators — no packets, just completion times —
//! which keeps the model deterministic and cheap while still making
//! concurrent transfers delay each other.

use crate::time::{SimDuration, SimTime};

/// A FIFO bandwidth resource serving transmissions at a fixed tuple rate.
///
/// The link keeps only one number — the time it next becomes free — so it
/// costs O(1) per transmission and composes into multi-hop paths by chaining
/// [`transmit`](SharedLink::transmit) calls (each hop starts when the
/// previous one finishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedLink {
    /// Tuples per second the link carries.
    tuples_per_sec: u64,
    /// When the link finishes everything accepted so far.
    free_at: SimTime,
}

impl SharedLink {
    /// A link carrying `tuples_per_sec` tuples per second. A rate of zero is
    /// treated as one tuple per second rather than dividing by zero.
    pub fn new(tuples_per_sec: u64) -> Self {
        SharedLink {
            tuples_per_sec: tuples_per_sec.max(1),
            free_at: SimTime::ZERO,
        }
    }

    /// Accepts a `tuples`-sized transmission offered at `now` and returns
    /// when it completes. The transfer starts at `max(now, free_at)` —
    /// behind everything already accepted — and occupies the link for
    /// `tuples / rate`.
    pub fn transmit(&mut self, now: SimTime, tuples: u64) -> SimTime {
        let start = self.free_at.max(now);
        let done = start + self.duration_of(tuples);
        self.free_at = done;
        done
    }

    /// How long a `tuples`-sized transmission occupies the link, ignoring
    /// queueing. Computed in u128 so huge transfers saturate instead of
    /// overflowing.
    pub fn duration_of(&self, tuples: u64) -> SimDuration {
        let nanos = (u128::from(tuples) * 1_000_000_000u128) / u128::from(self.tuples_per_sec);
        SimDuration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }

    /// When the link finishes everything accepted so far.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Forgets all queued work (e.g. the owning node crashed and its NIC
    /// queue evaporated with it).
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_serves_immediately() {
        let mut link = SharedLink::new(1_000);
        let done = link.transmit(SimTime::from_secs(5), 2_000);
        assert_eq!(done, SimTime::from_secs(7));
        assert_eq!(link.free_at(), SimTime::from_secs(7));
    }

    #[test]
    fn concurrent_transfers_queue_fifo() {
        let mut link = SharedLink::new(1_000);
        let a = link.transmit(SimTime::ZERO, 1_000);
        let b = link.transmit(SimTime::ZERO, 1_000);
        assert_eq!(a, SimTime::from_secs(1));
        assert_eq!(b, SimTime::from_secs(2), "second transfer waits for first");
        // A transfer offered after the link drained starts immediately.
        let c = link.transmit(SimTime::from_secs(10), 500);
        assert_eq!(c, SimTime::from_nanos(10_500_000_000));
    }

    #[test]
    fn zero_rate_is_floored() {
        let mut link = SharedLink::new(0);
        let done = link.transmit(SimTime::ZERO, 2);
        assert_eq!(done, SimTime::from_secs(2));
    }

    #[test]
    fn huge_transfers_saturate() {
        let mut link = SharedLink::new(1);
        let done = link.transmit(SimTime::ZERO, u64::MAX);
        assert_eq!(done, SimTime::MAX);
        // Further traffic stays pinned at the sentinel instead of wrapping.
        assert_eq!(link.transmit(SimTime::ZERO, 1), SimTime::MAX);
    }

    #[test]
    fn reset_forgets_backlog() {
        let mut link = SharedLink::new(1_000);
        link.transmit(SimTime::ZERO, 1_000_000);
        link.reset();
        assert_eq!(link.transmit(SimTime::ZERO, 1_000), SimTime::from_secs(1));
    }
}
