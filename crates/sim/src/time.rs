//! Simulated time.
//!
//! The simulation clock is an integer number of nanoseconds since the start
//! of the simulation. Using integers (rather than `f64` seconds) keeps event
//! ordering exact and the whole simulation bit-for-bit deterministic, which
//! the differential and property tests rely on.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating duration since `earlier`; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from float seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration(crate::num::saturating_u64((secs * 1e9).round()))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True iff this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(
            t.since(SimTime::from_secs(1)),
            SimDuration::from_millis(500)
        );
        let mut d = SimDuration::from_secs(1);
        d += SimDuration::from_secs(2);
        assert_eq!(d, SimDuration::from_secs(3));
        d -= SimDuration::from_secs(1);
        assert_eq!(d, SimDuration::from_secs(2));
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 2, SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn saturating_since_is_total() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn durations_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500000s");
    }
}
