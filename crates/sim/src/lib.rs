//! # nashdb-sim
//!
//! Deterministic discrete-event simulation substrate used by the NashDB
//! reproduction.
//!
//! The original NashDB prototype ran on an AWS cluster; every algorithmic
//! decision it makes, however, consumes only logical observations (scan
//! streams, queue lengths, storage maps). This crate provides the pieces
//! needed to reproduce those observations deterministically on one machine:
//!
//! * [`time`] — an integer-nanosecond simulated clock ([`SimTime`],
//!   [`SimDuration`]) immune to floating-point drift,
//! * [`event`] — a stable-ordered event queue ([`EventQueue`]) driving the
//!   simulation loop,
//! * [`fault`] — deterministic seeded fault schedules ([`FaultSchedule`]):
//!   node crashes, crash-with-restart, and straggler windows,
//! * [`net`] — a contended shared-bandwidth link ([`SharedLink`]) from which
//!   the cluster's "one big switch" network model is assembled,
//! * [`rng`] — seeded random samplers (zipf, geometric, binomial, …) built
//!   on [`rand`] so that workload generation needs no extra dependencies,
//! * [`stats`] — streaming statistics (Welford mean/variance, exact
//!   percentiles, time-bucketed series) used by the experiment harness.
//!
//! Everything here is deterministic under a fixed seed, which the test suite
//! and the experiment harness rely on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod fault;
pub mod net;
mod num;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use fault::{FaultEvent, FaultKind, FaultSchedule, FaultScheduleConfig};
pub use net::SharedLink;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
