//! A stable-ordered discrete-event queue.
//!
//! Events are popped in nondecreasing time order; ties are broken by
//! insertion order (FIFO), which keeps simulations deterministic even when
//! many events share a timestamp (common with integer clocks).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: a payload scheduled at a point in simulated time.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // first-inserted) event is the "largest".
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue with deterministic FIFO tie-breaking.
///
/// ```
/// use nashdb_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "first");
/// q.schedule(SimTime::from_secs(1), "second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — an event scheduled
    /// in the past indicates a simulation bug, not a recoverable condition.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// The next event — timestamp and a borrow of its payload — without
    /// popping it or advancing the clock. Lets callers batch coincident
    /// events: inspect the head, and only pop when it belongs to the batch.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|s| (s.at, &s.payload))
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.payload))
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for secs in [5u64, 1, 3, 2, 4] {
            q.schedule(SimTime::from_secs(secs), secs);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn interleaved_scheduling_is_stable() {
        // Events scheduled *while draining* still honour time order and FIFO.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "a");
        q.schedule(t + SimDuration::from_secs(1), "b");
        q.schedule(t + SimDuration::from_secs(1), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn peek_exposes_the_head_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek(), None);
        q.schedule(SimTime::from_secs(2), "later");
        q.schedule(SimTime::from_secs(1), "first");
        q.schedule(SimTime::from_secs(1), "second");
        // FIFO tie-break is visible through peek, and peek neither pops
        // nor advances the clock.
        assert_eq!(q.peek(), Some((SimTime::from_secs(1), &"first")));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "first")));
        assert_eq!(q.peek(), Some((SimTime::from_secs(1), &"second")));
    }
}
