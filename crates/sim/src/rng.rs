//! Seeded random sampling utilities.
//!
//! The workload generators need a handful of distributions (zipf, geometric,
//! binomial, bounded uniform). To stay within the approved dependency set we
//! implement them here directly on top of [`rand`], with exact inverse-CDF
//! methods — no approximations that would complicate testing.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic simulation RNG.
///
/// Thin wrapper around [`StdRng`] that carries the distribution helpers the
/// workload generators need. Two `SimRng`s built from the same seed produce
/// identical streams.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; useful for giving each workload
    /// component its own stream so adding draws to one does not perturb the
    /// others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(seed)
    }

    /// Uniform draw in `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low >= high`.
    pub fn uniform_u64(&mut self, low: u64, high: u64) -> u64 {
        self.inner.gen_range(low..high)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Geometric draw: the number of failures before the first success of a
    /// Bernoulli(`p`) process, via inverse CDF. `p` must be in `(0, 1]`.
    ///
    /// Used for the paper's *Bernoulli* workload, where the probability a
    /// query reaches at least `n` GB back from the end of the table is
    /// `(19/20)^n`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "geometric requires p in (0,1], got {p}"
        );
        if p >= 1.0 {
            return 0;
        }
        let u = self.open_unit();
        crate::num::saturating_u64((u.ln() / (1.0 - p).ln()).floor())
    }

    /// Binomial(`n`, `p`) draw.
    ///
    /// Exact via summed Bernoulli trials for small `n`; for large `n` uses
    /// geometric skips between successes, costing O(n·min(p, 1−p)) expected
    /// draws with no underflow issues at any scale.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 || n == 0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        if p > 0.5 {
            return n - self.binomial(n, 1.0 - p);
        }
        if n <= 64 {
            return (0..n).filter(|_| self.bernoulli(p)).count() as u64;
        }
        // Skip over failures: each success lands geometric(p)+1 trials after
        // the previous one.
        let mut count = 0u64;
        let mut pos = 0u64;
        loop {
            let gap = self.geometric(p) + 1;
            pos = pos.saturating_add(gap);
            if pos > n {
                return count;
            }
            count = count.saturating_add(1);
        }
    }

    /// Zipf(`n`, `s`) draw over ranks `0..n` (rank 0 most popular), via
    /// inverse CDF on the precomputed table in [`ZipfTable`]. For repeated
    /// draws build a [`ZipfTable`] once and call [`ZipfTable::sample`].
    pub fn zipf_once(&mut self, n: u64, s: f64) -> u64 {
        ZipfTable::new(n, s).sample(self)
    }

    /// Uniform draw in `(0, 1)` — never exactly zero, safe for `ln`.
    fn open_unit(&mut self) -> f64 {
        loop {
            let u = self.inner.gen::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// Precomputed Zipf CDF over `n` ranks with exponent `s`.
///
/// Sampling is a binary search on the CDF: O(log n) per draw after O(n)
/// setup, exact to floating-point rounding.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds a table for ranks `0..n` with exponent `s >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        let mut cdf = Vec::with_capacity(crate::num::usize_from(n));
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.uniform_f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = SimRng::seed_from_u64(42);
        let p = 0.05; // mean failures = (1-p)/p = 19
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expected = (1.0 - p) / p;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn binomial_edges() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(rng.binomial(0, 0.5), 0);
        assert_eq!(rng.binomial(10, 0.0), 0);
        assert_eq!(rng.binomial(10, 1.0), 10);
    }

    #[test]
    fn binomial_mean_small_and_large_n() {
        let mut rng = SimRng::seed_from_u64(3);
        for &(n, p) in &[(40u64, 0.3f64), (5_000, 0.3)] {
            let trials = 3_000;
            let total: u64 = (0..trials).map(|_| rng.binomial(n, p)).sum();
            let mean = total as f64 / trials as f64;
            let expected = n as f64 * p;
            assert!(
                (mean - expected).abs() < expected * 0.05,
                "n={n}: mean {mean} vs expected {expected}"
            );
        }
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert!(rng.binomial(100, 0.99) <= 100);
        }
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let mut rng = SimRng::seed_from_u64(5);
        let table = ZipfTable::new(100, 1.1);
        let mut counts = vec![0u64; 100];
        for _ in 0..20_000 {
            counts[usize::try_from(table.sample(&mut rng)).unwrap()] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        assert_eq!(counts.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let mut rng = SimRng::seed_from_u64(6);
        let table = ZipfTable::new(4, 0.0);
        let mut counts = vec![0u64; 4];
        for _ in 0..40_000 {
            counts[usize::try_from(table.sample(&mut rng)).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::seed_from_u64(2);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(rng.bernoulli(2.0));
        assert!(!rng.bernoulli(-1.0));
    }
}
