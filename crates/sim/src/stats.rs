//! Streaming statistics used by the experiment harness.
//!
//! * [`Welford`] — numerically stable online mean/variance (the same
//!   recurrence the paper adapts for its split-point search, Appendix C).
//! * [`Percentiles`] — exact percentile extraction from a retained sample
//!   (our experiments retain every query latency, as the paper's do).
//! * [`TimeSeries`] — fixed-width time-bucket accumulator for the
//!   throughput-over-time plots (paper Fig. 11).

use crate::time::{SimDuration, SimTime};

/// Online mean and (population) variance via Welford's recurrence.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count = self.count.saturating_add(1);
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sum of squared deviations from the mean — the paper's *unnormalized
    /// variance* (Eq. 4).
    pub fn sum_sq_dev(&self) -> f64 {
        self.m2.max(0.0)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// Exact percentiles over a retained sample.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The `p`-th percentile (`0.0..=100.0`) by the nearest-rank method;
    /// `None` if empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = crate::num::saturating_usize(((p / 100.0) * self.samples.len() as f64).ceil());
        let idx = rank.saturating_sub(1).min(self.samples.len() - 1);
        Some(self.samples[idx])
    }

    /// Maximum observation; `None` if empty.
    pub fn max(&mut self) -> Option<f64> {
        self.percentile(100.0)
    }
}

/// Accumulates a quantity into fixed-width time buckets.
///
/// Used for throughput-over-time reporting: each completed scan adds its
/// tuple count at its completion time; [`TimeSeries::buckets`] then yields
/// `(bucket_start, total)` rows.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    width: SimDuration,
    buckets: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "time series bucket width must be nonzero");
        TimeSeries {
            width,
            buckets: Vec::new(),
        }
    }

    /// Adds `amount` at time `at`.
    pub fn add(&mut self, at: SimTime, amount: f64) {
        let idx = crate::num::usize_from(at.as_nanos() / self.width.as_nanos());
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += amount;
    }

    /// Bucket width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Iterates `(bucket_start_time, total)` pairs, including empty buckets
    /// up to the last populated one.
    pub fn buckets(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let width = self.width;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &v)| (SimTime::from_nanos(i as u64 * width.as_nanos()), v))
    }

    /// Total across all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert_close(w.mean(), 5.0);
        assert_close(w.variance(), 4.0);
        assert_close(w.sum_sq_dev(), 32.0);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_close(w.mean(), 0.0);
        assert_close(w.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..33] {
            left.push(x);
        }
        for &x in &xs[33..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert_close(left.mean(), all.mean());
        assert_close(left.variance(), all.variance());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.m2);
        a.merge(&Welford::new());
        assert_eq!((a.count(), a.mean(), a.m2), before);

        let mut e = Welford::new();
        let mut b = Welford::new();
        b.push(5.0);
        e.merge(&b);
        assert_eq!(e.count(), 1);
        assert_close(e.mean(), 5.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_close(p.percentile(50.0).unwrap(), 50.0);
        assert_close(p.percentile(95.0).unwrap(), 95.0);
        assert_close(p.percentile(99.0).unwrap(), 99.0);
        assert_close(p.percentile(100.0).unwrap(), 100.0);
        assert_close(p.percentile(0.0).unwrap(), 1.0);
        assert_close(p.mean(), 50.5);
    }

    #[test]
    fn percentiles_empty_is_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.percentile(50.0), None);
        assert_eq!(p.max(), None);
        assert_close(p.mean(), 0.0);
    }

    #[test]
    fn percentiles_interleaved_push_and_query() {
        let mut p = Percentiles::new();
        p.push(10.0);
        assert_close(p.percentile(50.0).unwrap(), 10.0);
        p.push(1.0);
        // Re-sorts after the new push.
        assert_close(p.percentile(0.0).unwrap(), 1.0);
    }

    #[test]
    fn timeseries_buckets_accumulate() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(60));
        ts.add(SimTime::from_secs(10), 5.0);
        ts.add(SimTime::from_secs(59), 5.0);
        ts.add(SimTime::from_secs(60), 7.0);
        ts.add(SimTime::from_secs(200), 1.0);
        let rows: Vec<(u64, f64)> = ts
            .buckets()
            .map(|(t, v)| (t.as_nanos() / 1_000_000_000, v))
            .collect();
        assert_eq!(rows, vec![(0, 10.0), (60, 7.0), (120, 0.0), (180, 1.0)]);
        assert_close(ts.total(), 18.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn timeseries_zero_width_panics() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }
}
