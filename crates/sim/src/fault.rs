//! Deterministic seeded fault schedules.
//!
//! A [`FaultSchedule`] is an ordered list of [`FaultEvent`]s — node crashes,
//! crash-with-restart, and straggler (throughput degradation) windows — that
//! a cluster simulation injects at fixed simulated times. Schedules are
//! plain data: they can be written out explicitly by a test, or drawn
//! deterministically from a seed with [`FaultSchedule::generate`], so two
//! runs of the same schedule produce byte-identical metric snapshots (the
//! same contract every other simulation input honours).
//!
//! Fault events target *logical* node indices — the slot numbering the
//! driver's distribution scheme uses — resolved at fire time. A fault aimed
//! at a slot the cluster does not currently have (it shrank, or never grew
//! that far) is skipped and counted, never an error: the same schedule must
//! be replayable against systems that provision different cluster sizes.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// What happens to the targeted node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node dies and never comes back: queued jobs are lost, queries
    /// with reads outstanding there must be re-dispatched.
    Crash,
    /// The node dies and rejoins empty after `down_for` — e.g. an instance
    /// reboot with its network volume re-attached.
    CrashRestart {
        /// How long the node stays down.
        down_for: SimDuration,
    },
    /// The node keeps serving but every job *started* during the window
    /// takes `slowdown` times longer (a degraded disk or noisy neighbour).
    Straggler {
        /// Service-time multiplier; values below 1 are treated as 1 (no
        /// speed-up faults).
        slowdown: f64,
        /// How long the degradation window lasts.
        duration: SimDuration,
    },
}

/// One scheduled fault: a kind, a target logical node slot, and a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// Logical node index targeted (resolved when the fault fires).
    pub node: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters for seeded schedule generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScheduleConfig {
    /// RNG seed; equal configs generate equal schedules.
    pub seed: u64,
    /// Faults are drawn uniformly in `[horizon/10, 9·horizon/10]` so they
    /// land inside the run, not on its edges.
    pub horizon: SimDuration,
    /// Logical node slots to draw targets from (`0..nodes`).
    pub nodes: u64,
    /// Permanent crashes to schedule.
    pub crashes: usize,
    /// Crash-with-restart events to schedule.
    pub restarts: usize,
    /// Straggler windows to schedule.
    pub stragglers: usize,
    /// Downtime of each crash-with-restart.
    pub down_for: SimDuration,
    /// Service-time multiplier inside straggler windows.
    pub slowdown: f64,
    /// Length of each straggler window.
    pub straggle_for: SimDuration,
}

impl Default for FaultScheduleConfig {
    fn default() -> Self {
        FaultScheduleConfig {
            seed: 42,
            horizon: SimDuration::from_secs(3600),
            nodes: 4,
            crashes: 1,
            restarts: 0,
            stragglers: 0,
            down_for: SimDuration::from_secs(300),
            slowdown: 4.0,
            straggle_for: SimDuration::from_secs(300),
        }
    }
}

/// An ordered, replayable set of fault injections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule with no faults (the failure-free legacy behavior).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit events, sorting them by time (ties
    /// keep the given order, so construction is deterministic).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Draws a schedule from a seed: `crashes` permanent crashes, then
    /// `restarts` crash-with-restarts, then `stragglers` windows, each at a
    /// uniform time in the middle 80% of the horizon on a uniform node slot.
    ///
    /// Deterministic: equal configs generate equal schedules.
    pub fn generate(cfg: &FaultScheduleConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0xFA17_5EED);
        let lo = cfg.horizon.as_nanos() / 10;
        let hi = (cfg.horizon.as_nanos() / 10).saturating_mul(9).max(lo + 1);
        let nodes = cfg.nodes.max(1);
        let draw = |rng: &mut SimRng| {
            let at = SimTime::from_nanos(rng.uniform_u64(lo, hi));
            let node = rng.uniform_u64(0, nodes);
            (at, node)
        };
        let mut events = Vec::with_capacity(cfg.crashes + cfg.restarts + cfg.stragglers);
        for _ in 0..cfg.crashes {
            let (at, node) = draw(&mut rng);
            events.push(FaultEvent {
                at,
                node,
                kind: FaultKind::Crash,
            });
        }
        for _ in 0..cfg.restarts {
            let (at, node) = draw(&mut rng);
            events.push(FaultEvent {
                at,
                node,
                kind: FaultKind::CrashRestart {
                    down_for: cfg.down_for,
                },
            });
        }
        for _ in 0..cfg.stragglers {
            let (at, node) = draw(&mut rng);
            events.push(FaultEvent {
                at,
                node,
                kind: FaultKind::Straggler {
                    slowdown: cfg.slowdown.max(1.0),
                    duration: cfg.straggle_for,
                },
            });
        }
        FaultSchedule::from_events(events)
    }

    /// The events, in nondecreasing time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True iff the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_events_sorts_by_time_stably() {
        let e = |secs: u64, node: u64| FaultEvent {
            at: SimTime::from_secs(secs),
            node,
            kind: FaultKind::Crash,
        };
        let s = FaultSchedule::from_events(vec![e(5, 0), e(1, 1), e(5, 2), e(3, 3)]);
        let order: Vec<u64> = s.events().iter().map(|ev| ev.node).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(FaultSchedule::none().is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultScheduleConfig {
            seed: 7,
            crashes: 3,
            restarts: 2,
            stragglers: 2,
            ..FaultScheduleConfig::default()
        };
        let a = FaultSchedule::generate(&cfg);
        let b = FaultSchedule::generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        let c = FaultSchedule::generate(&FaultScheduleConfig { seed: 8, ..cfg });
        assert_ne!(a, c, "different seeds should draw different schedules");
    }

    #[test]
    fn generated_faults_land_inside_the_run() {
        let cfg = FaultScheduleConfig {
            seed: 3,
            horizon: SimDuration::from_secs(1000),
            nodes: 8,
            crashes: 10,
            restarts: 10,
            stragglers: 10,
            ..FaultScheduleConfig::default()
        };
        let s = FaultSchedule::generate(&cfg);
        for ev in s.events() {
            assert!(ev.at >= SimTime::from_secs(100), "too early: {}", ev.at);
            assert!(ev.at <= SimTime::from_secs(900), "too late: {}", ev.at);
            assert!(ev.node < 8);
        }
    }

    #[test]
    fn straggler_slowdown_is_floored_at_one() {
        let cfg = FaultScheduleConfig {
            stragglers: 1,
            crashes: 0,
            slowdown: 0.25,
            ..FaultScheduleConfig::default()
        };
        let s = FaultSchedule::generate(&cfg);
        match s.events()[0].kind {
            FaultKind::Straggler { slowdown, .. } => {
                assert!((slowdown - 1.0).abs() < f64::EPSILON);
            }
            other => panic!("expected straggler, got {other:?}"),
        }
    }
}
