//! # nashdb-core
//!
//! The algorithms contributed by *NashDB: An End-to-End Economic Method for
//! Elastic Database Fragmentation, Replication, and Provisioning* (Marcus,
//! Papaemmanouil, Semenova, Garber — SIGMOD 2018), implemented from the paper.
//!
//! NashDB models queries as patrons who pay a price (their priority) for the
//! tuples they scan, tuples as goods, and cluster nodes as firms. Balancing
//! the supply of replicas against this demand yields, end to end:
//!
//! * [`value`] — **tuple value estimation** (§4): a sliding window of range
//!   scans feeds an augmented binary search tree keyed on scan start/end
//!   points; an in-order traversal recovers the piecewise-constant per-tuple
//!   value function `V(x)` in `O(|W|)`.
//! * [`fragment`] — **fragmentation** (§5): cut each table into `maxFrags`
//!   contiguous fragments minimizing the summed unnormalized variance of
//!   `V(x)` within fragments, either optimally (dynamic programming) or with
//!   the greedy split/merge heuristic.
//! * [`replication`] — **replication & provisioning** (§6): replicate each
//!   fragment to its profit-neutral count `Ideal(f)` and pack replicas onto
//!   the fewest nodes with Best-First-Fit-Decreasing class-constrained bin
//!   packing; the packed node count is the provisioning decision. The result
//!   is a Nash equilibrium (Definition 6.1), which [`economics`] can verify.
//! * [`transition`] — **cluster transitioning** (§7): move between schemes
//!   with minimum data transfer via a minimum-weight perfect bipartite
//!   matching (Kuhn–Munkres) between old and new nodes.
//! * [`routing`] — **scan routing** (§8): the Max-of-mins router balances
//!   data-access latency against query span.
//!
//! The crate is substrate-agnostic: it consumes scan streams and queue
//! observations and produces schemes and plans. `nashdb-cluster` supplies a
//! simulated elastic cluster; `nashdb` wires the full pipeline together.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[cfg(feature = "invariant-audit")]
pub mod audit;
pub mod economics;
pub mod fragment;
pub mod ids;
pub mod num;
pub(crate) mod obs_hooks;
pub mod replication;
pub mod routing;
pub mod transition;
pub mod value;

pub use economics::NodeSpec;
pub use fragment::{FragmentRange, Fragmentation};
pub use ids::{FragmentId, NodeId, QueryId, TupleIndex};
pub use value::{Chunk, PricedScan, TupleValueEstimator};
