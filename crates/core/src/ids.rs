//! Strongly-typed identifiers.
//!
//! Tuple indices, fragment ids, node ids, and query ids are all "just
//! integers"; newtypes keep them from being confused for one another at
//! compile time and document units at API boundaries.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The raw integer value.
            pub const fn get(self) -> u64 {
                self.0
            }

            /// The id as a container index. Ids are minted from in-memory
            /// container positions, so they always fit `usize`; the cast is
            /// lossless on every supported (>= 32-bit) target.
            #[allow(clippy::cast_possible_truncation)]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A tuple's index in the physical ordering of its table (paper §2: the
    /// `Start`/`End` values of a scan refer to these indices).
    TupleIndex,
    "t"
);

id_newtype!(
    /// Identifies a fragment within a fragmentation scheme. Ids are assigned
    /// in physical order (fragment 0 holds the lowest tuple indices).
    FragmentId,
    "f"
);

id_newtype!(
    /// Identifies a cluster node.
    NodeId,
    "n"
);

id_newtype!(
    /// Identifies a query (a priced set of range scans).
    QueryId,
    "q"
);

id_newtype!(
    /// Identifies a table. NashDB fragments each table independently.
    TableId,
    "tbl"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_prefix() {
        assert_eq!(format!("{}", FragmentId(3)), "f3");
        assert_eq!(format!("{}", NodeId(0)), "n0");
        assert_eq!(format!("{}", QueryId(12)), "q12");
        assert_eq!(format!("{}", TableId(1)), "tbl1");
        assert_eq!(format!("{}", TupleIndex(9)), "t9");
    }

    #[test]
    fn conversions_round_trip() {
        let id: NodeId = 7u64.into();
        assert_eq!(id.get(), 7);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(FragmentId(1) < FragmentId(2));
        let mut v = vec![NodeId(3), NodeId(1), NodeId(2)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }
}
