//! A `BTreeMap`-backed reference implementation of the value estimation
//! tree, used for differential testing of the AVL implementation and as the
//! baseline in the `value_tree` criterion bench.
//!
//! Semantically identical to [`AvlValueTree`](super::tree::AvlValueTree):
//! same keys, same deltas, same deletion rule (a key is dropped only when no
//! windowed scan starts or ends there).

use std::collections::BTreeMap;

use super::tree::Endpoint;
use super::ValueTreeError;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    delta: f64,
    start_count: u32,
    end_count: u32,
}

/// Reference value tree on `std::collections::BTreeMap`.
#[derive(Debug, Default)]
pub struct BTreeValueTree {
    map: BTreeMap<u64, Entry>,
}

impl BTreeValueTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no scans are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub(crate) fn add(&mut self, key: u64, weight: f64, endpoint: Endpoint) {
        let e = self.map.entry(key).or_default();
        match endpoint {
            Endpoint::Start => {
                e.delta += weight;
                e.start_count += 1;
            }
            Endpoint::End => {
                e.delta -= weight;
                e.end_count += 1;
            }
        }
    }

    pub(crate) fn remove(
        &mut self,
        key: u64,
        weight: f64,
        endpoint: Endpoint,
    ) -> Result<(), ValueTreeError> {
        let e = self
            .map
            .get_mut(&key)
            .ok_or(ValueTreeError::UntrackedKey { key })?;
        match endpoint {
            Endpoint::Start => {
                let next = e
                    .start_count
                    .checked_sub(1)
                    .ok_or(ValueTreeError::EndpointUnderflow { key })?;
                e.delta -= weight;
                e.start_count = next;
            }
            Endpoint::End => {
                let next = e
                    .end_count
                    .checked_sub(1)
                    .ok_or(ValueTreeError::EndpointUnderflow { key })?;
                e.delta += weight;
                e.end_count = next;
            }
        }
        if e.start_count == 0 && e.end_count == 0 {
            self.map.remove(&key);
        }
        Ok(())
    }

    /// Verifies that a scan endpoint of the given kind is tracked at `key`.
    pub(crate) fn check_removable(
        &self,
        key: u64,
        endpoint: Endpoint,
    ) -> Result<(), ValueTreeError> {
        let e = self
            .map
            .get(&key)
            .ok_or(ValueTreeError::UntrackedKey { key })?;
        let count = match endpoint {
            Endpoint::Start => e.start_count,
            Endpoint::End => e.end_count,
        };
        if count > 0 {
            Ok(())
        } else {
            Err(ValueTreeError::EndpointUnderflow { key })
        }
    }

    /// In-order `(key, ∆)` pairs.
    pub fn deltas(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.map.iter().map(|(&k, e)| (k, e.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_basic_semantics() {
        let mut t = BTreeValueTree::new();
        t.add(0, 1.0, Endpoint::Start);
        t.add(10, 1.0, Endpoint::End);
        t.add(0, 0.5, Endpoint::Start);
        t.add(5, 0.5, Endpoint::End);
        assert_eq!(t.len(), 3);
        let d: Vec<_> = t.deltas().collect();
        assert_eq!(d[0].0, 0);
        assert!((d[0].1 - 1.5).abs() < 1e-12);
        t.remove(0, 1.0, Endpoint::Start).unwrap();
        t.remove(10, 1.0, Endpoint::End).unwrap();
        assert_eq!(t.len(), 2);
        t.remove(0, 0.5, Endpoint::Start).unwrap();
        t.remove(5, 0.5, Endpoint::End).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn remove_unknown_is_an_error() {
        let mut t = BTreeValueTree::new();
        assert_eq!(
            t.remove(1, 1.0, Endpoint::Start),
            Err(ValueTreeError::UntrackedKey { key: 1 })
        );
        t.add(1, 1.0, Endpoint::End);
        assert_eq!(
            t.remove(1, 1.0, Endpoint::Start),
            Err(ValueTreeError::EndpointUnderflow { key: 1 })
        );
    }
}
