//! A `BTreeMap`-backed reference implementation of the value estimation
//! tree, used for differential testing of the AVL implementation and as the
//! baseline in the `value_tree` criterion bench.
//!
//! Semantically identical to [`AvlValueTree`](super::tree::AvlValueTree):
//! same keys, same deltas, same deletion rule (a key is dropped only when no
//! windowed scan starts or ends there).

use std::collections::BTreeMap;

use super::tree::Endpoint;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    delta: f64,
    start_count: u32,
    end_count: u32,
}

/// Reference value tree on `std::collections::BTreeMap`.
#[derive(Debug, Default)]
pub struct BTreeValueTree {
    map: BTreeMap<u64, Entry>,
}

impl BTreeValueTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no scans are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub(crate) fn add(&mut self, key: u64, weight: f64, endpoint: Endpoint) {
        let e = self.map.entry(key).or_default();
        match endpoint {
            Endpoint::Start => {
                e.delta += weight;
                e.start_count += 1;
            }
            Endpoint::End => {
                e.delta -= weight;
                e.end_count += 1;
            }
        }
    }

    pub(crate) fn remove(&mut self, key: u64, weight: f64, endpoint: Endpoint) {
        let e = self
            .map
            .get_mut(&key)
            .unwrap_or_else(|| panic!("removing a scan endpoint at untracked key {key}"));
        match endpoint {
            Endpoint::Start => {
                assert!(e.start_count > 0, "no scan starts at key {key}");
                e.delta -= weight;
                e.start_count -= 1;
            }
            Endpoint::End => {
                assert!(e.end_count > 0, "no scan ends at key {key}");
                e.delta += weight;
                e.end_count -= 1;
            }
        }
        if e.start_count == 0 && e.end_count == 0 {
            self.map.remove(&key);
        }
    }

    /// In-order `(key, ∆)` pairs.
    pub fn deltas(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.map.iter().map(|(&k, e)| (k, e.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_basic_semantics() {
        let mut t = BTreeValueTree::new();
        t.add(0, 1.0, Endpoint::Start);
        t.add(10, 1.0, Endpoint::End);
        t.add(0, 0.5, Endpoint::Start);
        t.add(5, 0.5, Endpoint::End);
        assert_eq!(t.len(), 3);
        let d: Vec<_> = t.deltas().collect();
        assert_eq!(d[0].0, 0);
        assert!((d[0].1 - 1.5).abs() < 1e-12);
        t.remove(0, 1.0, Endpoint::Start);
        t.remove(10, 1.0, Endpoint::End);
        assert_eq!(t.len(), 2);
        t.remove(0, 0.5, Endpoint::Start);
        t.remove(5, 0.5, Endpoint::End);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "untracked key")]
    fn remove_unknown_panics() {
        let mut t = BTreeValueTree::new();
        t.remove(1, 1.0, Endpoint::Start);
    }
}
