//! The value estimation tree (paper §4.2, with the Appendix A optimization).
//!
//! An AVL tree keyed on the tuple indices where some windowed scan starts or
//! ends. Following Appendix A we store the net delta `∆(n) = S(n) − E(n)`
//! (the change in per-scan income at that index) rather than `S` and `E`
//! separately; to make scan *removal* exact we additionally keep integer
//! counts of the scans starting/ending at each key and delete a node only
//! when both counts reach zero, so float residue can never strand ghost
//! nodes or drop live ones.
//!
//! An in-order traversal yields `(key, ∆)` pairs from which Algorithm 1
//! recovers the piecewise-constant tuple value function in `O(|W|)`.

use std::cmp::Ordering;

use super::ValueTreeError;

/// One tree node: a unique scan start/end index and its aggregated deltas.
#[derive(Debug)]
struct Node {
    key: u64,
    /// Net per-scan income change at `key`: Σ weights of scans starting here
    /// minus Σ weights of scans ending here.
    delta: f64,
    /// Number of windowed scans starting at `key`.
    start_count: u32,
    /// Number of windowed scans ending at `key`.
    end_count: u32,
    height: i32,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn new(key: u64) -> Box<Node> {
        Box::new(Node {
            key,
            delta: 0.0,
            start_count: 0,
            end_count: 0,
            height: 1,
            left: None,
            right: None,
        })
    }
}

fn height(node: &Option<Box<Node>>) -> i32 {
    node.as_ref().map_or(0, |n| n.height)
}

fn update(node: &mut Box<Node>) {
    node.height = 1 + height(&node.left).max(height(&node.right));
}

fn balance_factor(node: &Node) -> i32 {
    height(&node.left) - height(&node.right)
}

fn rotate_right(mut root: Box<Node>) -> Box<Node> {
    let Some(mut new_root) = root.left.take() else {
        unreachable!("rotate_right is only called on a left-heavy node");
    };
    root.left = new_root.right.take();
    update(&mut root);
    new_root.right = Some(root);
    update(&mut new_root);
    new_root
}

fn rotate_left(mut root: Box<Node>) -> Box<Node> {
    let Some(mut new_root) = root.right.take() else {
        unreachable!("rotate_left is only called on a right-heavy node");
    };
    root.right = new_root.left.take();
    update(&mut root);
    new_root.left = Some(root);
    update(&mut new_root);
    new_root
}

fn rebalance(mut node: Box<Node>) -> Box<Node> {
    update(&mut node);
    let bf = balance_factor(&node);
    if bf > 1 {
        crate::obs_hooks::counter_add("value_tree.rebalances", 1);
        // bf > 1 implies a left child of height >= 2.
        if node.left.as_ref().is_some_and(|l| balance_factor(l) < 0) {
            node.left = node.left.take().map(rotate_left);
        }
        rotate_right(node)
    } else if bf < -1 {
        crate::obs_hooks::counter_add("value_tree.rebalances", 1);
        // bf < -1 implies a right child of height >= 2.
        if node.right.as_ref().is_some_and(|r| balance_factor(r) > 0) {
            node.right = node.right.take().map(rotate_right);
        }
        rotate_left(node)
    } else {
        node
    }
}

/// Which endpoint of a scan a tree update refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    /// The (inclusive) starting tuple of a scan.
    Start,
    /// The (exclusive) ending tuple of a scan.
    End,
}

/// The AVL value estimation tree.
#[derive(Debug, Default)]
pub struct AvlValueTree {
    root: Option<Box<Node>>,
    len: usize,
}

impl AvlValueTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct scan start/end indices currently tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no scans are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes (for the paper's §10.1 overhead
    /// measurement): one allocation per node.
    pub fn approx_bytes(&self) -> usize {
        self.len * std::mem::size_of::<Node>()
    }

    /// Records one endpoint of a newly windowed scan: the scan's normalized
    /// weight `Price(s)/Size(s)` is added at its start key and subtracted at
    /// its end key.
    pub(crate) fn add(&mut self, key: u64, weight: f64, endpoint: Endpoint) {
        let signed = match endpoint {
            Endpoint::Start => weight,
            Endpoint::End => -weight,
        };
        let root = self.root.take();
        let (root, created) = Self::insert_into(root, key, signed, endpoint);
        self.root = Some(root);
        if created {
            self.len += 1;
        }
    }

    /// Reverses a prior [`add`](Self::add) when a scan leaves the window.
    /// Deletes the node once no windowed scan starts or ends at its key.
    ///
    /// # Errors
    /// Returns [`ValueTreeError::UntrackedKey`] if no scan endpoint is
    /// tracked at `key`, and [`ValueTreeError::EndpointUnderflow`] if no
    /// scan with this endpoint kind was inserted there. On error the tree is
    /// left unchanged.
    pub(crate) fn remove(
        &mut self,
        key: u64,
        weight: f64,
        endpoint: Endpoint,
    ) -> Result<(), ValueTreeError> {
        // Validate up front so a failed removal cannot mutate half the path.
        self.check_removable(key, endpoint)?;
        let signed = match endpoint {
            Endpoint::Start => -weight,
            Endpoint::End => weight,
        };
        let root = self.root.take();
        let (root, deleted) = Self::remove_from(root, key, signed, endpoint);
        self.root = root;
        if deleted {
            self.len -= 1;
        }
        Ok(())
    }

    /// Verifies that a scan endpoint of the given kind is tracked at `key`.
    pub(crate) fn check_removable(
        &self,
        key: u64,
        endpoint: Endpoint,
    ) -> Result<(), ValueTreeError> {
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            match key.cmp(&n.key) {
                Ordering::Equal => {
                    let count = match endpoint {
                        Endpoint::Start => n.start_count,
                        Endpoint::End => n.end_count,
                    };
                    return if count > 0 {
                        Ok(())
                    } else {
                        Err(ValueTreeError::EndpointUnderflow { key })
                    };
                }
                Ordering::Less => node = n.left.as_deref(),
                Ordering::Greater => node = n.right.as_deref(),
            }
        }
        Err(ValueTreeError::UntrackedKey { key })
    }

    fn insert_into(
        node: Option<Box<Node>>,
        key: u64,
        signed_weight: f64,
        endpoint: Endpoint,
    ) -> (Box<Node>, bool) {
        let Some(mut node) = node else {
            let mut n = Node::new(key);
            Self::apply(&mut n, signed_weight, endpoint, 1);
            return (n, true);
        };
        let created = match key.cmp(&node.key) {
            Ordering::Equal => {
                Self::apply(&mut node, signed_weight, endpoint, 1);
                return (node, false);
            }
            Ordering::Less => {
                let (child, created) =
                    Self::insert_into(node.left.take(), key, signed_weight, endpoint);
                node.left = Some(child);
                created
            }
            Ordering::Greater => {
                let (child, created) =
                    Self::insert_into(node.right.take(), key, signed_weight, endpoint);
                node.right = Some(child);
                created
            }
        };
        (rebalance(node), created)
    }

    fn apply(node: &mut Node, signed_weight: f64, endpoint: Endpoint, dir: i64) {
        node.delta += signed_weight;
        let key = node.key;
        let bump = |count: &mut u32| {
            if dir > 0 {
                *count += 1;
            } else {
                // Removals are validated by `check_removable` before any
                // mutation, so the count cannot underflow here.
                let Some(next) = count.checked_sub(1) else {
                    unreachable!("unvalidated removal at key {key}");
                };
                *count = next;
            }
        };
        match endpoint {
            Endpoint::Start => bump(&mut node.start_count),
            Endpoint::End => bump(&mut node.end_count),
        }
    }

    fn remove_from(
        node: Option<Box<Node>>,
        key: u64,
        signed_weight: f64,
        endpoint: Endpoint,
    ) -> (Option<Box<Node>>, bool) {
        let Some(mut node) = node else {
            // `check_removable` proved the key exists before we started.
            unreachable!("unvalidated removal at untracked key {key}");
        };
        let deleted = match key.cmp(&node.key) {
            Ordering::Equal => {
                Self::apply(&mut node, signed_weight, endpoint, -1);
                if node.start_count == 0 && node.end_count == 0 {
                    return (Self::delete_node(node), true);
                }
                false
            }
            Ordering::Less => {
                let (child, deleted) =
                    Self::remove_from(node.left.take(), key, signed_weight, endpoint);
                node.left = child;
                deleted
            }
            Ordering::Greater => {
                let (child, deleted) =
                    Self::remove_from(node.right.take(), key, signed_weight, endpoint);
                node.right = child;
                deleted
            }
        };
        (Some(rebalance(node)), deleted)
    }

    /// Removes `node` from the tree, returning the replacement subtree.
    #[allow(clippy::boxed_local)] // nodes live in Boxes; unboxing here would re-allocate
    fn delete_node(mut node: Box<Node>) -> Option<Box<Node>> {
        match (node.left.take(), node.right.take()) {
            (None, None) => None,
            (Some(l), None) => Some(l),
            (None, Some(r)) => Some(r),
            (Some(l), Some(r)) => {
                // Replace with the in-order successor (min of right subtree).
                let (r, mut successor) = Self::pop_min(r);
                successor.left = Some(l);
                successor.right = r;
                Some(rebalance(successor))
            }
        }
    }

    fn pop_min(mut node: Box<Node>) -> (Option<Box<Node>>, Box<Node>) {
        match node.left.take() {
            None => {
                let right = node.right.take();
                (right, node)
            }
            Some(l) => {
                let (rest, min) = Self::pop_min(l);
                node.left = rest;
                (Some(rebalance(node)), min)
            }
        }
    }

    /// In-order `(key, ∆)` pairs — the input to Algorithm 1.
    pub fn deltas(&self) -> Deltas<'_> {
        let mut iter = Deltas { stack: Vec::new() };
        iter.push_left(self.root.as_deref());
        iter
    }

    /// Maximum depth (for balance verification in tests).
    #[cfg(test)]
    pub(crate) fn height(&self) -> i32 {
        height(&self.root)
    }

    /// Walks the whole tree checking the AVL balance factor and the cached
    /// height of every node, returning the key of the first offender.
    #[cfg(any(test, feature = "invariant-audit"))]
    pub(crate) fn balance_violation(&self) -> Option<u64> {
        fn walk(node: &Option<Box<Node>>) -> Result<i32, u64> {
            match node {
                None => Ok(0),
                Some(n) => {
                    let l = walk(&n.left)?;
                    let r = walk(&n.right)?;
                    if (l - r).abs() > 1 || n.height != 1 + l.max(r) {
                        return Err(n.key);
                    }
                    Ok(n.height)
                }
            }
        }
        walk(&self.root).err()
    }

    #[cfg(test)]
    pub(crate) fn assert_balanced(&self) {
        if let Some(key) = self.balance_violation() {
            panic!("unbalanced or stale height at key {key}");
        }
    }
}

/// In-order iterator over `(key, ∆)`.
#[derive(Debug)]
pub struct Deltas<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Deltas<'a> {
    fn push_left(&mut self, mut node: Option<&'a Node>) {
        while let Some(n) = node {
            self.stack.push(n);
            node = n.left.as_deref();
        }
    }
}

impl Iterator for Deltas<'_> {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        self.push_left(node.right.as_deref());
        Some((node.key, node.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_scan(tree: &mut AvlValueTree, start: u64, end: u64, weight: f64) {
        tree.add(start, weight, Endpoint::Start);
        tree.add(end, weight, Endpoint::End);
    }

    fn remove_scan(tree: &mut AvlValueTree, start: u64, end: u64, weight: f64) {
        tree.remove(start, weight, Endpoint::Start).unwrap();
        tree.remove(end, weight, Endpoint::End).unwrap();
    }

    /// The paper's Figure 2: scans (7,10,price 6), (4,10,price 3),
    /// (0,5,price 3/... price 3 over 5 tuples? Fig 2: s1=(7..10, price 6),
    /// s2=(4..10, price 3), s3=(0..5, price 5).
    fn figure2_tree() -> AvlValueTree {
        let mut t = AvlValueTree::new();
        add_scan(&mut t, 7, 10, 6.0 / 3.0); // s1: 3 tuples, price 6
        add_scan(&mut t, 4, 10, 3.0 / 6.0); // s2: 6 tuples, price 3
        add_scan(&mut t, 0, 5, 1.0); // s3: 5 tuples, price 5 -> weight 1
        t
    }

    #[test]
    fn figure2_deltas_match_paper() {
        let t = figure2_tree();
        assert_eq!(t.len(), 5);
        let deltas: Vec<(u64, f64)> = t.deltas().collect();
        let expect = [
            (0u64, 1.0), // S=1, E=0
            (4, 0.5),    // S=0.5, E=0
            (5, -1.0),   // S=0, E=1
            (7, 2.0),    // S=2, E=0
            (10, -2.5),  // S=0, E=2.5
        ];
        assert_eq!(deltas.len(), expect.len());
        for ((k, d), (ek, ed)) in deltas.iter().zip(expect.iter()) {
            assert_eq!(k, ek);
            assert!((d - ed).abs() < 1e-12, "key {k}: {d} vs {ed}");
        }
    }

    #[test]
    fn shared_keys_accumulate() {
        let mut t = AvlValueTree::new();
        add_scan(&mut t, 0, 10, 1.0);
        add_scan(&mut t, 0, 10, 2.0);
        assert_eq!(t.len(), 2);
        let d: Vec<_> = t.deltas().collect();
        assert!((d[0].1 - 3.0).abs() < 1e-12);
        assert!((d[1].1 + 3.0).abs() < 1e-12);
    }

    #[test]
    fn removal_deletes_empty_nodes() {
        let mut t = figure2_tree();
        remove_scan(&mut t, 7, 10, 6.0 / 3.0);
        // Key 7 disappears; key 10 stays (s2 still ends there).
        let keys: Vec<u64> = t.deltas().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 4, 5, 10]);
        remove_scan(&mut t, 4, 10, 3.0 / 6.0);
        let keys: Vec<u64> = t.deltas().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 5]);
        remove_scan(&mut t, 0, 5, 1.0);
        assert!(t.is_empty());
        assert_eq!(t.deltas().count(), 0);
    }

    #[test]
    fn start_and_end_at_same_key_keeps_node_until_both_gone() {
        let mut t = AvlValueTree::new();
        add_scan(&mut t, 0, 5, 1.0); // ends at 5
        add_scan(&mut t, 5, 9, 2.0); // starts at 5
        assert_eq!(t.len(), 3); // keys 0, 5 (shared), 9
        remove_scan(&mut t, 0, 5, 1.0);
        // Key 5 must survive: a scan still starts there.
        let keys: Vec<u64> = t.deltas().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![5, 9]);
    }

    #[test]
    fn removing_unknown_key_is_an_error() {
        let mut t = AvlValueTree::new();
        assert_eq!(
            t.remove(3, 1.0, Endpoint::Start),
            Err(ValueTreeError::UntrackedKey { key: 3 })
        );
    }

    #[test]
    fn removing_wrong_endpoint_is_an_error() {
        let mut t = AvlValueTree::new();
        t.add(3, 1.0, Endpoint::Start);
        assert_eq!(
            t.remove(3, 1.0, Endpoint::End),
            Err(ValueTreeError::EndpointUnderflow { key: 3 })
        );
        // The failed removal left the tree untouched.
        assert_eq!(t.len(), 1);
        let d: Vec<_> = t.deltas().collect();
        assert!((d[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stays_balanced_under_sequential_inserts() {
        let mut t = AvlValueTree::new();
        for i in 0..1024u64 {
            t.add(i, 1.0, Endpoint::Start);
        }
        t.assert_balanced();
        // A balanced tree over 1024 keys has height ~10..14; a degenerate
        // list would be 1024.
        assert!(t.height() <= 15, "height {}", t.height());
    }

    #[test]
    fn stays_balanced_under_mixed_churn() {
        let mut t = AvlValueTree::new();
        for i in 0..512u64 {
            add_scan(&mut t, i * 7 % 997, i * 7 % 997 + 10, 1.0);
        }
        t.assert_balanced();
        for i in 0..512u64 {
            remove_scan(&mut t, i * 7 % 997, i * 7 % 997 + 10, 1.0);
            if i % 64 == 0 {
                t.assert_balanced();
            }
        }
        assert!(t.is_empty());
    }

    #[test]
    fn approx_bytes_tracks_len() {
        let mut t = AvlValueTree::new();
        assert_eq!(t.approx_bytes(), 0);
        add_scan(&mut t, 0, 10, 1.0);
        assert_eq!(t.approx_bytes(), 2 * std::mem::size_of::<Node>());
    }
}
