//! Tuple value estimation (paper §4).
//!
//! Each incoming query's price is split across its range scans in proportion
//! to scan size (Eq. 1); each scan then contributes `Price(s)/Size(s)` to
//! every tuple it reads. Averaged over a sliding window of the most recent
//! `|W|` scans this yields the tuple value function `V(x)` (Eq. 2), which is
//! piecewise constant with breakpoints only at scan start/end indices — so
//! NashDB stores just those breakpoints in a balanced tree and recovers all
//! values with one in-order traversal (Algorithm 1).

mod reference;
mod tree;

pub use reference::BTreeValueTree;
pub use tree::AvlValueTree;

use std::collections::VecDeque;

use tree::Endpoint;

/// Errors from value-tree scan removal: both variants indicate the caller is
/// trying to un-track a scan endpoint that is not currently tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueTreeError {
    /// No windowed scan starts or ends at the key.
    UntrackedKey {
        /// The untracked tuple index.
        key: u64,
    },
    /// The key is tracked, but no scan with the given endpoint kind (start
    /// vs. end) was inserted there.
    EndpointUnderflow {
        /// The tuple index whose endpoint count would go negative.
        key: u64,
    },
}

impl std::fmt::Display for ValueTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueTreeError::UntrackedKey { key } => {
                write!(f, "removing a scan endpoint at untracked key {key}")
            }
            ValueTreeError::EndpointUnderflow { key } => {
                write!(f, "removing a scan endpoint never inserted at key {key}")
            }
        }
    }
}

impl std::error::Error for ValueTreeError {}

/// A range scan annotated with the share of its query's price it carries
/// (paper Eq. 1).
///
/// `start` is inclusive, `end` exclusive, both tuple indices in the physical
/// ordering of the scanned table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricedScan {
    /// First tuple read (inclusive).
    pub start: u64,
    /// One past the last tuple read (exclusive).
    pub end: u64,
    /// The price apportioned to this scan.
    pub price: f64,
}

impl PricedScan {
    /// Creates a scan, validating its range and price.
    ///
    /// # Panics
    /// Panics if the range is empty/inverted or the price is negative or
    /// non-finite.
    pub fn new(start: u64, end: u64, price: f64) -> Self {
        assert!(start < end, "empty scan range {start}..{end}");
        assert!(
            price.is_finite() && price >= 0.0,
            "scan price must be finite and nonnegative, got {price}"
        );
        PricedScan { start, end, price }
    }

    /// Number of tuples the scan reads.
    pub fn size(&self) -> u64 {
        self.end - self.start
    }

    /// The scan's per-tuple income `Price(s)/Size(s)`.
    pub fn weight(&self) -> f64 {
        self.price / self.size() as f64
    }
}

/// Splits a query's price across its scans proportionally to scan size
/// (paper Eq. 1), returning one [`PricedScan`] per input range.
///
/// # Panics
/// Panics if any range is empty or the price is negative/non-finite.
pub fn split_query_price(query_price: f64, scans: &[(u64, u64)]) -> Vec<PricedScan> {
    assert!(
        query_price.is_finite() && query_price >= 0.0,
        "query price must be finite and nonnegative, got {query_price}"
    );
    let total: u64 = scans
        .iter()
        .map(|&(s, e)| {
            assert!(s < e, "empty scan range {s}..{e}");
            e - s
        })
        .sum();
    scans
        .iter()
        .map(|&(s, e)| {
            let share = (e - s) as f64 / total as f64;
            PricedScan::new(s, e, share * query_price)
        })
        .collect()
}

/// A maximal run of tuples sharing the same estimated value `V(x)` — the
/// output of Algorithm 1 and the unit the fragmentation algorithms operate
/// on (splitting inside a constant-value run can never reduce fragment
/// error, so chunk boundaries are the only candidate cut points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chunk {
    /// First tuple (inclusive).
    pub start: u64,
    /// One past the last tuple (exclusive).
    pub end: u64,
    /// Per-tuple value `V(x)` for every tuple in the run.
    pub value: f64,
}

impl Chunk {
    /// Number of tuples in the run.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True iff the run is empty (never produced by the estimator).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Σ V(x) over the run.
    pub fn sum(&self) -> f64 {
        self.value * self.len() as f64
    }

    /// Σ V(x)² over the run.
    pub fn sum_sq(&self) -> f64 {
        self.value * self.value * self.len() as f64
    }
}

/// Storage backend for the value estimation tree; implemented by the AVL
/// tree from the paper and by a `BTreeMap` reference used for differential
/// testing and benchmarking.
pub trait ValueTreeBackend: Default {
    /// Records a scan's endpoints with weight `Price(s)/Size(s)`.
    fn add_scan(&mut self, scan: &PricedScan);
    /// Reverses [`add_scan`](Self::add_scan) when the scan leaves the window.
    ///
    /// # Errors
    /// Fails (leaving the tree unchanged) when the scan was never added —
    /// see [`ValueTreeError`].
    fn remove_scan(&mut self, scan: &PricedScan) -> Result<(), ValueTreeError>;
    /// Visits in-order `(key, ∆)` pairs.
    fn visit_deltas(&self, visit: &mut dyn FnMut(u64, f64));
    /// Number of tracked breakpoints.
    fn tracked_keys(&self) -> usize;
}

impl ValueTreeBackend for AvlValueTree {
    fn add_scan(&mut self, scan: &PricedScan) {
        self.add(scan.start, scan.weight(), Endpoint::Start);
        self.add(scan.end, scan.weight(), Endpoint::End);
    }
    fn remove_scan(&mut self, scan: &PricedScan) -> Result<(), ValueTreeError> {
        // A scan spans two distinct keys; validate both before touching
        // either so a failed removal leaves the tree fully intact.
        self.check_removable(scan.start, Endpoint::Start)?;
        self.check_removable(scan.end, Endpoint::End)?;
        self.remove(scan.start, scan.weight(), Endpoint::Start)?;
        self.remove(scan.end, scan.weight(), Endpoint::End)?;
        Ok(())
    }
    fn visit_deltas(&self, visit: &mut dyn FnMut(u64, f64)) {
        for (k, d) in self.deltas() {
            visit(k, d);
        }
    }
    fn tracked_keys(&self) -> usize {
        self.len()
    }
}

impl ValueTreeBackend for BTreeValueTree {
    fn add_scan(&mut self, scan: &PricedScan) {
        self.add(scan.start, scan.weight(), Endpoint::Start);
        self.add(scan.end, scan.weight(), Endpoint::End);
    }
    fn remove_scan(&mut self, scan: &PricedScan) -> Result<(), ValueTreeError> {
        self.check_removable(scan.start, Endpoint::Start)?;
        self.check_removable(scan.end, Endpoint::End)?;
        self.remove(scan.start, scan.weight(), Endpoint::Start)?;
        self.remove(scan.end, scan.weight(), Endpoint::End)?;
        Ok(())
    }
    fn visit_deltas(&self, visit: &mut dyn FnMut(u64, f64)) {
        for (k, d) in self.deltas() {
            visit(k, d);
        }
    }
    fn tracked_keys(&self) -> usize {
        self.len()
    }
}

/// The tuple value estimator: a scan window (ring buffer) plus a value
/// estimation tree, per table.
///
/// ```
/// use nashdb_core::value::{PricedScan, TupleValueEstimator};
///
/// let mut est = TupleValueEstimator::new(3);
/// est.observe(PricedScan::new(7, 10, 6.0));
/// est.observe(PricedScan::new(4, 10, 3.0));
/// est.observe(PricedScan::new(0, 5, 5.0));
/// // Paper §4.2 worked example: tuples 7..10 are worth 2.5/3 each.
/// let v = est.value_at(8, 12);
/// assert!((v - 2.5 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct TupleValueEstimator<B: ValueTreeBackend = AvlValueTree> {
    tree: B,
    window: VecDeque<PricedScan>,
    capacity: usize,
}

impl TupleValueEstimator<AvlValueTree> {
    /// Creates an estimator over a window of `capacity` scans, backed by the
    /// paper's AVL tree.
    pub fn new(capacity: usize) -> Self {
        Self::with_backend(capacity)
    }
}

impl<B: ValueTreeBackend> TupleValueEstimator<B> {
    /// Creates an estimator with an explicit tree backend.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_backend(capacity: usize) -> Self {
        assert!(capacity > 0, "scan window must hold at least one scan");
        TupleValueEstimator {
            tree: B::default(),
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Scan window capacity `|W|`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of scans currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// True once the window has filled to capacity.
    pub fn is_warm(&self) -> bool {
        self.window.len() == self.capacity
    }

    /// Number of breakpoints tracked by the tree (for overhead reporting).
    pub fn tracked_keys(&self) -> usize {
        self.tree.tracked_keys()
    }

    /// Read-only access to the backing tree (for overhead reporting).
    pub fn tree(&self) -> &B {
        &self.tree
    }

    /// The scans currently in the window, oldest first.
    pub fn scans(&self) -> impl Iterator<Item = &PricedScan> + '_ {
        self.window.iter()
    }

    /// Folds one priced scan into the window, evicting the oldest scan if
    /// the window is full. Returns the evicted scan, if any.
    pub fn observe(&mut self, scan: PricedScan) -> Option<PricedScan> {
        let evicted = if self.window.len() == self.capacity {
            self.window.pop_front()
        } else {
            None
        };
        if let Some(old) = &evicted {
            // Every windowed scan was added to the tree when it entered the
            // window, so removing it on eviction cannot fail.
            if let Err(e) = self.tree.remove_scan(old) {
                unreachable!("windowed scan missing from value tree: {e}");
            }
            crate::obs_hooks::counter_add("value_tree.evictions", 1);
        }
        self.tree.add_scan(&scan);
        self.window.push_back(scan);
        crate::obs_hooks::counter_add("value_tree.inserts", 1);
        evicted
    }

    /// Folds a whole query in: splits `price` across `scans` by Eq. 1 and
    /// observes each.
    pub fn observe_query(&mut self, price: f64, scans: &[(u64, u64)]) {
        for s in split_query_price(price, scans) {
            self.observe(s);
        }
    }

    /// Algorithm 1: recovers the piecewise-constant `V(x)` over
    /// `[0, table_len)` as a list of [`Chunk`]s, including zero-valued gaps,
    /// in one in-order traversal.
    ///
    /// Scan endpoints beyond `table_len` are clamped to it.
    pub fn chunks(&self, table_len: u64) -> Vec<Chunk> {
        let mut chunks = Vec::new();
        if table_len == 0 {
            return chunks;
        }
        let w = self.window.len();
        if w == 0 {
            chunks.push(Chunk {
                start: 0,
                end: table_len,
                value: 0.0,
            });
            return chunks;
        }
        let norm = |alpha: f64| (alpha / w as f64).max(0.0);
        let mut alpha = 0.0f64;
        let mut prev = 0u64;
        self.tree.visit_deltas(&mut |key, delta| {
            let key = key.min(table_len);
            if key > prev {
                chunks.push(Chunk {
                    start: prev,
                    end: key,
                    value: norm(alpha),
                });
                prev = key;
            }
            alpha += delta;
        });
        if table_len > prev {
            chunks.push(Chunk {
                start: prev,
                end: table_len,
                value: norm(alpha),
            });
        }
        chunks
    }

    /// `V(x)` for a single tuple — a test/debug helper; use
    /// [`chunks`](Self::chunks) for bulk access.
    pub fn value_at(&self, x: u64, table_len: u64) -> f64 {
        self.chunks(table_len)
            .iter()
            .find(|c| c.start <= x && x < c.end)
            .map_or(0.0, |c| c.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    /// The paper's §4.2 worked example end to end: values 1/3, 1.5/3, 0.5/3,
    /// 2.5/3, 0 across the breakpoints 0,4,5,7,10.
    #[test]
    fn paper_worked_example() {
        let mut est = TupleValueEstimator::new(3);
        est.observe(PricedScan::new(7, 10, 6.0));
        est.observe(PricedScan::new(4, 10, 3.0));
        est.observe(PricedScan::new(0, 5, 5.0));
        let chunks = est.chunks(12);
        let expect = [
            (0u64, 4u64, 1.0 / 3.0),
            (4, 5, 1.5 / 3.0),
            (5, 7, 0.5 / 3.0),
            (7, 10, 2.5 / 3.0),
            (10, 12, 0.0),
        ];
        assert_eq!(chunks.len(), expect.len());
        for (c, &(s, e, v)) in chunks.iter().zip(&expect) {
            assert_eq!((c.start, c.end), (s, e));
            assert_close(c.value, v);
        }
    }

    #[test]
    fn split_query_price_is_proportional() {
        let scans = split_query_price(9.0, &[(0, 10), (100, 120)]);
        assert_close(scans[0].price, 3.0);
        assert_close(scans[1].price, 6.0);
        // Per-tuple weight is equal across the query's scans (both 0.3).
        assert_close(scans[0].weight(), scans[1].weight());
    }

    #[test]
    fn eviction_forgets_old_scans() {
        let mut est = TupleValueEstimator::new(2);
        est.observe(PricedScan::new(0, 10, 10.0));
        est.observe(PricedScan::new(0, 10, 10.0));
        assert!(est.is_warm());
        // Third scan evicts the first.
        let evicted = est.observe(PricedScan::new(50, 60, 20.0));
        assert_eq!(evicted, Some(PricedScan::new(0, 10, 10.0)));
        assert_eq!(est.window_len(), 2);
        // 0..10 now carries only one scan of weight 1.0 over window 2.
        assert_close(est.value_at(5, 100), 0.5);
        assert_close(est.value_at(55, 100), 1.0);
    }

    #[test]
    fn empty_window_is_all_zero() {
        let est = TupleValueEstimator::new(5);
        let chunks = est.chunks(100);
        assert_eq!(chunks.len(), 1);
        assert_close(chunks[0].value, 0.0);
        assert_eq!((chunks[0].start, chunks[0].end), (0, 100));
    }

    #[test]
    fn zero_table_has_no_chunks() {
        let est = TupleValueEstimator::new(5);
        assert!(est.chunks(0).is_empty());
    }

    #[test]
    fn chunks_cover_table_exactly() {
        let mut est = TupleValueEstimator::new(10);
        est.observe_query(4.0, &[(3, 9), (20, 40)]);
        let chunks = est.chunks(64);
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, 64);
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap or overlap in {chunks:?}");
        }
    }

    #[test]
    fn scan_past_table_end_is_clamped() {
        let mut est = TupleValueEstimator::new(1);
        est.observe(PricedScan::new(5, 100, 1.0));
        let chunks = est.chunks(10);
        assert_eq!(chunks.last().unwrap().end, 10);
        assert!(chunks.iter().all(|c| c.end <= 10));
    }

    #[test]
    fn chunk_sums() {
        let c = Chunk {
            start: 10,
            end: 20,
            value: 0.5,
        };
        assert_eq!(c.len(), 10);
        assert_close(c.sum(), 5.0);
        assert_close(c.sum_sq(), 2.5);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one scan")]
    fn zero_capacity_rejected() {
        let _ = TupleValueEstimator::new(0);
    }

    #[test]
    #[should_panic(expected = "empty scan range")]
    fn inverted_scan_rejected() {
        let _ = PricedScan::new(5, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_price_rejected() {
        let _ = PricedScan::new(0, 5, -1.0);
    }

    #[test]
    fn backends_agree_on_a_workload() {
        let mut avl: TupleValueEstimator<AvlValueTree> = TupleValueEstimator::with_backend(8);
        let mut bt: TupleValueEstimator<BTreeValueTree> = TupleValueEstimator::with_backend(8);
        let scans = [
            (0u64, 50u64, 5.0f64),
            (10, 30, 2.0),
            (25, 75, 7.0),
            (0, 100, 1.0),
            (40, 45, 9.0),
            (10, 30, 2.0),
            (60, 90, 4.0),
            (5, 6, 1.0),
            (0, 50, 5.0),
            (25, 75, 7.0),
            (90, 100, 3.0),
            (1, 99, 2.5),
        ];
        for &(s, e, p) in &scans {
            avl.observe(PricedScan::new(s, e, p));
            bt.observe(PricedScan::new(s, e, p));
            let ca = avl.chunks(100);
            let cb = bt.chunks(100);
            assert_eq!(ca.len(), cb.len());
            for (a, b) in ca.iter().zip(&cb) {
                assert_eq!((a.start, a.end), (b.start, b.end));
                assert!((a.value - b.value).abs() < 1e-12);
            }
        }
    }
}
