//! Prefix statistics over value chunks (paper §5.2).
//!
//! The fragment error (unnormalized variance, Eq. 4) of any tuple range can
//! be computed in `O(log m)` from prefix sums of `V(x)` and `V(x)²` over the
//! `m` chunks of the piecewise-constant value function — the constant-time
//! array lookup of the paper, plus a binary search because our "array" is
//! compressed into runs.

use super::FragmentError;
use crate::value::Chunk;

/// Prefix sums of `V(x)` and `V(x)²` over a chunked value function.
#[derive(Debug, Clone)]
pub struct ChunkPrefix {
    /// Chunk boundaries: `bounds[0] = 0`, `bounds[m] = table_len`.
    bounds: Vec<u64>,
    /// Per-chunk value (length `m`).
    values: Vec<f64>,
    /// `s[i]` = Σ V(x) for tuples before `bounds[i]`.
    s: Vec<f64>,
    /// `s2[i]` = Σ V(x)² for tuples before `bounds[i]`.
    s2: Vec<f64>,
}

impl ChunkPrefix {
    /// Builds prefix statistics from contiguous chunks covering
    /// `[0, table_len)`.
    ///
    /// # Errors
    /// Returns a [`FragmentError`] if the chunks are empty, do not start at
    /// zero, are not contiguous, or contain an empty chunk.
    pub fn new(chunks: &[Chunk]) -> Result<Self, FragmentError> {
        let Some(first) = chunks.first() else {
            return Err(FragmentError::NoChunks);
        };
        if first.start != 0 {
            return Err(FragmentError::NotAtZero { start: first.start });
        }
        let m = chunks.len();
        let mut bounds = Vec::with_capacity(m + 1);
        let mut values = Vec::with_capacity(m);
        let mut s = Vec::with_capacity(m + 1);
        let mut s2 = Vec::with_capacity(m + 1);
        bounds.push(0);
        s.push(0.0);
        s2.push(0.0);
        let mut acc = 0.0;
        let mut acc2 = 0.0;
        let mut prev_end = 0;
        for c in chunks {
            if c.start != prev_end {
                return Err(FragmentError::Discontiguous {
                    expected: prev_end,
                    got: c.start,
                });
            }
            if c.end <= c.start {
                return Err(FragmentError::EmptyChunk {
                    start: c.start,
                    end: c.end,
                });
            }
            prev_end = c.end;
            acc += c.sum();
            acc2 += c.sum_sq();
            bounds.push(c.end);
            values.push(c.value);
            s.push(acc);
            s2.push(acc2);
        }
        Ok(ChunkPrefix {
            bounds,
            values,
            s,
            s2,
        })
    }

    /// Total number of tuples covered.
    pub fn table_len(&self) -> u64 {
        self.bounds.last().map_or(0, |&last| last)
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.values.len()
    }

    /// The chunk boundaries (candidate fragment cut points), including 0 and
    /// `table_len`.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Index of the chunk containing tuple `x`.
    ///
    /// # Errors
    /// Returns [`FragmentError::TupleOutOfRange`] if `x >= table_len`.
    pub fn chunk_of(&self, x: u64) -> Result<usize, FragmentError> {
        if x >= self.table_len() {
            return Err(FragmentError::TupleOutOfRange {
                x,
                table_len: self.table_len(),
            });
        }
        // partition_point gives the first bound > x; the chunk is one before.
        Ok(self.bounds.partition_point(|&b| b <= x).saturating_sub(1))
    }

    /// Σ V(x) over tuple range `[a, b)`.
    pub fn sum(&self, a: u64, b: u64) -> f64 {
        self.cum(&self.s, b, 1) - self.cum(&self.s, a, 1)
    }

    /// Σ V(x)² over tuple range `[a, b)`.
    pub fn sum_sq(&self, a: u64, b: u64) -> f64 {
        self.cum(&self.s2, b, 2) - self.cum(&self.s2, a, 2)
    }

    /// Fragment error (paper Eq. 4 via Eq. 6, with the `1/Size` that the
    /// paper's printed Eq. 6 drops — see DESIGN.md): the unnormalized
    /// variance of `V(x)` over `[a, b)`. Clamped at zero against float
    /// residue.
    ///
    /// Out-of-contract ranges (empty, or extending beyond the table) are
    /// clamped and contribute zero error; debug builds assert on them so
    /// tests still catch misuse. Use [`ChunkPrefix::try_error`] to surface
    /// the violation as a typed error instead.
    pub fn error(&self, a: u64, b: u64) -> f64 {
        debug_assert!(a < b, "empty fragment {a}..{b}");
        debug_assert!(b <= self.table_len(), "fragment {a}..{b} beyond table");
        let b = b.min(self.table_len());
        if a >= b {
            return 0.0;
        }
        let sum = self.sum(a, b);
        let sum_sq = self.sum_sq(a, b);
        (sum_sq - sum * sum / (b - a) as f64).max(0.0)
    }

    /// Checked variant of [`ChunkPrefix::error`].
    ///
    /// # Errors
    /// Returns [`FragmentError::EmptyRange`] if `a >= b` and
    /// [`FragmentError::RangeBeyondTable`] if `b > table_len`.
    pub fn try_error(&self, a: u64, b: u64) -> Result<f64, FragmentError> {
        if a >= b {
            return Err(FragmentError::EmptyRange { start: a, end: b });
        }
        if b > self.table_len() {
            return Err(FragmentError::RangeBeyondTable {
                start: a,
                end: b,
                table_len: self.table_len(),
            });
        }
        Ok(self.error(a, b))
    }

    /// Cumulative Σ V^`power` for tuples before index `x` (which may be
    /// `table_len`), handling a partial final chunk.
    fn cum(&self, prefix: &[f64], x: u64, power: u32) -> f64 {
        if x == 0 {
            return 0.0;
        }
        if x >= self.table_len() {
            return prefix.last().map_or(0.0, |&total| total);
        }
        // In range by the guard above, so chunk_of cannot fail.
        let idx = self.bounds.partition_point(|&b| b <= x).saturating_sub(1);
        let v = self.values[idx];
        let partial = (x - self.bounds[idx]) as f64 * v.powi(power as i32);
        prefix[idx] + partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks() -> Vec<Chunk> {
        vec![
            Chunk {
                start: 0,
                end: 4,
                value: 1.0,
            },
            Chunk {
                start: 4,
                end: 10,
                value: 3.0,
            },
            Chunk {
                start: 10,
                end: 12,
                value: 0.0,
            },
        ]
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn sums_match_direct() {
        let p = ChunkPrefix::new(&chunks()).unwrap();
        assert_eq!(p.table_len(), 12);
        assert_eq!(p.num_chunks(), 3);
        assert_close(p.sum(0, 12), 4.0 + 18.0);
        assert_close(p.sum(2, 6), 2.0 + 6.0);
        assert_close(p.sum_sq(2, 6), 2.0 + 18.0);
        assert_close(p.sum(10, 12), 0.0);
        assert_close(p.sum(5, 5), 0.0);
    }

    #[test]
    fn chunk_of_boundaries() {
        let p = ChunkPrefix::new(&chunks()).unwrap();
        assert_eq!(p.chunk_of(0), Ok(0));
        assert_eq!(p.chunk_of(3), Ok(0));
        assert_eq!(p.chunk_of(4), Ok(1));
        assert_eq!(p.chunk_of(11), Ok(2));
        assert_eq!(
            p.chunk_of(12),
            Err(FragmentError::TupleOutOfRange {
                x: 12,
                table_len: 12
            })
        );
    }

    #[test]
    fn error_of_constant_range_is_zero() {
        let p = ChunkPrefix::new(&chunks()).unwrap();
        assert_close(p.error(0, 4), 0.0);
        assert_close(p.error(4, 10), 0.0);
        assert_close(p.error(5, 9), 0.0);
    }

    #[test]
    fn error_matches_direct_variance() {
        let p = ChunkPrefix::new(&chunks()).unwrap();
        // Range 2..6: values [1,1,3,3]; mean 2; sum sq dev = 4.
        assert_close(p.error(2, 6), 4.0);
        // Whole table: values [1×4, 3×6, 0×2]; mean 22/12.
        let mean: f64 = 22.0 / 12.0;
        let direct = 4.0 * (1.0 - mean).powi(2) + 6.0 * (3.0 - mean).powi(2) + 2.0 * mean * mean;
        assert_close(p.error(0, 12), direct);
    }

    #[test]
    fn error_is_never_negative() {
        // A constant function whose float sums could leave tiny residue.
        let c = vec![Chunk {
            start: 0,
            end: 1000,
            value: 0.1,
        }];
        let p = ChunkPrefix::new(&c).unwrap();
        for a in (0..900).step_by(97) {
            assert!(p.error(a, a + 100) >= 0.0);
        }
    }

    #[test]
    fn gap_in_chunks_rejected() {
        let got = ChunkPrefix::new(&[
            Chunk {
                start: 0,
                end: 4,
                value: 1.0,
            },
            Chunk {
                start: 5,
                end: 9,
                value: 1.0,
            },
        ]);
        assert!(matches!(
            got,
            Err(FragmentError::Discontiguous {
                expected: 4,
                got: 5
            })
        ));
    }

    #[test]
    fn offset_chunks_rejected() {
        let got = ChunkPrefix::new(&[Chunk {
            start: 1,
            end: 4,
            value: 1.0,
        }]);
        assert!(matches!(got, Err(FragmentError::NotAtZero { start: 1 })));
    }

    #[test]
    fn no_chunks_rejected() {
        assert!(matches!(
            ChunkPrefix::new(&[]),
            Err(FragmentError::NoChunks)
        ));
    }

    #[test]
    fn empty_chunk_rejected() {
        let got = ChunkPrefix::new(&[Chunk {
            start: 0,
            end: 0,
            value: 1.0,
        }]);
        assert!(matches!(
            got,
            Err(FragmentError::EmptyChunk { start: 0, end: 0 })
        ));
    }

    #[test]
    fn empty_error_range_rejected() {
        let p = ChunkPrefix::new(&chunks()).unwrap();
        assert_eq!(
            p.try_error(5, 5),
            Err(FragmentError::EmptyRange { start: 5, end: 5 })
        );
        assert_eq!(
            p.try_error(5, 13),
            Err(FragmentError::RangeBeyondTable {
                start: 5,
                end: 13,
                table_len: 12
            })
        );
        assert_close(p.try_error(2, 6).unwrap(), p.error(2, 6));
    }
}
