//! The paper's Algorithm 2 (`FindSplit`, Appendix C), implemented as
//! printed: a single linear pass that tracks the running sum and sum of
//! squares of `V(x)` on each side of the candidate split point (a
//! Welford-flavoured sweep, per the paper's citation), returning the split
//! that minimizes the two resulting fragments' summed error.
//!
//! The production fragmenters use the equivalent chunk-restricted search in
//! [`GreedyFragmenter`](super::GreedyFragmenter) (the optimization the
//! paper's Appendix C itself suggests: the optimal split can only fall
//! where `V(x)` changes). This module exists so the printed algorithm is
//! present, tested, and *proved equivalent* to the optimized one — see the
//! differential tests below and `crates/core/tests/`.

use super::FragmentError;
use crate::value::Chunk;

/// The outcome of `FindSplit` on a fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitPoint {
    /// The cut position (a tuple index strictly inside the fragment).
    pub point: u64,
    /// `Err(left) + Err(right)` at that cut.
    pub error: f64,
}

/// Algorithm 2, literally: scans every interior tuple position of the
/// fragment `[start, end)` (walking the chunk representation tuple-run by
/// tuple-run, as Appendix C notes one may), maintaining left/right sums and
/// squared sums, and returns the best split.
///
/// Returns `Ok(None)` for fragments of fewer than two tuples (no interior
/// point).
///
/// # Errors
/// Returns [`FragmentError::EmptyRange`] if `start >= end` and
/// [`FragmentError::Uncovered`] if `[start, end)` is not covered by
/// `chunks`.
pub fn find_split(
    chunks: &[Chunk],
    start: u64,
    end: u64,
) -> Result<Option<SplitPoint>, FragmentError> {
    if start >= end {
        return Err(FragmentError::EmptyRange { start, end });
    }
    if end - start < 2 {
        return Ok(None);
    }

    // Clip the chunk list to the fragment.
    let runs: Vec<(u64, f64)> = chunks
        .iter()
        .filter_map(|c| {
            let lo = c.start.max(start);
            let hi = c.end.min(end);
            (lo < hi).then_some((hi - lo, c.value))
        })
        .collect();
    let covered: u64 = runs.iter().map(|&(n, _)| n).sum();
    if covered != end - start {
        return Err(FragmentError::Uncovered {
            start,
            end,
            covered,
        });
    }

    // Lines 2–5 of Algorithm 2: α/α₂ hold the left side (initially the
    // first tuple), β/β₂ the right side (everything else).
    let mut alpha = 0.0f64;
    let mut alpha2 = 0.0f64;
    let mut beta: f64 = runs.iter().map(|&(n, v)| n as f64 * v).sum();
    let mut beta2: f64 = runs.iter().map(|&(n, v)| n as f64 * v * v).sum();

    let err = |sum: f64, sum2: f64, size: u64| -> f64 {
        if size == 0 {
            0.0
        } else {
            (sum2 - sum * sum / size as f64).max(0.0)
        }
    };

    let mut best: Option<SplitPoint> = None;
    let mut pos = start;
    for &(n, v) in &runs {
        // Within a constant-value run the error curve is smooth; Appendix C
        // notes the optimum can only sit at a run boundary, but the printed
        // algorithm checks every tuple — so we do too, by stepping through
        // the run one tuple at a time *analytically*: moving k tuples of
        // value v left shifts the sums by k·v and k·v². Evaluating at each
        // k is the literal per-tuple loop, just without re-summing.
        for k in 1..=n {
            let a = alpha + k as f64 * v;
            let a2 = alpha2 + k as f64 * v * v;
            let b = beta - k as f64 * v;
            let b2 = beta2 - k as f64 * v * v;
            let split = pos + k;
            if split >= end {
                break;
            }
            let e = err(a, a2, split - start) + err(b, b2, end - split);
            if best.is_none_or(|s| e < s.error) {
                best = Some(SplitPoint {
                    point: split,
                    error: e,
                });
            }
        }
        alpha += n as f64 * v;
        alpha2 += n as f64 * v * v;
        beta -= n as f64 * v;
        beta2 -= n as f64 * v * v;
        pos += n;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::ChunkPrefix;

    fn chunk(start: u64, end: u64, value: f64) -> Chunk {
        Chunk { start, end, value }
    }

    #[test]
    fn splits_a_step_at_the_step() {
        let chunks = [chunk(0, 50, 1.0), chunk(50, 100, 9.0)];
        let s = find_split(&chunks, 0, 100).unwrap().unwrap();
        assert_eq!(s.point, 50);
        assert!(s.error < 1e-9);
    }

    #[test]
    fn single_tuple_fragment_has_no_split() {
        let chunks = [chunk(0, 10, 1.0)];
        assert_eq!(find_split(&chunks, 3, 4), Ok(None));
    }

    #[test]
    fn constant_fragment_any_split_is_zero_error() {
        let chunks = [chunk(0, 100, 2.0)];
        let s = find_split(&chunks, 10, 90).unwrap().unwrap();
        assert!(s.error < 1e-9);
        assert!(s.point > 10 && s.point < 90);
    }

    /// The literal algorithm agrees with brute-force error evaluation at
    /// every interior point.
    #[test]
    fn matches_exhaustive_search() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..25 {
            let m = rng.gen_range(1..6usize);
            let mut chunks = Vec::new();
            let mut pos = 0u64;
            for _ in 0..m {
                let len = rng.gen_range(1..12u64);
                chunks.push(chunk(pos, pos + len, rng.gen_range(0.0..5.0f64)));
                pos += len;
            }
            let prefix = ChunkPrefix::new(&chunks).unwrap();
            let got = find_split(&chunks, 0, pos).unwrap();
            if pos < 2 {
                assert_eq!(got, None);
                continue;
            }
            let mut best = f64::INFINITY;
            for p in 1..pos {
                let e = prefix.error(0, p) + prefix.error(p, pos);
                if e < best {
                    best = e;
                }
            }
            let got = got.unwrap();
            assert!(
                (got.error - best).abs() < 1e-9 * (1.0 + best),
                "findsplit {} vs exhaustive {}",
                got.error,
                best
            );
        }
    }

    /// Appendix C's claim: the optimum found over all tuples equals the
    /// optimum restricted to value-change boundaries (what the production
    /// fragmenter searches).
    #[test]
    fn chunk_boundaries_suffice() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        for _ in 0..25 {
            let m = rng.gen_range(2..8usize);
            let mut chunks = Vec::new();
            let mut pos = 0u64;
            for _ in 0..m {
                let len = rng.gen_range(1..30u64);
                chunks.push(chunk(pos, pos + len, rng.gen_range(0.0..5.0f64)));
                pos += len;
            }
            let prefix = ChunkPrefix::new(&chunks).unwrap();
            let all = find_split(&chunks, 0, pos).unwrap().unwrap();
            let boundary_best = chunks[..m - 1]
                .iter()
                .map(|c| prefix.error(0, c.end) + prefix.error(c.end, pos))
                .fold(f64::INFINITY, f64::min);
            assert!(
                all.error <= boundary_best + 1e-9,
                "all-points {} worse than boundary {}",
                all.error,
                boundary_best
            );
            assert!(
                boundary_best <= all.error + 1e-9 * (1.0 + all.error),
                "boundary {} worse than all-points {} — Appendix C violated",
                boundary_best,
                all.error
            );
        }
    }

    #[test]
    fn uncovered_fragment_rejected() {
        let chunks = [chunk(0, 10, 1.0)];
        assert_eq!(
            find_split(&chunks, 5, 20),
            Err(FragmentError::Uncovered {
                start: 5,
                end: 20,
                covered: 5
            })
        );
        assert_eq!(
            find_split(&chunks, 5, 5),
            Err(FragmentError::EmptyRange { start: 5, end: 5 })
        );
    }
}
