//! Fragmentation (paper §5).
//!
//! NashDB cuts each table into contiguous fragments whose per-tuple values
//! are as uniform as possible, because fragments are replicated by their
//! *mean* value: a fragment mixing hot and cold tuples over-replicates the
//! cold ones and under-replicates the hot ones (paper Fig. 3). Uniformity is
//! measured by the *unnormalized variance* of `V(x)` within the fragment
//! (Eq. 4), and the optimization objective is to minimize the summed error
//! subject to a cap `maxFrags` on the fragment count (Eq. 5) chosen so the
//! *average* fragment fills a disk block.
//!
//! Two solvers are provided, as in the paper:
//! * [`optimal::optimal_fragmentation`] — exact `O(maxFrags · m²)` dynamic
//!   programming over the `m` value chunks,
//! * [`greedy::GreedyFragmenter`] — the incremental split/merge heuristic
//!   that adapts a live fragmentation to workload drift.

mod findsplit;
mod greedy;
mod optimal;
mod prefix;

pub use findsplit::{find_split, SplitPoint};
pub use greedy::{GreedyFragmenter, MergePolicy, StepOutcome, DEFAULT_MIN_SPLIT_GAIN};
pub use optimal::optimal_fragmentation;
pub use prefix::ChunkPrefix;

use crate::ids::FragmentId;
use crate::value::Chunk;

/// Contract violations of the fragmentation layer, surfaced as typed errors
/// instead of panics (the same convention as `RouteError` and
/// `HungarianError`): malformed value-chunk inputs and out-of-contract
/// queries. Construction-time validation lives in [`ChunkPrefix::new`]; the
/// `try_*` query variants re-validate per call for callers that cannot
/// guarantee the contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FragmentError {
    /// No value chunks were provided.
    NoChunks,
    /// The first chunk does not start at tuple 0.
    NotAtZero {
        /// Where the first chunk actually starts.
        start: u64,
    },
    /// Adjacent chunks leave a gap or overlap.
    Discontiguous {
        /// Where the next chunk had to start.
        expected: u64,
        /// Where it actually starts.
        got: u64,
    },
    /// A chunk covers no tuples.
    EmptyChunk {
        /// The chunk's start.
        start: u64,
        /// The chunk's (non-exclusive-of-start) end.
        end: u64,
    },
    /// A queried tuple index is beyond the table.
    TupleOutOfRange {
        /// The tuple index.
        x: u64,
        /// The table length.
        table_len: u64,
    },
    /// A queried fragment range `[start, end)` is empty.
    EmptyRange {
        /// Range start.
        start: u64,
        /// Range end.
        end: u64,
    },
    /// A queried fragment range extends beyond the table.
    RangeBeyondTable {
        /// Range start.
        start: u64,
        /// Range end.
        end: u64,
        /// The table length.
        table_len: u64,
    },
    /// A fragment range is not fully covered by the given chunks.
    Uncovered {
        /// Range start.
        start: u64,
        /// Range end.
        end: u64,
        /// Tuples of the range the chunks actually cover.
        covered: u64,
    },
    /// The requested fragment budget is zero.
    ZeroMaxFrags,
}

impl std::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FragmentError::NoChunks => write!(f, "cannot build prefix over no chunks"),
            FragmentError::NotAtZero { start } => {
                write!(f, "chunks must start at tuple 0, got {start}")
            }
            FragmentError::Discontiguous { expected, got } => {
                write!(
                    f,
                    "chunks must be contiguous: expected start {expected}, got {got}"
                )
            }
            FragmentError::EmptyChunk { start, end } => {
                write!(f, "empty chunk {start}..{end}")
            }
            FragmentError::TupleOutOfRange { x, table_len } => {
                write!(f, "tuple {x} out of range (table length {table_len})")
            }
            FragmentError::EmptyRange { start, end } => {
                write!(f, "empty fragment {start}..{end}")
            }
            FragmentError::RangeBeyondTable {
                start,
                end,
                table_len,
            } => {
                write!(
                    f,
                    "fragment {start}..{end} beyond table of {table_len} tuples"
                )
            }
            FragmentError::Uncovered {
                start,
                end,
                covered,
            } => {
                write!(
                    f,
                    "chunks do not cover {start}..{end} (only {covered} tuples covered)"
                )
            }
            FragmentError::ZeroMaxFrags => write!(f, "need at least one fragment"),
        }
    }
}

impl std::error::Error for FragmentError {}

/// A fragment's tuple range: `start` inclusive, `end` exclusive, in the
/// physical ordering of its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FragmentRange {
    /// First tuple of the fragment.
    pub start: u64,
    /// One past the last tuple.
    pub end: u64,
}

impl FragmentRange {
    /// Creates a range, validating it is nonempty.
    ///
    /// # Panics
    /// Panics if `start >= end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "empty fragment range {start}..{end}");
        FragmentRange { start, end }
    }

    /// Number of tuples (paper: `Size(f)`).
    pub fn size(&self) -> u64 {
        self.end - self.start
    }

    /// True iff `x` falls inside the fragment.
    pub fn contains(&self, x: u64) -> bool {
        self.start <= x && x < self.end
    }

    /// Number of tuples shared with `[start, end)`.
    pub fn overlap(&self, start: u64, end: u64) -> u64 {
        let lo = self.start.max(start);
        let hi = self.end.min(end);
        hi.saturating_sub(lo)
    }
}

impl std::fmt::Display for FragmentRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A complete fragmentation of one table: an ordered set of cut points
/// `0 = b₀ < b₁ < … < b_k = table_len` defining `k` disjoint fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragmentation {
    boundaries: Vec<u64>,
}

impl Fragmentation {
    /// A single fragment spanning the whole table.
    ///
    /// # Panics
    /// Panics if `table_len` is zero.
    pub fn single(table_len: u64) -> Self {
        assert!(table_len > 0, "cannot fragment an empty table");
        Fragmentation {
            boundaries: vec![0, table_len],
        }
    }

    /// Builds a fragmentation from explicit cut points. The list must be
    /// strictly increasing, start at 0, and end at the table length.
    ///
    /// # Panics
    /// Panics on malformed boundaries.
    pub fn from_boundaries(boundaries: Vec<u64>) -> Self {
        assert!(
            boundaries.len() >= 2,
            "need at least [0, table_len], got {boundaries:?}"
        );
        assert_eq!(boundaries[0], 0, "first boundary must be 0");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing: {boundaries:?}"
        );
        Fragmentation { boundaries }
    }

    /// Splits the table into `count` near-equal fragments (the paper's
    /// *Naive* baseline).
    ///
    /// # Panics
    /// Panics if `count` is zero or exceeds `table_len`.
    pub fn equal_width(table_len: u64, count: usize) -> Self {
        assert!(count > 0, "need at least one fragment");
        assert!(
            count as u64 <= table_len,
            "cannot cut {table_len} tuples into {count} fragments"
        );
        let mut boundaries = Vec::with_capacity(count + 1);
        for i in 0..=count as u64 {
            boundaries.push(i * table_len / count as u64);
        }
        boundaries.dedup();
        Fragmentation { boundaries }
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// True iff there are no fragments (never constructible).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total tuples covered.
    pub fn table_len(&self) -> u64 {
        let Some(&last) = self.boundaries.last() else {
            unreachable!("every constructor validates at least two boundaries");
        };
        last
    }

    /// The cut points, including 0 and `table_len`.
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// Iterates fragments in physical order.
    pub fn ranges(&self) -> impl Iterator<Item = FragmentRange> + '_ {
        self.boundaries
            .windows(2)
            .map(|w| FragmentRange::new(w[0], w[1]))
    }

    /// Fragments paired with their ids (assigned in physical order).
    pub fn fragments(&self) -> impl Iterator<Item = (FragmentId, FragmentRange)> + '_ {
        self.ranges()
            .enumerate()
            .map(|(i, r)| (FragmentId(i as u64), r))
    }

    /// The fragment containing tuple `x`.
    ///
    /// # Panics
    /// Panics if `x` is beyond the table.
    pub fn fragment_of(&self, x: u64) -> (FragmentId, FragmentRange) {
        assert!(x < self.table_len(), "tuple {x} out of range");
        let idx = self.boundaries.partition_point(|&b| b <= x) - 1;
        (
            FragmentId(idx as u64),
            FragmentRange::new(self.boundaries[idx], self.boundaries[idx + 1]),
        )
    }

    /// The fragments overlapping the scan `[start, end)`, in order.
    pub fn fragments_for_scan(
        &self,
        start: u64,
        end: u64,
    ) -> impl Iterator<Item = (FragmentId, FragmentRange)> + '_ {
        let end = end.min(self.table_len());
        let first = if start >= self.table_len() {
            self.len()
        } else {
            self.boundaries.partition_point(|&b| b <= start) - 1
        };
        self.fragments()
            .skip(first)
            .take_while(move |(_, r)| r.start < end)
    }

    /// Summed fragment error (the paper's Eq. 5 objective) against a value
    /// function.
    pub fn total_error(&self, prefix: &ChunkPrefix) -> f64 {
        assert_eq!(
            prefix.table_len(),
            self.table_len(),
            "value function covers a different table"
        );
        self.ranges().map(|r| prefix.error(r.start, r.end)).sum()
    }
}

/// Splits any fragment larger than `max_size` into equal pieces of at most
/// `max_size` tuples, leaving other boundaries untouched.
///
/// The paper sizes fragments so the *average* fits a disk block and nodes
/// are far larger than blocks, so it never faces a fragment that exceeds a
/// node's disk; a from-scratch deployment does (the cold-start fragmentation
/// is one table-sized fragment). Splitting inside a fragment cannot increase
/// the error objective (Eq. 5 is a sum over fragments and each split is a
/// refinement), so this post-pass preserves optimality properties while
/// making BFFD packing feasible.
///
/// # Panics
/// Panics if `max_size` is zero.
pub fn split_oversized(frag: &Fragmentation, max_size: u64) -> Fragmentation {
    assert!(max_size > 0, "max fragment size must be nonzero");
    let mut boundaries = Vec::with_capacity(frag.boundaries().len());
    boundaries.push(0);
    for r in frag.ranges() {
        if r.size() > max_size {
            // Cut on the absolute `max_size` grid (not into equal pieces):
            // grid cuts are *stable* — when the enclosing fragment's
            // boundary drifts between reconfigurations, interior pieces
            // keep identical ranges, so replica placement barely changes
            // and transitions stay cheap.
            let mut cut = (r.start / max_size + 1) * max_size;
            while cut < r.end {
                if cut > r.start {
                    boundaries.push(cut);
                }
                cut += max_size;
            }
        }
        boundaries.push(r.end);
    }
    Fragmentation::from_boundaries(boundaries)
}

/// Per-fragment statistics consumed by the replication manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentStats {
    /// The fragment.
    pub id: FragmentId,
    /// Its tuple range.
    pub range: FragmentRange,
    /// `Value(f)` — Σ V(x) over the fragment (paper Eq. 3).
    pub value: f64,
    /// Its error contribution (Eq. 4).
    pub error: f64,
}

/// Computes [`FragmentStats`] for every fragment of a scheme.
///
/// # Errors
/// Returns a chunk-validation [`FragmentError`] if `chunks` is malformed.
pub fn fragment_stats(
    frag: &Fragmentation,
    chunks: &[Chunk],
) -> Result<Vec<FragmentStats>, FragmentError> {
    let prefix = ChunkPrefix::new(chunks)?;
    Ok(frag
        .fragments()
        .map(|(id, range)| FragmentStats {
            id,
            range,
            value: prefix.sum(range.start, range.end),
            error: prefix.error(range.start, range.end),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_ids() {
        let f = Fragmentation::from_boundaries(vec![0, 10, 25, 40]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.table_len(), 40);
        let frags: Vec<_> = f.fragments().collect();
        assert_eq!(frags[0], (FragmentId(0), FragmentRange::new(0, 10)));
        assert_eq!(frags[2], (FragmentId(2), FragmentRange::new(25, 40)));
    }

    #[test]
    fn fragment_of_picks_correctly() {
        let f = Fragmentation::from_boundaries(vec![0, 10, 25, 40]);
        assert_eq!(f.fragment_of(0).0, FragmentId(0));
        assert_eq!(f.fragment_of(9).0, FragmentId(0));
        assert_eq!(f.fragment_of(10).0, FragmentId(1));
        assert_eq!(f.fragment_of(39).0, FragmentId(2));
    }

    #[test]
    fn fragments_for_scan_covers_overlaps_only() {
        let f = Fragmentation::from_boundaries(vec![0, 10, 25, 40]);
        let ids: Vec<u64> = f
            .fragments_for_scan(5, 26)
            .map(|(id, _)| id.get())
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let ids: Vec<u64> = f
            .fragments_for_scan(10, 25)
            .map(|(id, _)| id.get())
            .collect();
        assert_eq!(ids, vec![1]);
        let ids: Vec<u64> = f
            .fragments_for_scan(30, 100)
            .map(|(id, _)| id.get())
            .collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn equal_width_covers_table() {
        let f = Fragmentation::equal_width(100, 7);
        assert_eq!(f.table_len(), 100);
        assert_eq!(f.len(), 7);
        let total: u64 = f.ranges().map(|r| r.size()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn equal_width_tiny_table() {
        let f = Fragmentation::equal_width(3, 3);
        assert_eq!(f.len(), 3);
        assert!(f.ranges().all(|r| r.size() == 1));
    }

    #[test]
    fn overlap_math() {
        let r = FragmentRange::new(10, 20);
        assert_eq!(r.overlap(0, 5), 0);
        assert_eq!(r.overlap(15, 30), 5);
        assert_eq!(r.overlap(0, 100), 10);
        assert!(r.contains(10));
        assert!(!r.contains(20));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_boundary_rejected() {
        let _ = Fragmentation::from_boundaries(vec![0, 10, 10, 20]);
    }

    #[test]
    fn split_oversized_caps_every_fragment() {
        let f = Fragmentation::from_boundaries(vec![0, 10, 1_000, 1_005]);
        let capped = split_oversized(&f, 300);
        assert!(capped.ranges().all(|r| r.size() <= 300));
        assert_eq!(capped.table_len(), 1_005);
        // Original boundaries survive.
        for b in f.boundaries() {
            assert!(capped.boundaries().contains(b), "lost boundary {b}");
        }
    }

    #[test]
    fn split_oversized_noop_when_small() {
        let f = Fragmentation::from_boundaries(vec![0, 10, 20]);
        assert_eq!(split_oversized(&f, 100), f);
    }

    #[test]
    fn split_oversized_exact_multiple() {
        let f = Fragmentation::from_boundaries(vec![0, 900]);
        let capped = split_oversized(&f, 300);
        assert_eq!(capped.boundaries(), &[0, 300, 600, 900]);
    }

    #[test]
    fn stats_sum_to_table_value() {
        let chunks = vec![
            Chunk {
                start: 0,
                end: 10,
                value: 2.0,
            },
            Chunk {
                start: 10,
                end: 30,
                value: 1.0,
            },
        ];
        let f = Fragmentation::from_boundaries(vec![0, 5, 30]);
        let stats = fragment_stats(&f, &chunks).unwrap();
        let total: f64 = stats.iter().map(|s| s.value).sum();
        assert!((total - 40.0).abs() < 1e-9);
        // First fragment is entirely inside the constant chunk: zero error.
        assert!(stats[0].error < 1e-12);
        assert!(stats[1].error > 0.0);
    }
}
