//! Optimal fragmentation by dynamic programming (paper §5.2).
//!
//! The classic optimal-k-segments scheme ([Mahlknecht et al.], [Jagadish et
//! al.]): `dp[j][i]` is the minimum summed error of cutting the first `i`
//! chunks into `j` fragments, with the error of a candidate fragment
//! computable in O(1) from prefix sums. The paper notes the optimal cut
//! points can only fall where `V(x)` changes, so we run the DP over the `m`
//! value chunks rather than the `n` tuples — `O(maxFrags · m²)` time and
//! `O(maxFrags · m)` space, with `m ≤ 2|W| + 1`.

use super::prefix::ChunkPrefix;
use super::{FragmentError, Fragmentation};
use crate::value::Chunk;

/// Computes a fragmentation of minimum total error with **at most**
/// `max_frags` fragments.
///
/// If the value function has fewer chunks than `max_frags`, every chunk
/// boundary is used and the error is exactly zero; adding further cuts
/// inside constant-value runs could not reduce it (the paper's `|F| =
/// maxFrags` constraint is met with equality only when it matters).
///
/// # Errors
/// Returns [`FragmentError::ZeroMaxFrags`] if `max_frags` is zero and a
/// chunk-validation error if `chunks` is empty/malformed.
#[allow(clippy::needless_range_loop)] // index arithmetic *is* the DP
pub fn optimal_fragmentation(
    chunks: &[Chunk],
    max_frags: usize,
) -> Result<Fragmentation, FragmentError> {
    if max_frags == 0 {
        return Err(FragmentError::ZeroMaxFrags);
    }
    let watch = crate::obs_hooks::stopwatch();
    crate::obs_hooks::counter_add("fragment.optimal_runs", 1);
    crate::obs_hooks::record("fragment.optimal_chunks", chunks.len() as u64);
    // Arc-wrapped so wide DP layers can ship owned handles to the
    // persistent `nashdb-par` pool (pool jobs cannot borrow the stack).
    let prefix = std::sync::Arc::new(ChunkPrefix::new(chunks)?);
    let bounds = std::sync::Arc::new(prefix.bounds().to_vec());
    let m = prefix.num_chunks();
    let k = max_frags.min(m);

    if k == m {
        // One fragment per chunk: zero error, no DP needed.
        watch.record("fragment.optimal_ns");
        return Ok(Fragmentation::from_boundaries(bounds.to_vec()));
    }

    // err(a_chunk, b_chunk): error of the fragment spanning chunks [a, b).
    let err = |a: usize, b: usize| prefix.error(bounds[a], bounds[b]);

    // dp[i]: min error covering chunks [0, i) with the current layer's
    // fragment count; choice[j][i]: the best last cut for that state.
    let mut dp = vec![0.0f64; m + 1];
    for i in 1..=m {
        dp[i] = err(0, i);
    }
    let mut choice = vec![vec![0usize; m + 1]; k + 1];

    // Each layer-j cell depends only on the layer-(j-1) row, so a layer's
    // cells fill independently and in any order — including across worker
    // threads. Every cell is computed by the identical float expression
    // whether the layer ran serially or fanned out, so results are
    // bit-identical either way. The chunk threshold keeps the common case
    // (m ≤ 2|W|+1 ≈ 101) on the serial fast path; only wide layers from
    // very large windows spread across cores.
    const PAR_MIN_CELLS: usize = 256;
    for j in 2..=k {
        // With j fragments we can cover at least j chunks and must leave at
        // least j-1 chunks behind the last cut.
        let dp_prev = std::sync::Arc::new(std::mem::take(&mut dp));
        let (prefix_j, bounds_j, dp_j) = (prefix.clone(), bounds.clone(), dp_prev.clone());
        let layer = nashdb_par::fill_with(m + 1 - j, PAR_MIN_CELLS, move |off| {
            let i = j + off;
            let err = |a: usize, b: usize| prefix_j.error(bounds_j[a], bounds_j[b]);
            let mut best = f64::INFINITY;
            let mut best_p = j - 1;
            for p in (j - 1)..i {
                let cand = dp_j[p] + err(p, i);
                if cand < best {
                    best = cand;
                    best_p = p;
                }
            }
            (best, best_p)
        });
        let mut next = vec![f64::INFINITY; m + 1];
        for (off, (best, best_p)) in layer.into_iter().enumerate() {
            next[j + off] = best;
            choice[j][j + off] = best_p;
        }
        dp = next;
    }

    // Reconstruct cut points walking choice backwards.
    let mut cuts = Vec::with_capacity(k + 1);
    cuts.push(m);
    let mut i = m;
    for j in (2..=k).rev() {
        i = choice[j][i];
        cuts.push(i);
    }
    cuts.push(0);
    cuts.reverse();
    let boundaries: Vec<u64> = cuts.into_iter().map(|c| bounds[c]).collect();
    watch.record("fragment.optimal_ns");
    Ok(Fragmentation::from_boundaries(boundaries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::ChunkPrefix;

    fn chunk(start: u64, end: u64, value: f64) -> Chunk {
        Chunk { start, end, value }
    }

    /// Brute force: try every way to cut `m` chunks into exactly `k`
    /// fragments and return the minimum error.
    fn brute_force_error(chunks: &[Chunk], k: usize) -> f64 {
        let prefix = ChunkPrefix::new(chunks).unwrap();
        let bounds = prefix.bounds().to_vec();
        let m = chunks.len();
        fn rec(
            prefix: &ChunkPrefix,
            bounds: &[u64],
            from: usize,
            m: usize,
            k: usize,
            best: &mut f64,
            acc: f64,
        ) {
            if k == 1 {
                let total = acc + prefix.error(bounds[from], bounds[m]);
                if total < *best {
                    *best = total;
                }
                return;
            }
            for next in (from + 1)..=(m - k + 1) {
                rec(
                    prefix,
                    bounds,
                    next,
                    m,
                    k - 1,
                    best,
                    acc + prefix.error(bounds[from], bounds[next]),
                );
            }
        }
        let mut best = f64::INFINITY;
        rec(&prefix, &bounds, 0, m, k, &mut best, 0.0);
        best
    }

    #[test]
    fn figure3_splits_between_c1_and_c2() {
        // Paper Fig. 3: a low-valued run followed by a high-valued run. Two
        // fragments should split exactly at the value change.
        let chunks = vec![chunk(0, 50, 1.0), chunk(50, 100, 5.0)];
        let f = optimal_fragmentation(&chunks, 2).unwrap();
        assert_eq!(f.boundaries(), &[0, 50, 100]);
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        assert!(f.total_error(&prefix) < 1e-9);
    }

    #[test]
    fn respects_max_frags() {
        let chunks = vec![
            chunk(0, 10, 1.0),
            chunk(10, 20, 5.0),
            chunk(20, 30, 1.0),
            chunk(30, 40, 9.0),
        ];
        for k in 1..=4 {
            let f = optimal_fragmentation(&chunks, k).unwrap();
            assert!(f.len() <= k, "k={k} gave {} fragments", f.len());
        }
        // With k = m, error is zero.
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        let f = optimal_fragmentation(&chunks, 4).unwrap();
        assert!(f.total_error(&prefix) < 1e-12);
        // k = 0 is a contract violation, surfaced as a typed error.
        assert_eq!(
            optimal_fragmentation(&chunks, 0).unwrap_err(),
            FragmentError::ZeroMaxFrags
        );
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let m = rng.gen_range(2..8usize);
            let mut chunks = Vec::new();
            let mut pos = 0u64;
            for _ in 0..m {
                let len = rng.gen_range(1..20u64);
                chunks.push(chunk(pos, pos + len, rng.gen_range(0.0..10.0f64)));
                pos += len;
            }
            let k = rng.gen_range(1..=m);
            let f = optimal_fragmentation(&chunks, k).unwrap();
            let prefix = ChunkPrefix::new(&chunks).unwrap();
            let dp_err = f.total_error(&prefix);
            let bf_err = brute_force_error(&chunks, k.min(m));
            assert!(
                (dp_err - bf_err).abs() < 1e-6 * (1.0 + bf_err),
                "trial {trial}: dp {dp_err} vs brute force {bf_err}"
            );
        }
    }

    #[test]
    fn single_fragment_covers_table() {
        let chunks = vec![chunk(0, 10, 1.0), chunk(10, 20, 2.0)];
        let f = optimal_fragmentation(&chunks, 1).unwrap();
        assert_eq!(f.boundaries(), &[0, 20]);
    }

    #[test]
    fn monotone_in_k() {
        // More allowed fragments never increases optimal error.
        let chunks = vec![
            chunk(0, 7, 2.0),
            chunk(7, 19, 8.0),
            chunk(19, 23, 1.0),
            chunk(23, 40, 4.0),
            chunk(40, 55, 6.0),
        ];
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let e = optimal_fragmentation(&chunks, k)
                .unwrap()
                .total_error(&prefix);
            assert!(e <= prev + 1e-9, "error rose from {prev} to {e} at k={k}");
            prev = e;
        }
    }
}
