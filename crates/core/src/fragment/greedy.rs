//! Greedy split/merge fragmentation (paper §5.3).
//!
//! The exact DP is quadratic in the number of value chunks; for large
//! databases (and for *incremental* adaptation as the workload drifts) the
//! paper proposes a greedy fragmenter that maintains a live set of cut
//! points and, at user-specified intervals:
//!
//! * **splits** the fragment whose best split point yields the largest error
//!   reduction, while the fragment count is below `maxFrags`
//!   (§5.3.1 / Algorithm 2), and
//! * **merges** the adjacent *triple* of fragments that re-cut into two with
//!   the smallest error increase once the cap is reached (§5.3.2), freeing
//!   the split procedure to chase the shifted workload. Merging three-into-
//!   two (rather than two-into-one) is what lets a boundary *move* between
//!   neighbours (paper Fig. 4).
//!
//! Candidate cut points are the chunk boundaries of the current value
//! function: the optimal split of a piecewise-constant function always falls
//! on a value change (the paper's Appendix C optimization).

use super::prefix::ChunkPrefix;
use super::Fragmentation;
use crate::value::Chunk;

/// Minimum *absolute* error reduction for a split to be applied (paper
/// footnote 2: "one might wish only to split a fragment if the reduction …
/// is sufficiently large"). Zero by default; float-residue churn is guarded
/// separately by a relative epsilon, which scales with the fragment's own
/// error so the threshold works at any value magnitude (per-tuple values
/// can be ~1e-8 when prices are split across hundred-million-tuple scans).
pub const DEFAULT_MIN_SPLIT_GAIN: f64 = 0.0;

/// Relative gain floor: a split must reduce its fragment's error by more
/// than this fraction to be considered genuine rather than float residue.
const REL_EPSILON: f64 = 1e-9;

/// How the fragmenter reclaims fragments once at the cap.
///
/// The paper argues (Fig. 4) for merging three adjacent fragments into two:
/// a pairwise merge can never *move* a boundary between neighbours, so a
/// drifted workload strands cuts where the old hot spot was. The pairwise
/// variant is kept for the ablation that quantifies that argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Merge the best adjacent triple into two fragments (§5.3.2).
    #[default]
    TripleToPair,
    /// Merge the best adjacent pair into one fragment (the strawman of
    /// paper Fig. 4).
    PairToOne,
}

/// The incremental greedy fragmenter.
#[derive(Debug, Clone)]
pub struct GreedyFragmenter {
    boundaries: Vec<u64>,
    max_frags: usize,
    min_split_gain: f64,
    /// Minimum *relative* improvement for a change to be applied: a split
    /// must cut its fragment's error, and a merge+split round the total
    /// error, by more than this fraction. The paper's footnote 2 suggests
    /// exactly this guard; it keeps sampling noise in the value window from
    /// wandering boundaries (and re-shipping every replica of the touched
    /// fragments) when nothing real has changed.
    min_relative_gain: f64,
    merge_policy: MergePolicy,
}

/// What a [`GreedyFragmenter::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A fragment was split (and possibly a triple merged first).
    Changed,
    /// No profitable split existed; the fragmentation is stable for this
    /// value function.
    Stable,
}

impl GreedyFragmenter {
    /// Starts with a single fragment spanning the table.
    ///
    /// # Panics
    /// Panics if `table_len` is zero or `max_frags` is zero.
    pub fn new(table_len: u64, max_frags: usize) -> Self {
        Self::from_fragmentation(Fragmentation::single(table_len), max_frags)
    }

    /// Adopts an existing fragmentation (e.g. carried over from the previous
    /// reconfiguration period).
    ///
    /// # Panics
    /// Panics if `max_frags` is zero.
    pub fn from_fragmentation(frag: Fragmentation, max_frags: usize) -> Self {
        assert!(max_frags > 0, "need at least one fragment");
        GreedyFragmenter {
            boundaries: frag.boundaries,
            max_frags,
            min_split_gain: DEFAULT_MIN_SPLIT_GAIN,
            min_relative_gain: 0.0,
            merge_policy: MergePolicy::default(),
        }
    }

    /// Overrides the minimum split gain.
    pub fn with_min_split_gain(mut self, gain: f64) -> Self {
        self.min_split_gain = gain.max(0.0);
        self
    }

    /// Requires every applied change to improve its target error by at
    /// least this fraction (e.g. `0.05` = 5 %).
    pub fn with_min_relative_gain(mut self, frac: f64) -> Self {
        self.min_relative_gain = frac.max(0.0);
        self
    }

    /// Selects the merge variant (the pairwise one exists for the Fig. 4
    /// ablation; the default is the paper's three-into-two).
    pub fn with_merge_policy(mut self, policy: MergePolicy) -> Self {
        self.merge_policy = policy;
        self
    }

    /// Current fragment count.
    pub fn len(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Always false: a fragmenter covers its table with at least one
    /// fragment by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The fragment cap.
    pub fn max_frags(&self) -> usize {
        self.max_frags
    }

    /// Adjusts the cap (e.g. if the block size or table size changes).
    pub fn set_max_frags(&mut self, max_frags: usize) {
        assert!(max_frags > 0, "need at least one fragment");
        self.max_frags = max_frags;
    }

    /// A snapshot of the current fragmentation.
    pub fn fragmentation(&self) -> Fragmentation {
        Fragmentation::from_boundaries(self.boundaries.clone())
    }

    /// One maintenance round against the current value function:
    /// below the cap, apply the best available split; at the cap, merge the
    /// best adjacent triple into two and re-split — atomically, reverting
    /// if the merge+split pair does not reduce total error (so the greedy
    /// trajectory is monotone and cannot oscillate at the cap).
    ///
    /// Malformed chunks, or chunks covering a different table than this
    /// fragmenter, leave the fragmentation untouched and report
    /// [`StepOutcome::Stable`]; debug builds assert so tests catch the
    /// contract violation.
    pub fn step(&mut self, chunks: &[Chunk]) -> StepOutcome {
        let Ok(prefix) = ChunkPrefix::new(chunks) else {
            debug_assert!(
                ChunkPrefix::new(chunks).is_ok(),
                "malformed value chunks: {:?}",
                ChunkPrefix::new(chunks).err()
            );
            return StepOutcome::Stable;
        };
        let table_len = self.boundaries.last().map_or(0, |&b| b);
        debug_assert_eq!(
            prefix.table_len(),
            table_len,
            "value function covers a different table"
        );
        if prefix.table_len() != table_len {
            return StepOutcome::Stable;
        }

        if self.len() < self.max_frags {
            if let Some((frag_idx, point, _gain)) = self.best_split(&prefix) {
                self.boundaries.insert(frag_idx + 1, point);
                return StepOutcome::Changed;
            }
            return StepOutcome::Stable;
        }

        // At the cap: merging needs enough adjacent fragments.
        let need = match self.merge_policy {
            MergePolicy::TripleToPair => 3,
            MergePolicy::PairToOne => 2,
        };
        if self.len() < need {
            return StepOutcome::Stable;
        }
        let before_boundaries = self.boundaries.clone();
        let before_err = self.total_error_against(&prefix);
        match self.merge_policy {
            MergePolicy::TripleToPair => self.apply_best_merge(&prefix),
            MergePolicy::PairToOne => self.apply_best_pair_merge(&prefix),
        }
        if let Some((frag_idx, point, _gain)) = self.best_split(&prefix) {
            self.boundaries.insert(frag_idx + 1, point);
        }
        let after_err = self.total_error_against(&prefix);
        let floor = self.min_split_gain + (REL_EPSILON + self.min_relative_gain) * before_err;
        if after_err < before_err - floor {
            StepOutcome::Changed
        } else {
            self.boundaries = before_boundaries;
            StepOutcome::Stable
        }
    }

    fn total_error_against(&self, prefix: &ChunkPrefix) -> f64 {
        self.boundaries
            .windows(2)
            .map(|w| prefix.error(w[0], w[1]))
            .sum()
    }

    /// Runs up to `rounds` steps, stopping early once stable. Returns the
    /// number of rounds that changed the fragmentation.
    pub fn run(&mut self, chunks: &[Chunk], rounds: usize) -> usize {
        let watch = crate::obs_hooks::stopwatch();
        let mut changed = 0;
        for _ in 0..rounds {
            match self.step(chunks) {
                StepOutcome::Changed => changed += 1,
                StepOutcome::Stable => break,
            }
        }
        watch.record("fragment.greedy_ns");
        crate::obs_hooks::counter_add("fragment.greedy_runs", 1);
        crate::obs_hooks::counter_add("fragment.greedy_changes", changed as u64);
        changed
    }

    /// Finds the globally best split: `(fragment_index, cut_point, gain)`
    /// maximizing `Err(f) − (Err(left) + Err(right))`, or `None` if no split
    /// clears the minimum gain.
    fn best_split(&self, prefix: &ChunkPrefix) -> Option<(usize, u64, f64)> {
        let mut best: Option<(usize, u64, f64)> = None;
        for (idx, w) in self.boundaries.windows(2).enumerate() {
            let (a, b) = (w[0], w[1]);
            let whole = prefix.error(a, b);
            if whole <= self.min_split_gain {
                continue; // already uniform; no split can gain enough
            }
            if let Some((point, split_err)) = best_cut(prefix, a, b, &[]) {
                let gain = whole - split_err;
                // Both an absolute and a magnitude-relative floor: the gain
                // must be a real reduction, not float residue.
                if gain > self.min_split_gain
                    && gain > (REL_EPSILON + self.min_relative_gain) * whole
                    && best.is_none_or(|(_, _, g)| gain > g)
                {
                    best = Some((idx, point, gain));
                }
            }
        }
        best
    }

    /// Merges the adjacent triple whose optimal re-cut into two fragments
    /// increases total error the least (paper §5.3.2).
    fn apply_best_merge(&mut self, prefix: &ChunkPrefix) {
        debug_assert!(self.len() >= 3);
        let mut best: Option<(usize, u64, f64)> = None; // (first boundary idx, cut, delta)
        for i in 0..self.len() - 2 {
            let a = self.boundaries[i];
            let b = self.boundaries[i + 1];
            let c = self.boundaries[i + 2];
            let d = self.boundaries[i + 3];
            let old = prefix.error(a, b) + prefix.error(b, c) + prefix.error(c, d);
            // The optimal two-way cut of [a, d): chunk boundaries plus the
            // existing cuts b and c (which are always legal and guarantee a
            // candidate even when no value change falls strictly inside).
            // Cut b is always a valid candidate, so best_cut cannot come
            // back empty; skip the triple rather than panic if it ever does.
            let Some((point, new)) = best_cut(prefix, a, d, &[b, c]) else {
                continue;
            };
            let delta = new - old;
            if best.is_none_or(|(_, _, d0)| delta < d0) {
                best = Some((i, point, delta));
            }
        }
        // len >= 3 yields at least one triple; leave boundaries untouched
        // in the impossible empty case instead of panicking.
        let Some((i, point, _)) = best else {
            return;
        };
        // Replace boundaries b, c with the single cut `point`.
        self.boundaries.splice(i + 1..i + 3, [point]);
        debug_assert!(self.boundaries.windows(2).all(|w| w[0] < w[1]));
    }

    /// The pairwise strawman: delete the interior boundary whose removal
    /// increases total error the least.
    fn apply_best_pair_merge(&mut self, prefix: &ChunkPrefix) {
        debug_assert!(self.len() >= 2);
        let mut best: Option<(usize, f64)> = None; // (boundary idx, delta)
        for i in 1..self.boundaries.len() - 1 {
            let a = self.boundaries[i - 1];
            let b = self.boundaries[i];
            let c = self.boundaries[i + 1];
            let delta = prefix.error(a, c) - (prefix.error(a, b) + prefix.error(b, c));
            if best.is_none_or(|(_, d0)| delta < d0) {
                best = Some((i, delta));
            }
        }
        // len >= 2 yields an interior boundary; a no-op beats a panic in
        // the impossible empty case.
        let Some((i, _)) = best else {
            return;
        };
        self.boundaries.remove(i);
    }
}

/// The best single cut of `[a, b)`: considers every chunk boundary strictly
/// inside plus `extra` candidates, returning `(point, err_left + err_right)`
/// minimized. `None` if there are no candidates.
///
/// This is the paper's `FindSplit` (Algorithm 2) restricted to value-change
/// points (Appendix C): linear in the number of candidates.
fn best_cut(prefix: &ChunkPrefix, a: u64, b: u64, extra: &[u64]) -> Option<(u64, f64)> {
    let bounds = prefix.bounds();
    let lo = bounds.partition_point(|&x| x <= a);
    let hi = bounds.partition_point(|&x| x < b);
    let candidates = bounds[lo..hi]
        .iter()
        .copied()
        .chain(extra.iter().copied().filter(|&p| p > a && p < b));
    let mut best: Option<(u64, f64)> = None;
    for p in candidates {
        let e = prefix.error(a, p) + prefix.error(p, b);
        if best.is_none_or(|(_, be)| e < be) {
            best = Some((p, e));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::optimal_fragmentation;

    fn chunk(start: u64, end: u64, value: f64) -> Chunk {
        Chunk { start, end, value }
    }

    #[test]
    fn splits_at_value_change() {
        let chunks = vec![chunk(0, 50, 1.0), chunk(50, 100, 5.0)];
        let mut g = GreedyFragmenter::new(100, 4);
        assert_eq!(g.step(&chunks), StepOutcome::Changed);
        assert_eq!(g.fragmentation().boundaries(), &[0, 50, 100]);
        // Error is now zero: further steps are stable.
        assert_eq!(g.step(&chunks), StepOutcome::Stable);
    }

    #[test]
    fn converges_to_optimal_on_staircase() {
        let chunks = vec![
            chunk(0, 10, 1.0),
            chunk(10, 20, 4.0),
            chunk(20, 30, 9.0),
            chunk(30, 40, 2.0),
        ];
        let mut g = GreedyFragmenter::new(40, 4);
        g.run(&chunks, 16);
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        assert!(g.fragmentation().total_error(&prefix) < 1e-9);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn never_exceeds_cap() {
        let chunks: Vec<Chunk> = (0..20)
            .map(|i| chunk(i * 5, (i + 1) * 5, (i % 7) as f64))
            .collect();
        let mut g = GreedyFragmenter::new(100, 6);
        g.run(&chunks, 64);
        assert!(g.len() <= 6);
        let f = g.fragmentation();
        assert_eq!(f.table_len(), 100);
    }

    #[test]
    fn each_split_reduces_error() {
        let chunks: Vec<Chunk> = (0..16)
            .map(|i| chunk(i * 4, (i + 1) * 4, ((i * 13) % 11) as f64))
            .collect();
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        let mut g = GreedyFragmenter::new(64, 16);
        let mut prev = g.fragmentation().total_error(&prefix);
        while g.step(&chunks) == StepOutcome::Changed {
            let cur = g.fragmentation().total_error(&prefix);
            assert!(cur < prev + 1e-9, "split increased error: {prev} -> {cur}");
            prev = cur;
        }
    }

    /// The paper's Fig. 4 motivation: after a workload shift the greedy
    /// fragmenter must *move* a boundary, which requires the 3-into-2 merge.
    #[test]
    fn merge_enables_adaptation_after_shift() {
        // Old workload: hot region 0..50.
        let old = vec![chunk(0, 50, 5.0), chunk(50, 100, 0.0)];
        let mut g = GreedyFragmenter::new(100, 3);
        g.run(&old, 8);
        assert_eq!(g.fragmentation().boundaries(), &[0, 50, 100]);

        // Shifted workload: hot region 30..80. Reaching the zero-error
        // boundaries {0,30,80,100} with a cap of 3 requires merging a triple
        // back into two so the freed split can land at the new edge.
        let new = vec![chunk(0, 30, 0.0), chunk(30, 80, 5.0), chunk(80, 100, 0.0)];
        let prefix = ChunkPrefix::new(&new).unwrap();
        let before = g.fragmentation().total_error(&prefix);
        g.run(&new, 16);
        let after = g.fragmentation().total_error(&prefix);
        assert!(
            after < before,
            "adaptation failed: error {before} -> {after}"
        );
        assert!(after < 1e-9, "did not converge: residual error {after}");
        assert_eq!(g.fragmentation().boundaries(), &[0, 30, 80, 100]);
    }

    #[test]
    fn tracks_optimal_within_factor_on_random_values() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let m = rng.gen_range(6..24usize);
            let mut chunks = Vec::new();
            let mut pos = 0u64;
            for _ in 0..m {
                let len = rng.gen_range(1..30u64);
                chunks.push(chunk(pos, pos + len, rng.gen_range(0.0..8.0f64)));
                pos += len;
            }
            let k = rng.gen_range(2..=m.min(8));
            let prefix = ChunkPrefix::new(&chunks).unwrap();
            let opt = optimal_fragmentation(&chunks, k)
                .unwrap()
                .total_error(&prefix);
            let mut g = GreedyFragmenter::new(pos, k);
            g.run(&chunks, 200);
            let greedy = g.fragmentation().total_error(&prefix);
            assert!(
                greedy + 1e-9 >= opt,
                "greedy beat optimal?! {greedy} < {opt}"
            );
            // The paper reports greedy within ~50% of optimal on static
            // workloads; allow generous slack for adversarial random cases.
            assert!(
                greedy <= opt * 4.0 + 1e-6 || greedy - opt < 1e-6,
                "greedy {greedy} far from optimal {opt} (k={k}, m={m})"
            );
        }
    }

    #[test]
    fn stable_on_uniform_values() {
        let chunks = vec![chunk(0, 100, 2.0)];
        let mut g = GreedyFragmenter::new(100, 8);
        assert_eq!(g.step(&chunks), StepOutcome::Stable);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn cap_of_one_is_inert() {
        let chunks = vec![chunk(0, 50, 1.0), chunk(50, 100, 9.0)];
        let mut g = GreedyFragmenter::new(100, 1);
        assert_eq!(g.step(&chunks), StepOutcome::Stable);
        assert_eq!(g.len(), 1);
    }

    /// The Fig. 4 ablation: after the hot range moves, the pairwise-merge
    /// variant cannot relocate its boundaries as well as three-into-two.
    #[test]
    fn pairwise_merge_adapts_worse_than_triple() {
        let old = vec![chunk(0, 50, 5.0), chunk(50, 100, 0.0)];
        let new = vec![chunk(0, 30, 0.0), chunk(30, 80, 5.0), chunk(80, 100, 0.0)];
        let prefix = ChunkPrefix::new(&new).unwrap();
        let run_with = |policy: MergePolicy| {
            let mut g = GreedyFragmenter::new(100, 3).with_merge_policy(policy);
            g.run(&old, 8);
            // Only a couple of adaptation rounds: the drifted regime where
            // merge choice matters (both converge eventually).
            g.step(&new);
            g.fragmentation().total_error(&prefix)
        };
        let triple = run_with(MergePolicy::TripleToPair);
        let pair = run_with(MergePolicy::PairToOne);
        assert!(
            triple <= pair + 1e-12,
            "triple {triple} should adapt at least as fast as pair {pair}"
        );
    }

    #[test]
    fn adopting_existing_fragmentation() {
        let f = Fragmentation::from_boundaries(vec![0, 10, 100]);
        let g = GreedyFragmenter::from_fragmentation(f.clone(), 4);
        assert_eq!(g.fragmentation(), f);
    }
}
