//! Checked numeric conversions.
//!
//! The economics of the paper mix `u64` tuple counts with `f64` prices and
//! replica math everywhere, and the workspace lint gate flags every lossy
//! `as` cast. This module centralizes the handful of conversions that are
//! genuinely needed, names their semantics (saturating), and carries the
//! per-site justification once instead of scattering `#[allow]`s.

/// Converts an `f64` to `u64` with saturating semantics: NaN maps to 0,
/// negative values clamp to 0, values beyond `u64::MAX` clamp to the max.
///
/// These are exactly the semantics of an `as` cast since Rust 1.45; the
/// wrapper exists to name the intent at call sites computing tuple counts,
/// replica counts, or simulated durations from float expressions.
#[must_use]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn saturating_u64(x: f64) -> u64 {
    x as u64
}

/// Converts an `f64` to `usize` with saturating semantics (NaN → 0,
/// negatives → 0, overflow → `usize::MAX`). See [`saturating_u64`].
#[must_use]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn saturating_usize(x: f64) -> usize {
    x as usize
}

/// Converts a `u64` count to a container index.
///
/// Tuple, fragment, and node counts in this workspace are bounded by
/// in-memory container sizes, so they always fit `usize` on the supported
/// (64-bit) targets; a count that genuinely exceeded `usize::MAX` would have
/// failed allocation long before reaching a cast. Saturates rather than
/// wraps on a hypothetical 32-bit target, so an out-of-range value indexes
/// past the container and panics with a bounds error instead of silently
/// aliasing a wrong element.
#[must_use]
pub fn usize_from(x: u64) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_u64_clamps() {
        assert_eq!(saturating_u64(-3.5), 0);
        assert_eq!(saturating_u64(f64::NAN), 0);
        assert_eq!(saturating_u64(3.9), 3);
        assert_eq!(saturating_u64(1e300), u64::MAX);
    }

    #[test]
    fn saturating_usize_clamps() {
        assert_eq!(saturating_usize(-1.0), 0);
        assert_eq!(saturating_usize(41.7), 41);
        assert_eq!(saturating_usize(1e300), usize::MAX);
    }

    #[test]
    fn usize_from_is_lossless_in_range() {
        assert_eq!(usize_from(0), 0);
        assert_eq!(usize_from(123_456), 123_456);
    }
}
