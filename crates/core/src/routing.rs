//! Routing data access requests (paper §8).
//!
//! When a query's range scan is decomposed into fragment read requests, the
//! scan router picks which replica serves each request. Two pure strategies
//! exist in prior work: minimize *query span* (use as few nodes as
//! possible) or minimize *wait time* (always read from the shortest queue).
//! NashDB's **Max-of-mins** balances them: a node not yet serving this query
//! is charged a span penalty `ϕ`, and requests are scheduled
//! bottleneck-first — the request whose best achievable wait is *largest*
//! is placed first, on the node where its wait is smallest (Eq. 11).
//!
//! Waits are expressed in tuples of queued work (disk reads dominate OLAP
//! scan latency and read time is proportional to tuples, §8); the cluster
//! layer converts its time-based queue lengths and the paper's ϕ = 350 ms
//! into tuple units via node throughput.

use std::collections::HashSet;

use crate::ids::{FragmentId, NodeId};

/// One fragment read request of a single range scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentRequest {
    /// The fragment to read.
    pub fragment: FragmentId,
    /// Tuples to read (the fragment size).
    pub size: u64,
    /// Nodes hosting a replica of the fragment. Must be nonempty.
    pub candidates: Vec<NodeId>,
}

/// A routing decision: which node serves which fragment request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The fragment read.
    pub fragment: FragmentId,
    /// The chosen replica's node.
    pub node: NodeId,
}

/// A mutable view of per-node queued work, in tuples.
///
/// Routers read waits and push their own assignments so that consecutive
/// requests of the same scan see each other's load.
#[derive(Debug, Clone)]
pub struct QueueView {
    waits: Vec<u64>,
}

impl QueueView {
    /// All queues empty across `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        QueueView {
            waits: vec![0; nodes],
        }
    }

    /// Adopts externally observed waits (tuples of queued work per node).
    pub fn from_waits(waits: Vec<u64>) -> Self {
        QueueView { waits }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.waits.len()
    }

    /// True iff there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.waits.is_empty()
    }

    /// Queued tuples on `node`.
    pub fn wait(&self, node: NodeId) -> u64 {
        self.waits[node.index()]
    }

    /// Adds `size` tuples of work to `node`'s queue.
    pub fn enqueue(&mut self, node: NodeId, size: u64) {
        self.waits[node.index()] += size;
    }
}

/// A scan-routing strategy.
pub trait ScanRouter {
    /// Routes every request of one scan, updating `queues` with the work it
    /// places. Implementations must assign each request to one of its
    /// candidates.
    fn route(&self, requests: &[FragmentRequest], queues: &mut QueueView) -> Vec<Assignment>;

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Number of distinct nodes used — the query's *span*.
pub fn span(assignments: &[Assignment]) -> usize {
    assignments
        .iter()
        .map(|a| a.node)
        .collect::<HashSet<_>>()
        .len()
}

/// Shared per-scan instrumentation for every router implementation.
fn record_scan_metrics(assignments: &[Assignment]) {
    crate::obs_hooks::counter_add("routing.scans_routed", 1);
    crate::obs_hooks::counter_add("routing.requests", assignments.len() as u64);
    crate::obs_hooks::record("routing.query_span", span(assignments) as u64);
}

/// The paper's Max-of-mins router (Eq. 11).
#[derive(Debug, Clone, Copy)]
pub struct MaxOfMins {
    /// Span penalty ϕ in tuple units: the wait-equivalent cost of touching
    /// a node this query is not already using.
    pub phi: u64,
}

impl MaxOfMins {
    /// Creates the router with span penalty `phi` (tuples).
    pub fn new(phi: u64) -> Self {
        MaxOfMins { phi }
    }
}

impl ScanRouter for MaxOfMins {
    fn route(&self, requests: &[FragmentRequest], queues: &mut QueueView) -> Vec<Assignment> {
        let mut remaining: Vec<&FragmentRequest> = requests.iter().collect();
        let mut chosen: HashSet<NodeId> = HashSet::new();
        let mut out = Vec::with_capacity(requests.len());

        while !remaining.is_empty() {
            // For each pending request, its best effective wait and the node
            // achieving it; then schedule the *worst best* (the bottleneck).
            let mut pick: Option<(usize, NodeId, u64)> = None; // (idx, node, eff wait)
            for (idx, req) in remaining.iter().enumerate() {
                assert!(
                    !req.candidates.is_empty(),
                    "fragment {} has no replicas to read",
                    req.fragment
                );
                let Some((node, eff)) = req
                    .candidates
                    .iter()
                    .map(|&n| {
                        let penalty = if chosen.contains(&n) { 0 } else { self.phi };
                        (n, queues.wait(n).saturating_add(penalty))
                    })
                    .min_by_key(|&(n, eff)| (eff, n))
                else {
                    unreachable!("candidates asserted nonempty above")
                };
                let better = match pick {
                    None => true,
                    // Strict max; ties broken toward larger reads first,
                    // then fragment id, for determinism.
                    Some((pidx, _, peff)) => {
                        let (ps, pf) = (remaining[pidx].size, remaining[pidx].fragment);
                        (eff, req.size, std::cmp::Reverse(req.fragment))
                            > (peff, ps, std::cmp::Reverse(pf))
                    }
                };
                if better {
                    pick = Some((idx, node, eff));
                }
            }
            let Some((idx, node, _)) = pick else {
                unreachable!("the loop guard keeps `remaining` nonempty")
            };
            let req = remaining.swap_remove(idx);
            crate::obs_hooks::record("routing.queue_wait_tuples", queues.wait(node));
            queues.enqueue(node, req.size);
            chosen.insert(node);
            out.push(Assignment {
                fragment: req.fragment,
                node,
            });
        }
        record_scan_metrics(&out);
        out
    }

    fn name(&self) -> &'static str {
        "max-of-mins"
    }
}

/// The "Power of 2" variant the paper sketches in footnote 3 for workloads
/// of *small* scans: instead of examining every replica of every request,
/// consider only two randomly chosen candidates per request and take the
/// better under the Eq. 11 objective. O(R) per scan instead of O(R²·C),
/// trading a little routing quality for constant-time decisions.
///
/// Randomness is a deterministic splitmix64 stream seeded at construction,
/// so simulations stay reproducible.
#[derive(Debug)]
pub struct PowerOfTwoChoices {
    /// Span penalty ϕ in tuple units (as in [`MaxOfMins`]).
    pub phi: u64,
    state: std::sync::Mutex<u64>,
}

impl PowerOfTwoChoices {
    /// Creates the router with span penalty `phi` and an RNG seed.
    pub fn new(phi: u64, seed: u64) -> Self {
        PowerOfTwoChoices {
            phi,
            state: std::sync::Mutex::new(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&self) -> u64 {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl ScanRouter for PowerOfTwoChoices {
    fn route(&self, requests: &[FragmentRequest], queues: &mut QueueView) -> Vec<Assignment> {
        let mut chosen: HashSet<NodeId> = HashSet::new();
        let out: Vec<Assignment> = requests
            .iter()
            .map(|req| {
                assert!(
                    !req.candidates.is_empty(),
                    "fragment {} has no replicas to read",
                    req.fragment
                );
                let pair: [NodeId; 2] = if req.candidates.len() <= 2 {
                    [req.candidates[0], req.candidates[req.candidates.len() - 1]]
                } else {
                    let a = crate::num::usize_from(self.next()) % req.candidates.len();
                    let mut b = crate::num::usize_from(self.next()) % (req.candidates.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    [req.candidates[a], req.candidates[b]]
                };
                let Some(node) = pair.into_iter().min_by_key(|&n| {
                    let penalty = if chosen.contains(&n) { 0 } else { self.phi };
                    (queues.wait(n).saturating_add(penalty), n)
                }) else {
                    unreachable!("a two-element pair always has a minimum")
                };
                crate::obs_hooks::record("routing.queue_wait_tuples", queues.wait(node));
                queues.enqueue(node, req.size);
                chosen.insert(node);
                Assignment {
                    fragment: req.fragment,
                    node,
                }
            })
            .collect();
        record_scan_metrics(&out);
        out
    }

    fn name(&self) -> &'static str {
        "power-of-two"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(frag: u64, size: u64, candidates: &[u64]) -> FragmentRequest {
        FragmentRequest {
            fragment: FragmentId(frag),
            size,
            candidates: candidates.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    fn node_of(assignments: &[Assignment], frag: u64) -> NodeId {
        assignments
            .iter()
            .find(|a| a.fragment == FragmentId(frag))
            .expect("assigned")
            .node
    }

    #[test]
    fn single_candidate_is_forced() {
        let router = MaxOfMins::new(100);
        let mut q = QueueView::new(2);
        let out = router.route(&[req(0, 50, &[1])], &mut q);
        assert_eq!(
            out,
            vec![Assignment {
                fragment: FragmentId(0),
                node: NodeId(1)
            }]
        );
        assert_eq!(q.wait(NodeId(1)), 50);
        assert_eq!(q.wait(NodeId(0)), 0);
    }

    #[test]
    fn span_penalty_consolidates_small_reads() {
        // Two small fragments, both replicated on both idle nodes. With a
        // large ϕ the second read should join the first node rather than
        // fan out.
        let router = MaxOfMins::new(1_000);
        let mut q = QueueView::new(2);
        let out = router.route(&[req(0, 10, &[0, 1]), req(1, 10, &[0, 1])], &mut q);
        assert_eq!(span(&out), 1);
    }

    #[test]
    fn zero_penalty_spreads_load() {
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(2);
        let out = router.route(&[req(0, 10, &[0, 1]), req(1, 10, &[0, 1])], &mut q);
        assert_eq!(span(&out), 2);
    }

    #[test]
    fn widens_span_when_beneficial() {
        // A huge read occupies node 0; a second huge read should pay ϕ and
        // go to node 1 rather than queue behind it.
        let router = MaxOfMins::new(50);
        let mut q = QueueView::new(2);
        let out = router.route(&[req(0, 1_000, &[0, 1]), req(1, 1_000, &[0, 1])], &mut q);
        assert_eq!(span(&out), 2);
        assert_ne!(node_of(&out, 0), node_of(&out, 1));
    }

    #[test]
    fn bottleneck_scheduled_first_onto_short_queue() {
        // Fragment 0 can only be read from the busy node 0; fragment 1 can
        // be read anywhere. The bottleneck (fragment 0) must be placed
        // first, and fragment 1 should then avoid stacking behind it.
        let router = MaxOfMins::new(0);
        let mut q = QueueView::from_waits(vec![500, 0]);
        let out = router.route(&[req(1, 10, &[0, 1]), req(0, 10, &[0])], &mut q);
        assert_eq!(node_of(&out, 0), NodeId(0));
        assert_eq!(node_of(&out, 1), NodeId(1));
        // Bottleneck-first: fragment 0 appears before fragment 1.
        assert_eq!(out[0].fragment, FragmentId(0));
    }

    #[test]
    fn accounts_for_own_placements() {
        // Three equal reads over two idle nodes with no penalty: the third
        // read must see the first two queued and pick the emptier node.
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(2);
        let out = router.route(
            &[
                req(0, 100, &[0, 1]),
                req(1, 100, &[0, 1]),
                req(2, 100, &[0, 1]),
            ],
            &mut q,
        );
        let w0 = q.wait(NodeId(0));
        let w1 = q.wait(NodeId(1));
        assert_eq!(w0 + w1, 300);
        assert!(w0.abs_diff(w1) == 100, "unbalanced: {w0} vs {w1}");
        assert_eq!(out.len(), 3);
    }

    #[test]
    #[should_panic(expected = "no replicas")]
    fn empty_candidates_panics() {
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(1);
        let _ = router.route(
            &[FragmentRequest {
                fragment: FragmentId(0),
                size: 1,
                candidates: vec![],
            }],
            &mut q,
        );
    }

    #[test]
    fn deterministic_under_ties() {
        let router = MaxOfMins::new(10);
        for _ in 0..4 {
            let mut q1 = QueueView::new(3);
            let mut q2 = QueueView::new(3);
            let reqs = vec![
                req(0, 10, &[0, 1, 2]),
                req(1, 10, &[0, 1, 2]),
                req(2, 10, &[0, 1, 2]),
            ];
            assert_eq!(router.route(&reqs, &mut q1), router.route(&reqs, &mut q2));
        }
    }

    #[test]
    fn power_of_two_routes_every_request_to_a_candidate() {
        let router = PowerOfTwoChoices::new(100, 7);
        let mut q = QueueView::new(8);
        let reqs: Vec<FragmentRequest> = (0..32)
            .map(|i| req(i, 50, &[i % 8, (i + 3) % 8, (i + 5) % 8]))
            .collect();
        let out = router.route(&reqs, &mut q);
        assert_eq!(out.len(), 32);
        for (a, r) in out.iter().zip(&reqs) {
            assert!(r.candidates.contains(&a.node));
        }
        // All placed work is accounted.
        let total: u64 = (0..8).map(|n| q.wait(NodeId(n))).sum();
        assert_eq!(total, 32 * 50);
    }

    #[test]
    fn power_of_two_is_deterministic_per_seed() {
        let reqs: Vec<FragmentRequest> = (0..16).map(|i| req(i, 10, &[0, 1, 2, 3, 4])).collect();
        let route_with = |seed: u64| {
            let router = PowerOfTwoChoices::new(0, seed);
            let mut q = QueueView::new(5);
            router.route(&reqs, &mut q)
        };
        assert_eq!(route_with(1), route_with(1));
        assert_ne!(route_with(1), route_with(2));
    }

    #[test]
    fn power_of_two_prefers_the_shorter_of_its_pair() {
        let router = PowerOfTwoChoices::new(0, 3);
        let mut q = QueueView::from_waits(vec![1_000_000, 0]);
        // Only two candidates: the pair is forced, so it must pick node 1.
        let out = router.route(&[req(0, 10, &[0, 1])], &mut q);
        assert_eq!(out[0].node, NodeId(1));
    }

    #[test]
    fn span_helper_counts_distinct_nodes() {
        let a = [
            Assignment {
                fragment: FragmentId(0),
                node: NodeId(0),
            },
            Assignment {
                fragment: FragmentId(1),
                node: NodeId(0),
            },
            Assignment {
                fragment: FragmentId(2),
                node: NodeId(2),
            },
        ];
        assert_eq!(span(&a), 2);
        assert_eq!(span(&[]), 0);
    }
}
