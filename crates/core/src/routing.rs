//! Routing data access requests (paper §8).
//!
//! When a query's range scan is decomposed into fragment read requests, the
//! scan router picks which replica serves each request. Two pure strategies
//! exist in prior work: minimize *query span* (use as few nodes as
//! possible) or minimize *wait time* (always read from the shortest queue).
//! NashDB's **Max-of-mins** balances them: a node not yet serving this query
//! is charged a span penalty `ϕ`, and requests are scheduled
//! bottleneck-first — the request whose best achievable wait is *largest*
//! is placed first, on the node where its wait is smallest (Eq. 11).
//!
//! Waits are expressed in tuples of queued work (disk reads dominate OLAP
//! scan latency and read time is proportional to tuples, §8); the cluster
//! layer converts its time-based queue lengths and the paper's ϕ = 350 ms
//! into tuple units via node throughput.
//!
//! [`MaxOfMins`] runs Eq. 11 *incrementally*: each pending request caches
//! its current best `(node, effective wait)` in a max-ordered heap, and a
//! placement re-evaluates only the requests it could have invalidated —
//! those listing the placed node as a candidate (its queue grew, and the
//! first placement also flips its ϕ penalty off). The textbook O(R²·C)
//! double loop is retained verbatim in [`mod@reference`] as the executable
//! specification the incremental router is property-tested against.

use std::collections::{BinaryHeap, HashSet};

use crate::ids::{FragmentId, NodeId};

/// One fragment read request of a single range scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentRequest {
    /// The fragment to read.
    pub fragment: FragmentId,
    /// Tuples to read (the fragment size).
    pub size: u64,
    /// Nodes hosting a replica of the fragment. Must be nonempty.
    pub candidates: Vec<NodeId>,
}

/// A routing decision: which node serves which fragment request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The fragment read.
    pub fragment: FragmentId,
    /// The chosen replica's node.
    pub node: NodeId,
}

/// Why a scan could not be routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// A request's candidate list is empty: the fragment is hosted nowhere
    /// the router can see, so no assignment exists.
    NoReplicas {
        /// The unroutable fragment.
        fragment: FragmentId,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NoReplicas { fragment } => {
                write!(f, "fragment {fragment} has no replicas to read")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Checks every request has at least one candidate replica — the one
/// structural precondition all routers share, validated once per scan
/// instead of once per inner-loop iteration.
pub fn validate_requests(requests: &[FragmentRequest]) -> Result<(), RouteError> {
    match requests.iter().find(|r| r.candidates.is_empty()) {
        Some(r) => Err(RouteError::NoReplicas {
            fragment: r.fragment,
        }),
        None => Ok(()),
    }
}

/// A mutable view of per-node queued work, in tuples.
///
/// Routers read waits and push their own assignments so that consecutive
/// requests of the same scan see each other's load.
#[derive(Debug, Clone)]
pub struct QueueView {
    waits: Vec<u64>,
}

impl QueueView {
    /// All queues empty across `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        QueueView {
            waits: vec![0; nodes],
        }
    }

    /// Adopts externally observed waits (tuples of queued work per node).
    pub fn from_waits(waits: Vec<u64>) -> Self {
        QueueView { waits }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.waits.len()
    }

    /// True iff there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.waits.is_empty()
    }

    /// Queued tuples on `node`.
    pub fn wait(&self, node: NodeId) -> u64 {
        self.waits[node.index()]
    }

    /// Adds `size` tuples of work to `node`'s queue, saturating at
    /// `u64::MAX` — every read path treats waits as saturating, so the
    /// write path must too or an adversarial wait/size pair overflows.
    pub fn enqueue(&mut self, node: NodeId, size: u64) {
        let slot = &mut self.waits[node.index()];
        *slot = slot.saturating_add(size);
    }
}

/// A scan-routing strategy.
pub trait ScanRouter {
    /// Routes every request of one scan, updating `queues` with the work it
    /// places. Implementations must assign each request to one of its
    /// candidates, and reject a request with no candidates as
    /// [`RouteError::NoReplicas`] before placing anything.
    fn route(
        &self,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError>;

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Number of distinct nodes used — the query's *span*.
pub fn span(assignments: &[Assignment]) -> usize {
    assignments
        .iter()
        .map(|a| a.node)
        .collect::<HashSet<_>>()
        .len()
}

/// Shared per-scan instrumentation for every router implementation.
fn record_scan_metrics(assignments: &[Assignment]) {
    crate::obs_hooks::counter_add("routing.scans_routed", 1);
    crate::obs_hooks::counter_add("routing.requests", assignments.len() as u64);
    crate::obs_hooks::record("routing.query_span", span(assignments) as u64);
}

/// The paper's Max-of-mins router (Eq. 11), incremental formulation.
///
/// Produces exactly the assignments (and assignment order) of the naive
/// re-evaluate-everything loop in [`reference::max_of_mins`] whenever
/// fragment ids are distinct within the scan (which
/// `DistScheme::requests_for_query` guarantees by deduplication), at
/// O((R + I)·log R) heap work plus O(I·C) re-evaluations, where `I` is the
/// number of placement-invalidated cache entries instead of the naive
/// R²-ish full rescans.
#[derive(Debug, Clone, Copy)]
pub struct MaxOfMins {
    /// Span penalty ϕ in tuple units: the wait-equivalent cost of touching
    /// a node this query is not already using.
    pub phi: u64,
}

impl MaxOfMins {
    /// Creates the router with span penalty `phi` (tuples).
    pub fn new(phi: u64) -> Self {
        MaxOfMins { phi }
    }
}

/// A pending request's place in the bottleneck-first max-heap. Ordered by
/// the Eq. 11 selection key — largest best-achievable wait first, ties
/// toward larger reads, then smaller fragment id, then smaller request
/// index — so `BinaryHeap::pop` yields exactly the request the naive scan
/// would pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapEntry {
    eff: u64,
    size: u64,
    fragment: std::cmp::Reverse<FragmentId>,
    index: std::cmp::Reverse<usize>,
    version: u64,
}

/// A pending request's cached best choice under the current queue state.
#[derive(Debug, Clone, Copy)]
struct Best {
    node: NodeId,
    eff: u64,
    version: u64,
}

impl MaxOfMins {
    /// Eq. 11 inner minimum for one request under the current queue and
    /// chosen-set state: the candidate with the smallest effective wait,
    /// ties toward the lower node id.
    fn best_of(&self, req: &FragmentRequest, queues: &QueueView, chosen: &[bool]) -> (NodeId, u64) {
        let mut best: Option<(u64, NodeId)> = None;
        for &n in &req.candidates {
            let penalty = if chosen[n.index()] { 0 } else { self.phi };
            let key = (queues.wait(n).saturating_add(penalty), n);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        // `route` validated candidates nonempty, so `best` is always set;
        // an impossible miss routes to a sentinel that the candidate check
        // in tests would catch rather than panicking from library code.
        let (eff, node) = best.unwrap_or((u64::MAX, NodeId(u64::MAX)));
        (node, eff)
    }
}

impl ScanRouter for MaxOfMins {
    fn route(
        &self,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError> {
        validate_requests(requests)?;

        // Node-indexed scratch sized to cover every candidate (candidate
        // ids index into `queues`, but an oversized id should fail on the
        // queue lookup exactly as it always has, not on router scratch).
        let nodes = requests
            .iter()
            .flat_map(|r| r.candidates.iter())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0)
            .max(queues.len());
        let mut chosen = vec![false; nodes];
        // Inverted index: which requests list each node as a candidate —
        // exactly the cache entries a placement on that node can invalidate.
        let mut by_node: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        for (i, req) in requests.iter().enumerate() {
            for &n in &req.candidates {
                by_node[n.index()].push(i);
            }
        }

        let mut placed = vec![false; requests.len()];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(requests.len());
        let mut cached: Vec<Best> = requests
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let (node, eff) = self.best_of(req, queues, &chosen);
                heap.push(HeapEntry {
                    eff,
                    size: req.size,
                    fragment: std::cmp::Reverse(req.fragment),
                    index: std::cmp::Reverse(i),
                    version: 0,
                });
                Best {
                    node,
                    eff,
                    version: 0,
                }
            })
            .collect();

        let mut out = Vec::with_capacity(requests.len());
        while let Some(entry) = heap.pop() {
            let idx = entry.index.0;
            if placed[idx] || entry.version != cached[idx].version {
                continue; // superseded by a re-evaluation
            }
            let req = &requests[idx];
            let node = cached[idx].node;
            placed[idx] = true;
            crate::obs_hooks::record("routing.queue_wait_tuples", queues.wait(node));
            queues.enqueue(node, req.size);
            chosen[node.index()] = true;
            out.push(Assignment {
                fragment: req.fragment,
                node,
            });

            // Re-evaluate only what this placement could have changed: the
            // placed node's queue grew and (on first touch) its ϕ penalty
            // vanished, so only requests listing it as a candidate can see
            // a different Eq. 11 minimum.
            let via_node = queues.wait(node); // chosen ⇒ no penalty
            for &j in &by_node[node.index()] {
                if placed[j] {
                    continue;
                }
                let best = cached[j];
                if best.node == node {
                    // The invalidated entry *was* the placed node: its wait
                    // rose, so the cached minimum may no longer hold.
                    let (n, eff) = self.best_of(&requests[j], queues, &chosen);
                    cached[j] = Best {
                        node: n,
                        eff,
                        version: best.version + 1,
                    };
                } else if (via_node, node) < (best.eff, best.node) {
                    // The placed node just undercut the cached minimum
                    // (penalty flipped off); every other candidate is
                    // untouched, so this O(1) patch is exact.
                    cached[j] = Best {
                        node,
                        eff: via_node,
                        version: best.version + 1,
                    };
                } else {
                    continue; // cached minimum still exact
                }
                heap.push(HeapEntry {
                    eff: cached[j].eff,
                    size: requests[j].size,
                    fragment: std::cmp::Reverse(requests[j].fragment),
                    index: std::cmp::Reverse(j),
                    version: cached[j].version,
                });
            }
        }
        record_scan_metrics(&out);
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "max-of-mins"
    }
}

pub mod reference {
    //! Naive reference implementations retained as executable
    //! specifications for property tests and the `nashdb-bench perf`
    //! before/after comparison. Not for production paths: the Max-of-mins
    //! loop here is the O(R²·C) formulation the incremental router
    //! replaced (including its per-iteration revalidation overhead).

    use super::{Assignment, FragmentRequest, QueueView, RouteError};
    use crate::ids::NodeId;
    use std::collections::HashSet;

    /// The textbook Eq. 11 loop: every outer iteration re-derives every
    /// pending request's best choice from scratch and places the worst
    /// best. Identical assignments (and assignment order) to
    /// [`MaxOfMins`](super::MaxOfMins) for scans with distinct fragment
    /// ids.
    pub fn max_of_mins(
        phi: u64,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError> {
        super::validate_requests(requests)?;
        let mut remaining: Vec<&FragmentRequest> = requests.iter().collect();
        let mut chosen: HashSet<NodeId> = HashSet::new();
        let mut out = Vec::with_capacity(requests.len());

        while !remaining.is_empty() {
            // For each pending request, its best effective wait and the
            // node achieving it; then schedule the *worst best* (the
            // bottleneck).
            let mut pick: Option<(usize, NodeId, u64)> = None; // (idx, node, eff wait)
            for (idx, req) in remaining.iter().enumerate() {
                let Some((node, eff)) = req
                    .candidates
                    .iter()
                    .map(|&n| {
                        let penalty = if chosen.contains(&n) { 0 } else { phi };
                        (n, queues.wait(n).saturating_add(penalty))
                    })
                    .min_by_key(|&(n, eff)| (eff, n))
                else {
                    unreachable!("candidates validated nonempty above")
                };
                let better = match pick {
                    None => true,
                    // Strict max; ties broken toward larger reads first,
                    // then fragment id, for determinism.
                    Some((pidx, _, peff)) => {
                        let (ps, pf) = (remaining[pidx].size, remaining[pidx].fragment);
                        (eff, req.size, std::cmp::Reverse(req.fragment))
                            > (peff, ps, std::cmp::Reverse(pf))
                    }
                };
                if better {
                    pick = Some((idx, node, eff));
                }
            }
            let Some((idx, node, _)) = pick else {
                unreachable!("the loop guard keeps `remaining` nonempty")
            };
            let req = remaining.swap_remove(idx);
            queues.enqueue(node, req.size);
            chosen.insert(node);
            out.push(Assignment {
                fragment: req.fragment,
                node,
            });
        }
        Ok(out)
    }
}

/// The "Power of 2" variant the paper sketches in footnote 3 for workloads
/// of *small* scans: instead of examining every replica of every request,
/// consider only two randomly chosen candidates per request and take the
/// better under the Eq. 11 objective. O(R) per scan instead of O(R²·C),
/// trading a little routing quality for constant-time decisions.
///
/// Randomness is a deterministic splitmix64 stream seeded at construction,
/// so simulations stay reproducible.
#[derive(Debug)]
pub struct PowerOfTwoChoices {
    /// Span penalty ϕ in tuple units (as in [`MaxOfMins`]).
    pub phi: u64,
    state: std::sync::Mutex<u64>,
}

impl PowerOfTwoChoices {
    /// Creates the router with span penalty `phi` and an RNG seed.
    pub fn new(phi: u64, seed: u64) -> Self {
        PowerOfTwoChoices {
            phi,
            state: std::sync::Mutex::new(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&self) -> u64 {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl ScanRouter for PowerOfTwoChoices {
    fn route(
        &self,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError> {
        validate_requests(requests)?;
        let mut chosen: HashSet<NodeId> = HashSet::new();
        let out: Vec<Assignment> = requests
            .iter()
            .map(|req| {
                let pair: [NodeId; 2] = if req.candidates.len() <= 2 {
                    [req.candidates[0], req.candidates[req.candidates.len() - 1]]
                } else {
                    let a = crate::num::usize_from(self.next()) % req.candidates.len();
                    let mut b = crate::num::usize_from(self.next()) % (req.candidates.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    [req.candidates[a], req.candidates[b]]
                };
                let Some(node) = pair.into_iter().min_by_key(|&n| {
                    let penalty = if chosen.contains(&n) { 0 } else { self.phi };
                    (queues.wait(n).saturating_add(penalty), n)
                }) else {
                    unreachable!("a two-element pair always has a minimum")
                };
                crate::obs_hooks::record("routing.queue_wait_tuples", queues.wait(node));
                queues.enqueue(node, req.size);
                chosen.insert(node);
                Assignment {
                    fragment: req.fragment,
                    node,
                }
            })
            .collect();
        record_scan_metrics(&out);
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "power-of-two"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(frag: u64, size: u64, candidates: &[u64]) -> FragmentRequest {
        FragmentRequest {
            fragment: FragmentId(frag),
            size,
            candidates: candidates.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    fn node_of(assignments: &[Assignment], frag: u64) -> NodeId {
        assignments
            .iter()
            .find(|a| a.fragment == FragmentId(frag))
            .expect("assigned")
            .node
    }

    #[test]
    fn single_candidate_is_forced() {
        let router = MaxOfMins::new(100);
        let mut q = QueueView::new(2);
        let out = router.route(&[req(0, 50, &[1])], &mut q).unwrap();
        assert_eq!(
            out,
            vec![Assignment {
                fragment: FragmentId(0),
                node: NodeId(1)
            }]
        );
        assert_eq!(q.wait(NodeId(1)), 50);
        assert_eq!(q.wait(NodeId(0)), 0);
    }

    #[test]
    fn span_penalty_consolidates_small_reads() {
        // Two small fragments, both replicated on both idle nodes. With a
        // large ϕ the second read should join the first node rather than
        // fan out.
        let router = MaxOfMins::new(1_000);
        let mut q = QueueView::new(2);
        let out = router
            .route(&[req(0, 10, &[0, 1]), req(1, 10, &[0, 1])], &mut q)
            .unwrap();
        assert_eq!(span(&out), 1);
    }

    #[test]
    fn zero_penalty_spreads_load() {
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(2);
        let out = router
            .route(&[req(0, 10, &[0, 1]), req(1, 10, &[0, 1])], &mut q)
            .unwrap();
        assert_eq!(span(&out), 2);
    }

    #[test]
    fn widens_span_when_beneficial() {
        // A huge read occupies node 0; a second huge read should pay ϕ and
        // go to node 1 rather than queue behind it.
        let router = MaxOfMins::new(50);
        let mut q = QueueView::new(2);
        let out = router
            .route(&[req(0, 1_000, &[0, 1]), req(1, 1_000, &[0, 1])], &mut q)
            .unwrap();
        assert_eq!(span(&out), 2);
        assert_ne!(node_of(&out, 0), node_of(&out, 1));
    }

    #[test]
    fn bottleneck_scheduled_first_onto_short_queue() {
        // Fragment 0 can only be read from the busy node 0; fragment 1 can
        // be read anywhere. The bottleneck (fragment 0) must be placed
        // first, and fragment 1 should then avoid stacking behind it.
        let router = MaxOfMins::new(0);
        let mut q = QueueView::from_waits(vec![500, 0]);
        let out = router
            .route(&[req(1, 10, &[0, 1]), req(0, 10, &[0])], &mut q)
            .unwrap();
        assert_eq!(node_of(&out, 0), NodeId(0));
        assert_eq!(node_of(&out, 1), NodeId(1));
        // Bottleneck-first: fragment 0 appears before fragment 1.
        assert_eq!(out[0].fragment, FragmentId(0));
    }

    #[test]
    fn accounts_for_own_placements() {
        // Three equal reads over two idle nodes with no penalty: the third
        // read must see the first two queued and pick the emptier node.
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(2);
        let out = router
            .route(
                &[
                    req(0, 100, &[0, 1]),
                    req(1, 100, &[0, 1]),
                    req(2, 100, &[0, 1]),
                ],
                &mut q,
            )
            .unwrap();
        let w0 = q.wait(NodeId(0));
        let w1 = q.wait(NodeId(1));
        assert_eq!(w0 + w1, 300);
        assert!(w0.abs_diff(w1) == 100, "unbalanced: {w0} vs {w1}");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_candidates_is_a_typed_error() {
        let bad = FragmentRequest {
            fragment: FragmentId(7),
            size: 1,
            candidates: vec![],
        };
        let mut q = QueueView::new(1);
        let err = MaxOfMins::new(0)
            .route(std::slice::from_ref(&bad), &mut q)
            .unwrap_err();
        assert_eq!(
            err,
            RouteError::NoReplicas {
                fragment: FragmentId(7)
            }
        );
        assert!(err.to_string().contains("no replicas"));
        // Validation is up-front: nothing was enqueued.
        assert_eq!(q.wait(NodeId(0)), 0);
        // Same contract for the stochastic router and the reference.
        let err2 = PowerOfTwoChoices::new(0, 1)
            .route(std::slice::from_ref(&bad), &mut q)
            .unwrap_err();
        assert_eq!(err, err2);
        let err3 = reference::max_of_mins(0, std::slice::from_ref(&bad), &mut q).unwrap_err();
        assert_eq!(err, err3);
    }

    #[test]
    fn error_is_detected_before_any_placement() {
        // A routable request ahead of an unroutable one: validate-once
        // means the queue stays untouched rather than half-routed.
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(2);
        let reqs = [
            req(0, 100, &[0, 1]),
            FragmentRequest {
                fragment: FragmentId(1),
                size: 5,
                candidates: vec![],
            },
        ];
        assert!(router.route(&reqs, &mut q).is_err());
        assert_eq!(q.wait(NodeId(0)) + q.wait(NodeId(1)), 0);
    }

    #[test]
    fn enqueue_saturates_at_u64_max() {
        // Regression: enqueue used unchecked `+=` while every read path
        // saturated; a near-MAX wait plus a large read panicked in debug
        // builds instead of pinning at MAX.
        let mut q = QueueView::from_waits(vec![u64::MAX - 10]);
        q.enqueue(NodeId(0), u64::MAX);
        assert_eq!(q.wait(NodeId(0)), u64::MAX);
        q.enqueue(NodeId(0), 1);
        assert_eq!(q.wait(NodeId(0)), u64::MAX);
        // And the router survives routing onto a saturated queue.
        let out = MaxOfMins::new(u64::MAX)
            .route(&[req(0, u64::MAX, &[0]), req(1, u64::MAX, &[0])], &mut q)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(q.wait(NodeId(0)), u64::MAX);
    }

    #[test]
    fn deterministic_under_ties() {
        let router = MaxOfMins::new(10);
        for _ in 0..4 {
            let mut q1 = QueueView::new(3);
            let mut q2 = QueueView::new(3);
            let reqs = vec![
                req(0, 10, &[0, 1, 2]),
                req(1, 10, &[0, 1, 2]),
                req(2, 10, &[0, 1, 2]),
            ];
            assert_eq!(
                router.route(&reqs, &mut q1).unwrap(),
                router.route(&reqs, &mut q2).unwrap()
            );
        }
    }

    #[test]
    fn matches_reference_on_dense_scans() {
        // A deterministic non-random sweep; the property tests cover random
        // instances, this pins a few structured ones (all-shared, disjoint,
        // chained candidate sets, preloaded queues).
        let cases: Vec<(Vec<FragmentRequest>, Vec<u64>)> = vec![
            (
                (0..12).map(|i| req(i, 10 + i, &[0, 1, 2, 3])).collect(),
                vec![0; 4],
            ),
            (
                (0..8).map(|i| req(i, 100, &[i % 4])).collect(),
                vec![50, 0, 900, 3],
            ),
            (
                (0..10)
                    .map(|i| req(i, 7 * i + 1, &[i % 5, (i + 1) % 5]))
                    .collect(),
                vec![10, 20, 30, 40, 0],
            ),
        ];
        for phi in [0, 35, 100_000] {
            for (reqs, waits) in &cases {
                let mut q1 = QueueView::from_waits(waits.clone());
                let mut q2 = QueueView::from_waits(waits.clone());
                let fast = MaxOfMins::new(phi).route(reqs, &mut q1).unwrap();
                let naive = reference::max_of_mins(phi, reqs, &mut q2).unwrap();
                assert_eq!(fast, naive, "phi {phi}");
                for n in 0..waits.len() {
                    assert_eq!(q1.wait(NodeId(n as u64)), q2.wait(NodeId(n as u64)));
                }
            }
        }
    }

    #[test]
    fn power_of_two_routes_every_request_to_a_candidate() {
        let router = PowerOfTwoChoices::new(100, 7);
        let mut q = QueueView::new(8);
        let reqs: Vec<FragmentRequest> = (0..32)
            .map(|i| req(i, 50, &[i % 8, (i + 3) % 8, (i + 5) % 8]))
            .collect();
        let out = router.route(&reqs, &mut q).unwrap();
        assert_eq!(out.len(), 32);
        for (a, r) in out.iter().zip(&reqs) {
            assert!(r.candidates.contains(&a.node));
        }
        // All placed work is accounted.
        let total: u64 = (0..8).map(|n| q.wait(NodeId(n))).sum();
        assert_eq!(total, 32 * 50);
    }

    #[test]
    fn power_of_two_is_deterministic_per_seed() {
        let reqs: Vec<FragmentRequest> = (0..16).map(|i| req(i, 10, &[0, 1, 2, 3, 4])).collect();
        let route_with = |seed: u64| {
            let router = PowerOfTwoChoices::new(0, seed);
            let mut q = QueueView::new(5);
            router.route(&reqs, &mut q).unwrap()
        };
        assert_eq!(route_with(1), route_with(1));
        assert_ne!(route_with(1), route_with(2));
    }

    #[test]
    fn power_of_two_prefers_the_shorter_of_its_pair() {
        let router = PowerOfTwoChoices::new(0, 3);
        let mut q = QueueView::from_waits(vec![1_000_000, 0]);
        // Only two candidates: the pair is forced, so it must pick node 1.
        let out = router.route(&[req(0, 10, &[0, 1])], &mut q).unwrap();
        assert_eq!(out[0].node, NodeId(1));
    }

    #[test]
    fn span_helper_counts_distinct_nodes() {
        let a = [
            Assignment {
                fragment: FragmentId(0),
                node: NodeId(0),
            },
            Assignment {
                fragment: FragmentId(1),
                node: NodeId(0),
            },
            Assignment {
                fragment: FragmentId(2),
                node: NodeId(2),
            },
        ];
        assert_eq!(span(&a), 2);
        assert_eq!(span(&[]), 0);
    }
}
