//! Routing data access requests (paper §8).
//!
//! When a query's range scan is decomposed into fragment read requests, the
//! scan router picks which replica serves each request. Two pure strategies
//! exist in prior work: minimize *query span* (use as few nodes as
//! possible) or minimize *wait time* (always read from the shortest queue).
//! NashDB's **Max-of-mins** balances them: a node not yet serving this query
//! is charged a span penalty `ϕ`, and requests are scheduled
//! bottleneck-first — the request whose best achievable wait is *largest*
//! is placed first, on the node where its wait is smallest (Eq. 11).
//!
//! Waits are expressed in tuples of queued work (disk reads dominate OLAP
//! scan latency and read time is proportional to tuples, §8); the cluster
//! layer converts its time-based queue lengths and the paper's ϕ = 350 ms
//! into tuple units via node throughput.
//!
//! [`MaxOfMins`] runs Eq. 11 *incrementally*: each pending request caches
//! its **k best** `(effective wait, node)` candidates with version-stamped
//! invalidation, and a placement re-evaluates only the requests it could
//! have invalidated — those listing the placed node as a candidate (its
//! queue grew, and the first placement also flips its ϕ penalty off). The
//! common invalidation (the placed node *was* a request's best) pops the
//! next cached candidate instead of rescanning all C candidates; a full
//! rescan happens only when the cache's cutoff bound can no longer prove
//! the front entry minimal. The cache engages only for candidate lists
//! wider than k — a cache holding every candidate can exclude none, so
//! short lists re-derive by direct scan. The textbook O(R²·C) double
//! loop is retained
//! verbatim in [`mod@reference`] as the executable specification the
//! incremental router is property-tested against.
//!
//! Scans also route in **batches** ([`ScanRouter::route_batch`]): one call
//! routes many scans against one evolving queue view with scratch state
//! (heap, inverted index, caches) reused across scans, and — when the
//! batch decomposes into node-disjoint groups — shards those groups across
//! the persistent `nashdb-par` worker pool. Disjointness makes the shards
//! commute, so the sharded output (assignments, selection order, final
//! queues, observed waits) is *identical* to sequential per-scan routing;
//! worker threads never touch the observability session — observations are
//! replayed by the caller in scan order, keeping same-seed snapshots
//! byte-identical at any core count.

use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

use crate::ids::{FragmentId, NodeId};

/// One fragment read request of a single range scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentRequest {
    /// The fragment to read.
    pub fragment: FragmentId,
    /// Tuples to read (the fragment size).
    pub size: u64,
    /// Nodes hosting a replica of the fragment. Must be nonempty.
    pub candidates: Vec<NodeId>,
}

/// A routing decision: which node serves which fragment request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The fragment read.
    pub fragment: FragmentId,
    /// The chosen replica's node.
    pub node: NodeId,
}

/// Why a scan could not be routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// A request's candidate list is empty: the fragment is hosted nowhere
    /// the router can see, so no assignment exists.
    NoReplicas {
        /// The unroutable fragment.
        fragment: FragmentId,
    },
    /// The router failed to derive a candidate minimum even though
    /// validation passed — an internal invariant breach (a router bug),
    /// surfaced as a typed error instead of a sentinel assignment or a
    /// library panic.
    InvariantBreach {
        /// The fragment whose minimum could not be derived.
        fragment: FragmentId,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NoReplicas { fragment } => {
                write!(f, "fragment {fragment} has no replicas to read")
            }
            RouteError::InvariantBreach { fragment } => {
                write!(
                    f,
                    "internal routing invariant breached deriving a minimum for fragment {fragment}"
                )
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Checks every request has at least one candidate replica — the one
/// structural precondition all routers share, validated once per scan
/// instead of once per inner-loop iteration.
pub fn validate_requests(requests: &[FragmentRequest]) -> Result<(), RouteError> {
    match requests.iter().find(|r| r.candidates.is_empty()) {
        Some(r) => Err(RouteError::NoReplicas {
            fragment: r.fragment,
        }),
        None => Ok(()),
    }
}

/// A mutable view of per-node queued work, in tuples.
///
/// Routers read waits and push their own assignments so that consecutive
/// requests of the same scan see each other's load.
#[derive(Debug, Clone)]
pub struct QueueView {
    waits: Vec<u64>,
}

impl QueueView {
    /// All queues empty across `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        QueueView {
            waits: vec![0; nodes],
        }
    }

    /// Adopts externally observed waits (tuples of queued work per node).
    pub fn from_waits(waits: Vec<u64>) -> Self {
        QueueView { waits }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.waits.len()
    }

    /// True iff there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.waits.is_empty()
    }

    /// Queued tuples on `node`.
    pub fn wait(&self, node: NodeId) -> u64 {
        self.waits[node.index()]
    }

    /// Adds `size` tuples of work to `node`'s queue, saturating at
    /// `u64::MAX` — every read path treats waits as saturating, so the
    /// write path must too or an adversarial wait/size pair overflows.
    pub fn enqueue(&mut self, node: NodeId, size: u64) {
        let slot = &mut self.waits[node.index()];
        *slot = slot.saturating_add(size);
    }
}

/// A scan-routing strategy.
pub trait ScanRouter {
    /// Routes every request of one scan, updating `queues` with the work it
    /// places. Implementations must assign each request to one of its
    /// candidates, and reject a request with no candidates as
    /// [`RouteError::NoReplicas`] before placing anything.
    fn route(
        &self,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError>;

    /// Routes a batch of scans against one evolving queue view: scan `i+1`
    /// sees the queues exactly as scan `i` left them, as if [`Self::route`]
    /// had been called once per scan in order — that sequential semantics
    /// *is* the batch contract implementations must preserve. Every scan is
    /// validated before anything is placed, so a doomed batch leaves
    /// `queues` untouched.
    fn route_batch(
        &self,
        scans: Vec<Vec<FragmentRequest>>,
        queues: &mut QueueView,
    ) -> Result<Vec<Vec<Assignment>>, RouteError> {
        for scan in &scans {
            validate_requests(scan)?;
        }
        let out: Result<Vec<_>, _> = scans.iter().map(|scan| self.route(scan, queues)).collect();
        let out = out?;
        record_batch_metrics(out.len());
        Ok(out)
    }

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Number of distinct nodes used — the query's *span*.
pub fn span(assignments: &[Assignment]) -> usize {
    assignments
        .iter()
        .map(|a| a.node)
        .collect::<HashSet<_>>()
        .len()
}

/// Shared per-scan instrumentation for every router implementation.
fn record_scan_metrics(assignments: &[Assignment]) {
    crate::obs_hooks::counter_add("routing.scans_routed", 1);
    crate::obs_hooks::counter_add("routing.requests", assignments.len() as u64);
    crate::obs_hooks::record("routing.query_span", span(assignments) as u64);
}

/// Shared per-batch instrumentation for every router implementation.
fn record_batch_metrics(scans: usize) {
    crate::obs_hooks::counter_add("routing.batches_routed", 1);
    crate::obs_hooks::record("routing.batch_scans", scans as u64);
}

/// The paper's Max-of-mins router (Eq. 11), incremental formulation.
///
/// Produces exactly the assignments (and assignment order) of the naive
/// re-evaluate-everything loop in [`reference::max_of_mins`] whenever
/// fragment ids are distinct within the scan (which
/// `DistScheme::requests_for_query` guarantees by deduplication), at
/// O((R + I)·log R) heap work plus O(I·C) re-evaluations, where `I` is the
/// number of placement-invalidated cache entries instead of the naive
/// R²-ish full rescans.
#[derive(Debug, Clone, Copy)]
pub struct MaxOfMins {
    /// Span penalty ϕ in tuple units: the wait-equivalent cost of touching
    /// a node this query is not already using.
    pub phi: u64,
}

impl MaxOfMins {
    /// Creates the router with span penalty `phi` (tuples).
    pub fn new(phi: u64) -> Self {
        MaxOfMins { phi }
    }
}

/// A pending request's place in the bottleneck-first max-heap. Ordered by
/// the Eq. 11 selection key — largest best-achievable wait first, ties
/// toward larger reads, then smaller fragment id, then smaller request
/// index — so `BinaryHeap::pop` yields exactly the request the naive scan
/// would pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapEntry {
    eff: u64,
    size: u64,
    fragment: std::cmp::Reverse<FragmentId>,
    index: std::cmp::Reverse<usize>,
    version: u64,
}

/// How many candidates each pending request caches. Four covers the
/// replica counts Eq. 9 actually produces for hot fragments, so the cache
/// usually holds *every* candidate and a placement never forces a rescan.
const K_BEST: usize = 4;

/// Batches smaller than this route serially even when they decompose into
/// disjoint shards: below it, pool round-trips cost more than they save.
const MIN_SHARD_SCANS: usize = 64;

/// One cached candidate: its effective wait when it was last evaluated,
/// stamped with the node's version at that instant. A stamp mismatch means
/// the node's queue has grown since (waits only grow within a scan batch —
/// ϕ flips are handled eagerly by [`KBest::offer`]), so a stale `eff` is
/// always a *lower bound* on the candidate's true effective wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KEntry {
    eff: u64,
    node: NodeId,
    stamp: u64,
}

impl KEntry {
    fn key(&self) -> (u64, NodeId) {
        (self.eff, self.node)
    }

    /// Filler for unused inline slots; never read while `len` is honest.
    const DUMMY: KEntry = KEntry {
        eff: 0,
        node: NodeId(0),
        stamp: 0,
    };
}

/// A pending request's k-best candidate cache.
///
/// Invariants:
/// * `entries` is sorted ascending by `(eff, node)`.
/// * Every candidate *not* in `entries` has a true effective wait of at
///   least `cutoff` (`None` means every candidate is cached). This holds
///   because waits only grow, and the one event that shrinks a candidate's
///   wait — its ϕ penalty flipping off on first placement — eagerly
///   [`KBest::offer`]s that node into the cache of every request listing it.
///
/// Together these make the lazy minimum exact: refresh stale entries at the
/// front until the front is fresh; if its key is within `cutoff` it beats
/// every uncached candidate too, otherwise rescan.
#[derive(Debug, Clone, Copy)]
struct KBest {
    /// The `len` live entries, sorted ascending by `(eff, node)`, held
    /// inline — a fresh `route` call builds one cache per request, so the
    /// cache itself must never heap-allocate. The spare slot lets
    /// [`KBest::offer`] insert before evicting.
    entries: [KEntry; K_BEST + 1],
    len: usize,
    cutoff: Option<(u64, NodeId)>,
    /// Heap-invalidation version: bumped whenever the announced best
    /// changes, superseding older heap entries for this request.
    version: u64,
    /// The `(eff, node)` last pushed to the selection heap.
    announced: (u64, NodeId),
}

impl Default for KBest {
    fn default() -> Self {
        KBest {
            entries: [KEntry::DUMMY; K_BEST + 1],
            len: 0,
            cutoff: None,
            version: 0,
            announced: (0, NodeId(0)),
        }
    }
}

impl KBest {
    fn reset(&mut self) {
        self.len = 0;
        self.cutoff = None;
        self.version = 0;
        self.announced = (0, NodeId(0));
    }

    /// The cached minimum, if any entry is live.
    fn front(&self) -> Option<KEntry> {
        (self.len > 0).then(|| self.entries[0])
    }

    fn remove_front(&mut self) {
        self.entries.copy_within(1..self.len, 0);
        self.len -= 1;
    }

    /// Requires a free slot (`len <= K_BEST`), which every caller
    /// re-establishes before inserting.
    fn insert_sorted(&mut self, e: KEntry) {
        let mut pos = 0;
        while pos < self.len && self.entries[pos].key() <= e.key() {
            pos += 1;
        }
        self.entries.copy_within(pos..self.len, pos + 1);
        self.entries[pos] = e;
        self.len += 1;
    }

    /// Eagerly records that `node`'s effective wait just *dropped* (its ϕ
    /// penalty flipped off): replace any cached entry for it and, if a
    /// worse entry is evicted to make room, fold the evicted lower bound
    /// into `cutoff` so the exclusion invariant keeps holding.
    fn offer(&mut self, node: NodeId, eff: u64, stamp: u64) {
        if let Some(pos) = self.entries[..self.len].iter().position(|e| e.node == node) {
            self.entries.copy_within(pos + 1..self.len, pos);
            self.len -= 1;
        }
        self.insert_sorted(KEntry { eff, node, stamp });
        if self.len > K_BEST {
            self.len -= 1;
            let key = self.entries[self.len].key();
            self.cutoff = Some(self.cutoff.map_or(key, |c| c.min(key)));
        }
    }
}

/// Reusable per-batch router state. Allocations (inverted index, heap,
/// caches) amortize across every scan of a batch; `node_version` is
/// monotonic across scans so cache stamps never need a global reset.
#[derive(Debug, Default)]
struct Scratch {
    /// Nodes already serving the current scan's query (ϕ-free).
    chosen: Vec<bool>,
    /// Bumped on every enqueue to the node; stamps compare against this.
    node_version: Vec<u64>,
    /// Which requests of the current scan list each node as a candidate.
    by_node: Vec<Vec<usize>>,
    /// Nodes touched by the current scan, for sparse O(touched) reset.
    touched: Vec<usize>,
    caches: Vec<KBest>,
    placed: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
}

impl Scratch {
    /// Prepares the scratch for the next scan: sparse-resets the previous
    /// scan's touched nodes and sizes everything for this scan's shape.
    fn reset_for_scan(&mut self, nodes: usize, requests: usize) {
        for &n in &self.touched {
            self.chosen[n] = false;
            self.by_node[n].clear();
        }
        self.touched.clear();
        if self.chosen.len() < nodes {
            self.chosen.resize(nodes, false);
            self.by_node.resize_with(nodes, Vec::new);
            self.node_version.resize(nodes, 0);
        }
        self.placed.clear();
        self.placed.resize(requests, false);
        if self.caches.len() < requests {
            self.caches.resize_with(requests, KBest::default);
        }
        for c in &mut self.caches[..requests] {
            c.reset();
        }
        self.heap.clear();
    }
}

impl MaxOfMins {
    /// A candidate's Eq. 11 key under the current queue and chosen state.
    fn key_of(&self, n: NodeId, queues: &QueueView, chosen: &[bool]) -> (u64, NodeId) {
        let penalty = if chosen[n.index()] { 0 } else { self.phi };
        (queues.wait(n).saturating_add(penalty), n)
    }

    /// Eq. 11 inner minimum by direct scan. Cheaper than k-best cache
    /// maintenance when the candidate list is short (≤ [`K_BEST`]): a
    /// cache that keeps every candidate cannot exclude any of them, so
    /// its bookkeeping is pure overhead there.
    fn best_of(
        &self,
        req: &FragmentRequest,
        queues: &QueueView,
        chosen: &[bool],
    ) -> Result<(NodeId, u64), RouteError> {
        let mut best: Option<(u64, NodeId)> = None;
        for &n in &req.candidates {
            let key = self.key_of(n, queues, chosen);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        // Candidates are validated nonempty before routing; a miss is a
        // router bug, surfaced typed rather than as a panic.
        match best {
            Some((eff, node)) => Ok((node, eff)),
            None => Err(RouteError::InvariantBreach {
                fragment: req.fragment,
            }),
        }
    }

    /// Full O(C) rescan: repopulates `cache` with the k smallest candidate
    /// keys (freshly stamped) and sets `cutoff` to the (k+1)-th smallest —
    /// the proof obligation for every candidate left out.
    fn rebuild_cache(
        &self,
        cache: &mut KBest,
        req: &FragmentRequest,
        queues: &QueueView,
        chosen: &[bool],
        node_version: &[u64],
    ) {
        cache.len = 0;
        cache.cutoff = None;
        // Top-(K+1) selection by insertion — O(C·K) with K a small constant.
        let mut top = [(u64::MAX, NodeId(u64::MAX)); K_BEST + 1];
        let mut len = 0usize;
        for &n in &req.candidates {
            let key = self.key_of(n, queues, chosen);
            if len < top.len() {
                top[len] = key;
                len += 1;
            } else if key < top[len - 1] {
                top[len - 1] = key;
            } else {
                continue;
            }
            let mut i = len - 1;
            while i > 0 && top[i] < top[i - 1] {
                top.swap(i, i - 1);
                i -= 1;
            }
        }
        let keep = len.min(K_BEST);
        for (slot, &(eff, node)) in cache.entries.iter_mut().zip(&top[..keep]) {
            *slot = KEntry {
                eff,
                node,
                stamp: node_version[node.index()],
            };
        }
        cache.len = keep;
        if len > K_BEST {
            cache.cutoff = Some(top[K_BEST]);
        }
    }

    /// The request's exact Eq. 11 minimum, lazily: refresh stale front
    /// entries (amortized O(K)); rescan only when the cutoff bound cannot
    /// certify the fresh front.
    fn current_best(
        &self,
        cache: &mut KBest,
        req: &FragmentRequest,
        queues: &QueueView,
        chosen: &[bool],
        node_version: &[u64],
    ) -> Result<(NodeId, u64), RouteError> {
        loop {
            let Some(front) = cache.front() else {
                self.rebuild_cache(cache, req, queues, chosen, node_version);
                let Some(e) = cache.front() else {
                    return Err(RouteError::InvariantBreach {
                        fragment: req.fragment,
                    });
                };
                return Ok((e.node, e.eff));
            };
            if node_version[front.node.index()] == front.stamp {
                if cache.cutoff.is_none_or(|c| front.key() <= c) {
                    return Ok((front.node, front.eff));
                }
                self.rebuild_cache(cache, req, queues, chosen, node_version);
                let Some(e) = cache.front() else {
                    return Err(RouteError::InvariantBreach {
                        fragment: req.fragment,
                    });
                };
                return Ok((e.node, e.eff));
            }
            // Stale front: refresh it in place and re-sort. Each pass
            // freshens one entry, so this loop runs at most K times.
            cache.remove_front();
            let (eff, _) = self.key_of(front.node, queues, chosen);
            cache.insert_sorted(KEntry {
                eff,
                node: front.node,
                stamp: node_version[front.node.index()],
            });
        }
    }

    /// Routes one pre-validated scan, reusing `scratch` across calls.
    /// Observed pre-enqueue waits append to `obs_waits` instead of the
    /// observability session, so shard workers stay session-free and the
    /// caller replays observations in scan order.
    fn route_scan_into(
        &self,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
        scratch: &mut Scratch,
        obs_waits: &mut Vec<u64>,
    ) -> Result<Vec<Assignment>, RouteError> {
        // Node-indexed scratch sized to cover every candidate (candidate
        // ids index into `queues`, but an oversized id should fail on the
        // queue lookup exactly as it always has, not on router scratch).
        let nodes = requests
            .iter()
            .flat_map(|r| r.candidates.iter())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0)
            .max(queues.len());
        scratch.reset_for_scan(nodes, requests.len());
        for (i, req) in requests.iter().enumerate() {
            for &n in &req.candidates {
                let slot = &mut scratch.by_node[n.index()];
                if slot.is_empty() {
                    scratch.touched.push(n.index());
                }
                slot.push(i);
            }
        }

        for (i, req) in requests.iter().enumerate() {
            // Announce via a plain O(C) min-scan and leave the k-best
            // entries unbuilt (`len == 0`): most requests are placed off
            // their initial announcement and never pay for cache
            // construction. `current_best` materializes the cache on the
            // first real re-derivation.
            let (node, eff) = self.best_of(req, queues, &scratch.chosen)?;
            scratch.caches[i].announced = (eff, node);
            scratch.heap.push(HeapEntry {
                eff,
                size: req.size,
                fragment: std::cmp::Reverse(req.fragment),
                index: std::cmp::Reverse(i),
                version: 0,
            });
        }

        let mut out = Vec::with_capacity(requests.len());
        while let Some(entry) = scratch.heap.pop() {
            let idx = entry.index.0;
            if scratch.placed[idx] || entry.version != scratch.caches[idx].version {
                continue; // superseded by a re-evaluation
            }
            let req = &requests[idx];
            let (_, node) = scratch.caches[idx].announced;
            scratch.placed[idx] = true;
            obs_waits.push(queues.wait(node));
            queues.enqueue(node, req.size);
            scratch.node_version[node.index()] += 1;
            let first_touch = !scratch.chosen[node.index()];
            scratch.chosen[node.index()] = true;
            out.push(Assignment {
                fragment: req.fragment,
                node,
            });

            // Re-evaluate only what this placement could have changed: the
            // placed node's queue grew and (on first touch) its ϕ penalty
            // vanished, so only requests listing it as a candidate can see
            // a different Eq. 11 minimum.
            let via = queues.wait(node); // chosen ⇒ no penalty
            let stamp = scratch.node_version[node.index()];
            for &j in &scratch.by_node[node.index()] {
                if scratch.placed[j] {
                    continue;
                }
                if first_touch && scratch.caches[j].len > 0 {
                    // Penalty flips break the stale-entries-are-lower-bounds
                    // invariant, so built caches must eagerly absorb the
                    // flipped node's fresh key. Unbuilt caches (`len == 0`)
                    // hold no entries to go stale and skip the bookkeeping.
                    scratch.caches[j].offer(node, via, stamp);
                }
                let (a_eff, a_node) = scratch.caches[j].announced;
                let (n, eff) = if a_node == node {
                    // The announced minimum ran through the placed node and
                    // its wait just grew: re-derive the true minimum. Long
                    // candidate lists go through the k-best cache (amortized
                    // O(K), rescan only past the cutoff); short ones rescan
                    // directly — the cache could not exclude any candidate.
                    if requests[j].candidates.len() > K_BEST {
                        self.current_best(
                            &mut scratch.caches[j],
                            &requests[j],
                            queues,
                            &scratch.chosen,
                            &scratch.node_version,
                        )?
                    } else {
                        self.best_of(&requests[j], queues, &scratch.chosen)?
                    }
                } else if (via, node) < (a_eff, a_node) {
                    // First touch dropped the placed node's ϕ penalty below
                    // the announced minimum: patch in O(1). (Only a penalty
                    // flip can undercut — waits never shrink — and `offer`
                    // above already recorded the fresh entry.)
                    (node, via)
                } else {
                    // Every other candidate's key is unchanged and the placed
                    // node does not undercut: the announced minimum is still
                    // exact, so skip all cache maintenance. The cache may now
                    // hold a stale (lower-bound) entry for the placed node;
                    // `current_best` refreshes it lazily via its stamp.
                    continue;
                };
                let c = &mut scratch.caches[j];
                if (eff, n) != c.announced {
                    c.version += 1;
                    c.announced = (eff, n);
                    scratch.heap.push(HeapEntry {
                        eff,
                        size: requests[j].size,
                        fragment: std::cmp::Reverse(requests[j].fragment),
                        index: std::cmp::Reverse(j),
                        version: c.version,
                    });
                }
            }
        }
        Ok(out)
    }
}

/// Vec-based disjoint-set union over node indices (no hash maps: shard
/// grouping must be a deterministic function of the input). Roots are
/// always the smallest node index of their component.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// How a batch decomposes into node-disjoint shards. Scans in different
/// shards share no candidate node, so routing them commutes: any
/// interleaving — including parallel — produces the sequential result.
struct ShardPlan {
    /// Scan indices per shard, shard order by first scan occurrence and
    /// scan order within a shard preserved.
    shard_scans: Vec<Vec<usize>>,
    /// Candidate nodes per shard, for the final-wait merge.
    shard_nodes: Vec<Vec<usize>>,
    /// Scans with no requests; they route to empty assignment lists.
    empty_scans: Vec<usize>,
}

/// Groups a batch into node-disjoint shards, or `None` when sharding
/// cannot pay (small batch, or everything is one connected component).
fn plan_shards(scans: &[Vec<FragmentRequest>]) -> Option<ShardPlan> {
    if scans.len() < MIN_SHARD_SCANS {
        return None;
    }
    let nodes = scans
        .iter()
        .flat_map(|s| s.iter())
        .flat_map(|r| r.candidates.iter())
        .map(|n| n.index() + 1)
        .max()
        .unwrap_or(0);
    if nodes == 0 {
        return None; // every scan is empty
    }
    let mut dsu = Dsu::new(nodes);
    let mut seen = vec![false; nodes];
    for scan in scans {
        // A scan is atomic: all its candidate nodes join one component.
        let mut anchor: Option<usize> = None;
        for req in scan {
            for &n in &req.candidates {
                seen[n.index()] = true;
                match anchor {
                    None => anchor = Some(n.index()),
                    Some(a) => dsu.union(a, n.index()),
                }
            }
        }
    }
    let mut root_to_shard: Vec<usize> = vec![usize::MAX; nodes];
    let mut shard_scans: Vec<Vec<usize>> = Vec::new();
    let mut empty_scans = Vec::new();
    for (si, scan) in scans.iter().enumerate() {
        let Some(first) = scan.first().and_then(|r| r.candidates.first()) else {
            empty_scans.push(si);
            continue;
        };
        let root = dsu.find(first.index());
        let shard = if root_to_shard[root] == usize::MAX {
            root_to_shard[root] = shard_scans.len();
            shard_scans.push(Vec::new());
            shard_scans.len() - 1
        } else {
            root_to_shard[root]
        };
        shard_scans[shard].push(si);
    }
    if shard_scans.len() < 2 {
        return None;
    }
    let mut shard_nodes: Vec<Vec<usize>> = vec![Vec::new(); shard_scans.len()];
    for n in 0..nodes {
        if !seen[n] {
            continue;
        }
        let shard = root_to_shard[dsu.find(n)];
        if shard != usize::MAX {
            shard_nodes[shard].push(n);
        }
    }
    Some(ShardPlan {
        shard_scans,
        shard_nodes,
        empty_scans,
    })
}

impl MaxOfMins {
    /// Sequential batch path: one scratch reused across every scan, with
    /// observations recorded scan-by-scan exactly as per-scan `route`
    /// calls would have.
    fn route_batch_serial(
        &self,
        scans: &[Vec<FragmentRequest>],
        queues: &mut QueueView,
    ) -> Result<Vec<Vec<Assignment>>, RouteError> {
        let mut scratch = Scratch::default();
        let mut obs_waits = Vec::new();
        let mut out = Vec::with_capacity(scans.len());
        let mut requests = 0u64;
        // One session check for the whole batch instead of a thread-local
        // round-trip per sample; with no session live, skip the replay and
        // the span computation outright.
        let obs_active = crate::obs_hooks::is_active();
        for scan in scans {
            obs_waits.clear();
            let assignments = self.route_scan_into(scan, queues, &mut scratch, &mut obs_waits)?;
            if obs_active {
                for &w in &obs_waits {
                    crate::obs_hooks::record("routing.queue_wait_tuples", w);
                }
                // Counters are additive, so the batch folds them into two
                // `counter_add`s below; the per-scan span histogram sample
                // must stay per scan to match what per-scan routing records.
                crate::obs_hooks::record("routing.query_span", span(&assignments) as u64);
            }
            requests = requests.saturating_add(assignments.len() as u64);
            out.push(assignments);
        }
        crate::obs_hooks::counter_add("routing.scans_routed", out.len() as u64);
        crate::obs_hooks::counter_add("routing.requests", requests);
        Ok(out)
    }

    /// Sharded batch path: each node-disjoint shard routes its scans on a
    /// persistent-pool worker against a private queue copy; the caller
    /// merges final waits per shard (disjoint, so order-free) and replays
    /// every observation in original scan order. Workers touch no
    /// observability session, so same-seed snapshots stay byte-identical
    /// at any core count.
    fn route_batch_sharded(
        &self,
        scans: Vec<Vec<FragmentRequest>>,
        queues: &mut QueueView,
        plan: ShardPlan,
    ) -> Result<Vec<Vec<Assignment>>, RouteError> {
        // Per scan: its index, its assignments, and how many of the shard's
        // flat observation buffer entries belong to it. One flat `Vec<u64>`
        // per shard (instead of one per scan) keeps the worker loop free of
        // per-scan allocations.
        type ScanOut = (usize, Vec<Assignment>, usize);
        // Slot per scan: assignments plus where its observations live
        // (shard index, offset into that shard's flat buffer, count).
        type ScanSlot = (Vec<Assignment>, usize, usize, usize);
        let phi = self.phi;
        let base_waits = queues.waits.clone();
        let shared = Arc::new(scans);
        let scans_ref = Arc::clone(&shared);
        let shard_results = nashdb_par::map_vec(plan.shard_scans, 1, move |_, shard| {
            let router = MaxOfMins { phi };
            let mut q = QueueView {
                waits: base_waits.clone(),
            };
            let mut scratch = Scratch::default();
            let mut per_scan: Vec<ScanOut> = Vec::with_capacity(shard.len());
            let mut obs = Vec::new();
            for si in shard {
                let before = obs.len();
                let assignments =
                    router.route_scan_into(&scans_ref[si], &mut q, &mut scratch, &mut obs)?;
                per_scan.push((si, assignments, obs.len() - before));
            }
            Ok::<_, RouteError>((per_scan, obs, q.waits))
        });
        // Check every shard before mutating `queues`: an (impossible in
        // practice) invariant error must leave the caller's view untouched.
        let mut merged = Vec::with_capacity(shard_results.len());
        for res in shard_results {
            merged.push(res?);
        }
        let mut slots: Vec<Option<ScanSlot>> = Vec::new();
        slots.resize_with(shared.len(), || None);
        for si in plan.empty_scans {
            slots[si] = Some((Vec::new(), 0, 0, 0));
        }
        let mut shard_obs = Vec::with_capacity(merged.len());
        for (shard_idx, (per_scan, obs, final_waits)) in merged.into_iter().enumerate() {
            let mut offset = 0usize;
            for (si, assignments, obs_len) in per_scan {
                slots[si] = Some((assignments, shard_idx, offset, obs_len));
                offset += obs_len;
            }
            shard_obs.push(obs);
            for &n in &plan.shard_nodes[shard_idx] {
                queues.waits[n] = final_waits[n];
            }
        }
        let mut out = Vec::with_capacity(shared.len());
        let mut requests = 0u64;
        let obs_active = crate::obs_hooks::is_active();
        for (si, slot) in slots.into_iter().enumerate() {
            let Some((assignments, shard_idx, offset, obs_len)) = slot else {
                // Every scan is in exactly one shard or the empty list, so
                // a hole is a planner bug — surface it typed.
                return Err(RouteError::InvariantBreach {
                    fragment: shared[si]
                        .first()
                        .map(|r| r.fragment)
                        .unwrap_or(FragmentId(0)),
                });
            };
            if obs_active {
                for &w in &shard_obs[shard_idx][offset..offset + obs_len] {
                    crate::obs_hooks::record("routing.queue_wait_tuples", w);
                }
                crate::obs_hooks::record("routing.query_span", span(&assignments) as u64);
            }
            requests = requests.saturating_add(assignments.len() as u64);
            out.push(assignments);
        }
        crate::obs_hooks::counter_add("routing.scans_routed", out.len() as u64);
        crate::obs_hooks::counter_add("routing.requests", requests);
        Ok(out)
    }
}

std::thread_local! {
    /// Per-thread router scratch reused across [`ScanRouter::route`] calls.
    /// `reset_for_scan` re-initializes everything a scan reads, and node
    /// version stamps are monotonic, so reuse is semantically invisible —
    /// the same property `route_batch` relies on when it threads one
    /// scratch through a whole batch.
    static ROUTE_SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

impl ScanRouter for MaxOfMins {
    fn route(
        &self,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError> {
        validate_requests(requests)?;
        let mut obs_waits = Vec::with_capacity(requests.len());
        let out = ROUTE_SCRATCH.with(|cell| {
            // Re-entrant `route` calls (e.g. from an obs hook) would hit a
            // second `borrow_mut`; fall back to a fresh scratch for them.
            match cell.try_borrow_mut() {
                Ok(mut scratch) => {
                    self.route_scan_into(requests, queues, &mut scratch, &mut obs_waits)
                }
                Err(_) => {
                    self.route_scan_into(requests, queues, &mut Scratch::default(), &mut obs_waits)
                }
            }
        })?;
        for &w in &obs_waits {
            crate::obs_hooks::record("routing.queue_wait_tuples", w);
        }
        record_scan_metrics(&out);
        Ok(out)
    }

    fn route_batch(
        &self,
        scans: Vec<Vec<FragmentRequest>>,
        queues: &mut QueueView,
    ) -> Result<Vec<Vec<Assignment>>, RouteError> {
        for scan in &scans {
            validate_requests(scan)?;
        }
        // Sharding only pays when shards actually run concurrently; on a
        // single-core host the pool degrades to serial execution and the
        // shard bookkeeping is pure overhead, so route the batch through
        // the one-scratch sequential path instead. (Shard planning and the
        // sharded path stay covered by tests that invoke them directly.)
        let plan = if nashdb_par::max_threads() > 1 {
            plan_shards(&scans)
        } else {
            None
        };
        let out = match plan {
            Some(plan) => self.route_batch_sharded(scans, queues, plan)?,
            None => self.route_batch_serial(&scans, queues)?,
        };
        record_batch_metrics(out.len());
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "max-of-mins"
    }
}

pub mod reference {
    //! Naive reference implementations retained as executable
    //! specifications for property tests and the `nashdb-bench perf`
    //! before/after comparison. Not for production paths: the Max-of-mins
    //! loop here is the O(R²·C) formulation the incremental router
    //! replaced (including its per-iteration revalidation overhead).

    use super::{Assignment, FragmentRequest, QueueView, RouteError};
    use crate::ids::NodeId;
    use std::collections::HashSet;

    /// The textbook Eq. 11 loop: every outer iteration re-derives every
    /// pending request's best choice from scratch and places the worst
    /// best. Identical assignments (and assignment order) to
    /// [`MaxOfMins`](super::MaxOfMins) for scans with distinct fragment
    /// ids.
    pub fn max_of_mins(
        phi: u64,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError> {
        super::validate_requests(requests)?;
        let mut remaining: Vec<&FragmentRequest> = requests.iter().collect();
        let mut chosen: HashSet<NodeId> = HashSet::new();
        let mut out = Vec::with_capacity(requests.len());

        while !remaining.is_empty() {
            // For each pending request, its best effective wait and the
            // node achieving it; then schedule the *worst best* (the
            // bottleneck).
            let mut pick: Option<(usize, NodeId, u64)> = None; // (idx, node, eff wait)
            for (idx, req) in remaining.iter().enumerate() {
                let Some((node, eff)) = req
                    .candidates
                    .iter()
                    .map(|&n| {
                        let penalty = if chosen.contains(&n) { 0 } else { phi };
                        (n, queues.wait(n).saturating_add(penalty))
                    })
                    .min_by_key(|&(n, eff)| (eff, n))
                else {
                    // Candidates were validated nonempty above; a miss is a
                    // router bug, surfaced typed rather than as a panic.
                    return Err(RouteError::InvariantBreach {
                        fragment: req.fragment,
                    });
                };
                let better = match pick {
                    None => true,
                    // Strict max; ties broken toward larger reads first,
                    // then fragment id, for determinism.
                    Some((pidx, _, peff)) => {
                        let (ps, pf) = (remaining[pidx].size, remaining[pidx].fragment);
                        (eff, req.size, std::cmp::Reverse(req.fragment))
                            > (peff, ps, std::cmp::Reverse(pf))
                    }
                };
                if better {
                    pick = Some((idx, node, eff));
                }
            }
            let Some((idx, node, _)) = pick else {
                // The loop guard keeps `remaining` nonempty, so a pick
                // always exists; a miss is a router bug, surfaced typed.
                return Err(RouteError::InvariantBreach {
                    fragment: remaining[0].fragment,
                });
            };
            let req = remaining.swap_remove(idx);
            queues.enqueue(node, req.size);
            chosen.insert(node);
            out.push(Assignment {
                fragment: req.fragment,
                node,
            });
        }
        Ok(out)
    }

    /// The batch specification: validate every scan up front, then route
    /// each scan with [`max_of_mins`] against the same evolving queue view.
    /// This sequential threading *is* the semantics
    /// [`ScanRouter::route_batch`](super::ScanRouter::route_batch)
    /// implementations (including the sharded one) must reproduce exactly —
    /// assignments, selection order, and final queue waits.
    pub fn max_of_mins_batch(
        phi: u64,
        scans: &[Vec<FragmentRequest>],
        queues: &mut QueueView,
    ) -> Result<Vec<Vec<Assignment>>, RouteError> {
        for scan in scans {
            super::validate_requests(scan)?;
        }
        scans.iter().map(|s| max_of_mins(phi, s, queues)).collect()
    }

    /// The incremental router as it ran *before batching*: one scan per
    /// call, every piece of scratch state (inverted index, cached bests,
    /// heap) allocated fresh each call. Retained as the executable spec of
    /// the per-arrival path so `nashdb-bench perf` measures the batch
    /// router against the formulation it replaced — that per-call setup is
    /// exactly what batching amortizes. Identical assignments (and
    /// assignment order) to [`MaxOfMins`](super::MaxOfMins).
    pub fn incremental_per_scan(
        phi: u64,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError> {
        use super::HeapEntry;
        use std::collections::BinaryHeap;

        super::validate_requests(requests)?;

        #[derive(Clone, Copy)]
        struct Best {
            node: NodeId,
            eff: u64,
            version: u64,
        }
        let key_of = |n: NodeId, queues: &QueueView, chosen: &[bool]| {
            let penalty = if chosen[n.index()] { 0 } else { phi };
            (queues.wait(n).saturating_add(penalty), n)
        };
        let best_of = |req: &FragmentRequest, queues: &QueueView, chosen: &[bool]| {
            let mut best: Option<(u64, NodeId)> = None;
            for &n in &req.candidates {
                let key = key_of(n, queues, chosen);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            match best {
                Some((eff, node)) => Ok((node, eff)),
                None => Err(RouteError::InvariantBreach {
                    fragment: req.fragment,
                }),
            }
        };

        let nodes = requests
            .iter()
            .flat_map(|r| r.candidates.iter())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0)
            .max(queues.len());
        let mut chosen = vec![false; nodes];
        let mut by_node: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        for (i, req) in requests.iter().enumerate() {
            for &n in &req.candidates {
                by_node[n.index()].push(i);
            }
        }

        let mut placed = vec![false; requests.len()];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(requests.len());
        let mut cached: Vec<Best> = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let (node, eff) = best_of(req, queues, &chosen)?;
            heap.push(HeapEntry {
                eff,
                size: req.size,
                fragment: std::cmp::Reverse(req.fragment),
                index: std::cmp::Reverse(i),
                version: 0,
            });
            cached.push(Best {
                node,
                eff,
                version: 0,
            });
        }

        let mut out = Vec::with_capacity(requests.len());
        while let Some(entry) = heap.pop() {
            let idx = entry.index.0;
            if placed[idx] || entry.version != cached[idx].version {
                continue; // superseded by a re-evaluation
            }
            let req = &requests[idx];
            let node = cached[idx].node;
            placed[idx] = true;
            crate::obs_hooks::record("routing.queue_wait_tuples", queues.wait(node));
            queues.enqueue(node, req.size);
            chosen[node.index()] = true;
            out.push(Assignment {
                fragment: req.fragment,
                node,
            });

            let via_node = queues.wait(node); // chosen ⇒ no penalty
            for &j in &by_node[node.index()] {
                if placed[j] {
                    continue;
                }
                let best = cached[j];
                if best.node == node {
                    let (n, eff) = best_of(&requests[j], queues, &chosen)?;
                    cached[j] = Best {
                        node: n,
                        eff,
                        version: best.version + 1,
                    };
                } else if (via_node, node) < (best.eff, best.node) {
                    cached[j] = Best {
                        node,
                        eff: via_node,
                        version: best.version + 1,
                    };
                } else {
                    continue; // cached minimum still exact
                }
                heap.push(HeapEntry {
                    eff: cached[j].eff,
                    size: requests[j].size,
                    fragment: std::cmp::Reverse(requests[j].fragment),
                    index: std::cmp::Reverse(j),
                    version: cached[j].version,
                });
            }
        }
        super::record_scan_metrics(&out);
        Ok(out)
    }
}

/// The "Power of 2" variant the paper sketches in footnote 3 for workloads
/// of *small* scans: instead of examining every replica of every request,
/// consider only two randomly chosen candidates per request and take the
/// better under the Eq. 11 objective. O(R) per scan instead of O(R²·C),
/// trading a little routing quality for constant-time decisions.
///
/// Randomness is a deterministic splitmix64 stream seeded at construction,
/// so simulations stay reproducible.
#[derive(Debug)]
pub struct PowerOfTwoChoices {
    /// Span penalty ϕ in tuple units (as in [`MaxOfMins`]).
    pub phi: u64,
    state: std::sync::Mutex<u64>,
}

impl PowerOfTwoChoices {
    /// Creates the router with span penalty `phi` and an RNG seed.
    pub fn new(phi: u64, seed: u64) -> Self {
        PowerOfTwoChoices {
            phi,
            state: std::sync::Mutex::new(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&self) -> u64 {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl ScanRouter for PowerOfTwoChoices {
    fn route(
        &self,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError> {
        validate_requests(requests)?;
        let mut chosen: HashSet<NodeId> = HashSet::new();
        let out: Vec<Assignment> = requests
            .iter()
            .map(|req| {
                let pair: [NodeId; 2] = if req.candidates.len() <= 2 {
                    [req.candidates[0], req.candidates[req.candidates.len() - 1]]
                } else {
                    let a = crate::num::usize_from(self.next()) % req.candidates.len();
                    let mut b = crate::num::usize_from(self.next()) % (req.candidates.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    [req.candidates[a], req.candidates[b]]
                };
                let key = |n: NodeId| {
                    let penalty = if chosen.contains(&n) { 0 } else { self.phi };
                    (queues.wait(n).saturating_add(penalty), n)
                };
                // A two-element pair always has a minimum, so take it
                // without an Option round-trip (ties keep the first, as
                // `min_by_key` would).
                let node = if key(pair[1]) < key(pair[0]) {
                    pair[1]
                } else {
                    pair[0]
                };
                crate::obs_hooks::record("routing.queue_wait_tuples", queues.wait(node));
                queues.enqueue(node, req.size);
                chosen.insert(node);
                Assignment {
                    fragment: req.fragment,
                    node,
                }
            })
            .collect();
        record_scan_metrics(&out);
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "power-of-two"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(frag: u64, size: u64, candidates: &[u64]) -> FragmentRequest {
        FragmentRequest {
            fragment: FragmentId(frag),
            size,
            candidates: candidates.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    fn node_of(assignments: &[Assignment], frag: u64) -> NodeId {
        assignments
            .iter()
            .find(|a| a.fragment == FragmentId(frag))
            .expect("assigned")
            .node
    }

    #[test]
    fn single_candidate_is_forced() {
        let router = MaxOfMins::new(100);
        let mut q = QueueView::new(2);
        let out = router.route(&[req(0, 50, &[1])], &mut q).unwrap();
        assert_eq!(
            out,
            vec![Assignment {
                fragment: FragmentId(0),
                node: NodeId(1)
            }]
        );
        assert_eq!(q.wait(NodeId(1)), 50);
        assert_eq!(q.wait(NodeId(0)), 0);
    }

    #[test]
    fn span_penalty_consolidates_small_reads() {
        // Two small fragments, both replicated on both idle nodes. With a
        // large ϕ the second read should join the first node rather than
        // fan out.
        let router = MaxOfMins::new(1_000);
        let mut q = QueueView::new(2);
        let out = router
            .route(&[req(0, 10, &[0, 1]), req(1, 10, &[0, 1])], &mut q)
            .unwrap();
        assert_eq!(span(&out), 1);
    }

    #[test]
    fn zero_penalty_spreads_load() {
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(2);
        let out = router
            .route(&[req(0, 10, &[0, 1]), req(1, 10, &[0, 1])], &mut q)
            .unwrap();
        assert_eq!(span(&out), 2);
    }

    #[test]
    fn widens_span_when_beneficial() {
        // A huge read occupies node 0; a second huge read should pay ϕ and
        // go to node 1 rather than queue behind it.
        let router = MaxOfMins::new(50);
        let mut q = QueueView::new(2);
        let out = router
            .route(&[req(0, 1_000, &[0, 1]), req(1, 1_000, &[0, 1])], &mut q)
            .unwrap();
        assert_eq!(span(&out), 2);
        assert_ne!(node_of(&out, 0), node_of(&out, 1));
    }

    #[test]
    fn bottleneck_scheduled_first_onto_short_queue() {
        // Fragment 0 can only be read from the busy node 0; fragment 1 can
        // be read anywhere. The bottleneck (fragment 0) must be placed
        // first, and fragment 1 should then avoid stacking behind it.
        let router = MaxOfMins::new(0);
        let mut q = QueueView::from_waits(vec![500, 0]);
        let out = router
            .route(&[req(1, 10, &[0, 1]), req(0, 10, &[0])], &mut q)
            .unwrap();
        assert_eq!(node_of(&out, 0), NodeId(0));
        assert_eq!(node_of(&out, 1), NodeId(1));
        // Bottleneck-first: fragment 0 appears before fragment 1.
        assert_eq!(out[0].fragment, FragmentId(0));
    }

    #[test]
    fn accounts_for_own_placements() {
        // Three equal reads over two idle nodes with no penalty: the third
        // read must see the first two queued and pick the emptier node.
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(2);
        let out = router
            .route(
                &[
                    req(0, 100, &[0, 1]),
                    req(1, 100, &[0, 1]),
                    req(2, 100, &[0, 1]),
                ],
                &mut q,
            )
            .unwrap();
        let w0 = q.wait(NodeId(0));
        let w1 = q.wait(NodeId(1));
        assert_eq!(w0 + w1, 300);
        assert!(w0.abs_diff(w1) == 100, "unbalanced: {w0} vs {w1}");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_candidates_is_a_typed_error() {
        let bad = FragmentRequest {
            fragment: FragmentId(7),
            size: 1,
            candidates: vec![],
        };
        let mut q = QueueView::new(1);
        let err = MaxOfMins::new(0)
            .route(std::slice::from_ref(&bad), &mut q)
            .unwrap_err();
        assert_eq!(
            err,
            RouteError::NoReplicas {
                fragment: FragmentId(7)
            }
        );
        assert!(err.to_string().contains("no replicas"));
        // Validation is up-front: nothing was enqueued.
        assert_eq!(q.wait(NodeId(0)), 0);
        // Same contract for the stochastic router and the reference.
        let err2 = PowerOfTwoChoices::new(0, 1)
            .route(std::slice::from_ref(&bad), &mut q)
            .unwrap_err();
        assert_eq!(err, err2);
        let err3 = reference::max_of_mins(0, std::slice::from_ref(&bad), &mut q).unwrap_err();
        assert_eq!(err, err3);
    }

    #[test]
    fn error_is_detected_before_any_placement() {
        // A routable request ahead of an unroutable one: validate-once
        // means the queue stays untouched rather than half-routed.
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(2);
        let reqs = [
            req(0, 100, &[0, 1]),
            FragmentRequest {
                fragment: FragmentId(1),
                size: 5,
                candidates: vec![],
            },
        ];
        assert!(router.route(&reqs, &mut q).is_err());
        assert_eq!(q.wait(NodeId(0)) + q.wait(NodeId(1)), 0);
    }

    #[test]
    fn enqueue_saturates_at_u64_max() {
        // Regression: enqueue used unchecked `+=` while every read path
        // saturated; a near-MAX wait plus a large read panicked in debug
        // builds instead of pinning at MAX.
        let mut q = QueueView::from_waits(vec![u64::MAX - 10]);
        q.enqueue(NodeId(0), u64::MAX);
        assert_eq!(q.wait(NodeId(0)), u64::MAX);
        q.enqueue(NodeId(0), 1);
        assert_eq!(q.wait(NodeId(0)), u64::MAX);
        // And the router survives routing onto a saturated queue.
        let out = MaxOfMins::new(u64::MAX)
            .route(&[req(0, u64::MAX, &[0]), req(1, u64::MAX, &[0])], &mut q)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(q.wait(NodeId(0)), u64::MAX);
    }

    #[test]
    fn deterministic_under_ties() {
        let router = MaxOfMins::new(10);
        for _ in 0..4 {
            let mut q1 = QueueView::new(3);
            let mut q2 = QueueView::new(3);
            let reqs = vec![
                req(0, 10, &[0, 1, 2]),
                req(1, 10, &[0, 1, 2]),
                req(2, 10, &[0, 1, 2]),
            ];
            assert_eq!(
                router.route(&reqs, &mut q1).unwrap(),
                router.route(&reqs, &mut q2).unwrap()
            );
        }
    }

    #[test]
    fn matches_reference_on_dense_scans() {
        // A deterministic non-random sweep; the property tests cover random
        // instances, this pins a few structured ones (all-shared, disjoint,
        // chained candidate sets, preloaded queues).
        let cases: Vec<(Vec<FragmentRequest>, Vec<u64>)> = vec![
            (
                (0..12).map(|i| req(i, 10 + i, &[0, 1, 2, 3])).collect(),
                vec![0; 4],
            ),
            (
                (0..8).map(|i| req(i, 100, &[i % 4])).collect(),
                vec![50, 0, 900, 3],
            ),
            (
                (0..10)
                    .map(|i| req(i, 7 * i + 1, &[i % 5, (i + 1) % 5]))
                    .collect(),
                vec![10, 20, 30, 40, 0],
            ),
        ];
        for phi in [0, 35, 100_000] {
            for (reqs, waits) in &cases {
                let mut q1 = QueueView::from_waits(waits.clone());
                let mut q2 = QueueView::from_waits(waits.clone());
                let fast = MaxOfMins::new(phi).route(reqs, &mut q1).unwrap();
                let naive = reference::max_of_mins(phi, reqs, &mut q2).unwrap();
                assert_eq!(fast, naive, "phi {phi}");
                for n in 0..waits.len() {
                    assert_eq!(q1.wait(NodeId(n as u64)), q2.wait(NodeId(n as u64)));
                }
            }
        }
    }

    #[test]
    fn power_of_two_routes_every_request_to_a_candidate() {
        let router = PowerOfTwoChoices::new(100, 7);
        let mut q = QueueView::new(8);
        let reqs: Vec<FragmentRequest> = (0..32)
            .map(|i| req(i, 50, &[i % 8, (i + 3) % 8, (i + 5) % 8]))
            .collect();
        let out = router.route(&reqs, &mut q).unwrap();
        assert_eq!(out.len(), 32);
        for (a, r) in out.iter().zip(&reqs) {
            assert!(r.candidates.contains(&a.node));
        }
        // All placed work is accounted.
        let total: u64 = (0..8).map(|n| q.wait(NodeId(n))).sum();
        assert_eq!(total, 32 * 50);
    }

    #[test]
    fn power_of_two_is_deterministic_per_seed() {
        let reqs: Vec<FragmentRequest> = (0..16).map(|i| req(i, 10, &[0, 1, 2, 3, 4])).collect();
        let route_with = |seed: u64| {
            let router = PowerOfTwoChoices::new(0, seed);
            let mut q = QueueView::new(5);
            router.route(&reqs, &mut q).unwrap()
        };
        assert_eq!(route_with(1), route_with(1));
        assert_ne!(route_with(1), route_with(2));
    }

    #[test]
    fn power_of_two_prefers_the_shorter_of_its_pair() {
        let router = PowerOfTwoChoices::new(0, 3);
        let mut q = QueueView::from_waits(vec![1_000_000, 0]);
        // Only two candidates: the pair is forced, so it must pick node 1.
        let out = router.route(&[req(0, 10, &[0, 1])], &mut q).unwrap();
        assert_eq!(out[0].node, NodeId(1));
    }

    /// Zoned batch: scan `i` belongs to zone `i % zones` and only lists
    /// candidates inside its zone's node range, so the batch decomposes
    /// into `zones` node-disjoint shards with interleaved scan order.
    fn zoned_batch(
        zones: usize,
        scans_per_zone: usize,
        nodes_per_zone: usize,
    ) -> Vec<Vec<FragmentRequest>> {
        let mut scans = Vec::new();
        for i in 0..zones * scans_per_zone {
            let zone = i % zones;
            let base = (zone * nodes_per_zone) as u64;
            let reqs: Vec<FragmentRequest> = (0..3)
                .map(|k| {
                    let f = (i * 3 + k) as u64;
                    let cands: Vec<u64> = (0..nodes_per_zone as u64)
                        .map(|n| base + (n + f) % nodes_per_zone as u64)
                        .take(3)
                        .collect();
                    req(f, 10 + (f * 7) % 90, &cands)
                })
                .collect();
            scans.push(reqs);
        }
        scans
    }

    #[test]
    fn small_batch_matches_sequential_and_reference() {
        // Below MIN_SHARD_SCANS: the serial scratch-reuse path. All scans
        // share nodes, so this also exercises cross-scan queue threading.
        let router = MaxOfMins::new(35);
        let scans: Vec<Vec<FragmentRequest>> = (0..10)
            .map(|i| {
                (0..4)
                    .map(|k| req(i * 4 + k, 10 + i, &[0, 1, 2, (i + k) % 4]))
                    .collect()
            })
            .collect();
        let mut q_batch = QueueView::from_waits(vec![5, 0, 40, 7]);
        let mut q_seq = q_batch.clone();
        let mut q_ref = q_batch.clone();
        let batch = router.route_batch(scans.clone(), &mut q_batch).unwrap();
        let seq: Vec<Vec<Assignment>> = scans
            .iter()
            .map(|s| router.route(s, &mut q_seq).unwrap())
            .collect();
        let reference = reference::max_of_mins_batch(35, &scans, &mut q_ref).unwrap();
        assert_eq!(batch, seq);
        assert_eq!(batch, reference);
        for n in 0..4 {
            assert_eq!(q_batch.wait(NodeId(n)), q_seq.wait(NodeId(n)));
            assert_eq!(q_batch.wait(NodeId(n)), q_ref.wait(NodeId(n)));
        }
    }

    #[test]
    fn sharded_batch_matches_reference() {
        // 3 zones × 40 scans = 120 ≥ MIN_SHARD_SCANS with 3 disjoint
        // shards: the pool-sharded path must equal the sequential spec on
        // assignments, per-scan order, and final queue waits.
        let scans = zoned_batch(3, 40, 4);
        for phi in [0, 35, 100_000] {
            let router = MaxOfMins::new(phi);
            let mut q_batch = QueueView::new(12);
            let mut q_ref = QueueView::new(12);
            // Invoke the sharded path directly: `route_batch` prefers the
            // serial path on single-core hosts, and this contract must hold
            // wherever the tests run.
            let plan = plan_shards(&scans).expect("zoned batch must decompose into shards");
            let batch = router
                .route_batch_sharded(scans.clone(), &mut q_batch, plan)
                .unwrap();
            let reference = reference::max_of_mins_batch(phi, &scans, &mut q_ref).unwrap();
            assert_eq!(batch, reference, "phi {phi}");
            for n in 0..12 {
                assert_eq!(
                    q_batch.wait(NodeId(n)),
                    q_ref.wait(NodeId(n)),
                    "phi {phi}, node {n}"
                );
            }
        }
    }

    #[test]
    fn sharded_batch_is_deterministic_across_repeats() {
        let scans = zoned_batch(4, 30, 3);
        let route_once = || {
            let mut q = QueueView::new(12);
            let plan = plan_shards(&scans).expect("zoned batch must decompose into shards");
            let out = MaxOfMins::new(42)
                .route_batch_sharded(scans.clone(), &mut q, plan)
                .unwrap();
            (out, (0..12).map(|n| q.wait(NodeId(n))).collect::<Vec<_>>())
        };
        let first = route_once();
        for _ in 0..3 {
            assert_eq!(route_once(), first);
        }
    }

    #[test]
    fn batch_validates_every_scan_before_placing() {
        // A routable scan ahead of an unroutable one: validate-all-first
        // means the queues stay untouched rather than half-routed.
        let router = MaxOfMins::new(0);
        let mut q = QueueView::new(2);
        let scans = vec![
            vec![req(0, 100, &[0, 1])],
            vec![FragmentRequest {
                fragment: FragmentId(9),
                size: 5,
                candidates: vec![],
            }],
        ];
        let err = router.route_batch(scans, &mut q).unwrap_err();
        assert_eq!(
            err,
            RouteError::NoReplicas {
                fragment: FragmentId(9)
            }
        );
        assert_eq!(q.wait(NodeId(0)) + q.wait(NodeId(1)), 0);
    }

    #[test]
    fn empty_scans_route_to_empty_assignments() {
        let router = MaxOfMins::new(10);
        // Mix empty scans into a sharded-size batch so both the planner's
        // empty-scan slots and the serial path's trivial case are covered.
        let mut scans = zoned_batch(2, 40, 3);
        scans.insert(0, Vec::new());
        scans.insert(37, Vec::new());
        let mut q_batch = QueueView::new(6);
        let mut q_serial = QueueView::new(6);
        let mut q_ref = QueueView::new(6);
        let plan = plan_shards(&scans).expect("zoned batch must decompose into shards");
        let batch = router
            .route_batch_sharded(scans.clone(), &mut q_batch, plan)
            .unwrap();
        let serial = router.route_batch_serial(&scans, &mut q_serial).unwrap();
        let reference = reference::max_of_mins_batch(10, &scans, &mut q_ref).unwrap();
        assert_eq!(batch, reference);
        assert_eq!(serial, reference);
        assert!(batch[0].is_empty());
        assert!(batch[37].is_empty());
    }

    #[test]
    fn kbest_cache_survives_adversarial_enqueue_patterns() {
        // Candidate lists wider than K_BEST, every request sharing one hot
        // node (forcing offers on the ϕ flip), repeated placements driving
        // every cached entry past the cutoff (forcing rebuilds), plus a
        // deterministic LCG mix of sizes and preloaded waits. The naive
        // reference is the oracle throughout.
        let mut lcg = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            lcg >> 33
        };
        for phi in [0, 7, 100_000] {
            let scans: Vec<Vec<FragmentRequest>> = (0..24)
                .map(|i| {
                    (0..6)
                        .map(|k| {
                            // 10 candidates out of 12 nodes, always node 0.
                            let mut cands = vec![0u64];
                            for c in 0..9u64 {
                                cands.push(1 + (c + i + k) % 11);
                            }
                            req(i * 6 + k, 1 + next() % 1000, &cands)
                        })
                        .collect()
                })
                .collect();
            let waits: Vec<u64> = (0..12).map(|_| next() % 500).collect();
            let router = MaxOfMins::new(phi);
            let mut q_fast = QueueView::from_waits(waits.clone());
            let mut q_ref = QueueView::from_waits(waits);
            let fast = router.route_batch(scans.clone(), &mut q_fast).unwrap();
            let naive = reference::max_of_mins_batch(phi, &scans, &mut q_ref).unwrap();
            assert_eq!(fast, naive, "phi {phi}");
            for n in 0..12 {
                assert_eq!(q_fast.wait(NodeId(n)), q_ref.wait(NodeId(n)), "phi {phi}");
            }
        }
    }

    #[test]
    fn default_route_batch_threads_queues_for_any_router() {
        // The trait's default batch path (used by PowerOfTwoChoices) is
        // per-scan routing in order; check queue threading end-to-end.
        let router = PowerOfTwoChoices::new(10, 99);
        let scans: Vec<Vec<FragmentRequest>> =
            (0..6).map(|i| vec![req(i, 50, &[0, 1, 2])]).collect();
        let mut q = QueueView::new(3);
        let out = router.route_batch(scans, &mut q).unwrap();
        assert_eq!(out.len(), 6);
        let total: u64 = (0..3).map(|n| q.wait(NodeId(n))).sum();
        assert_eq!(total, 6 * 50);
    }

    /// The sharded and serial batch paths must leave *byte-identical*
    /// scrubbed observability snapshots: workers record nothing, the caller
    /// replays every observation in scan order, so the recorded stream is a
    /// pure function of the input regardless of how the batch was split.
    // nashdb-lint: allow(obs-fallback-parity) -- obs-only test, not API: without the feature there is no snapshot to compare, so a twin would be an empty body
    #[cfg(feature = "obs")]
    #[test]
    fn sharded_and_serial_batches_leave_identical_scrubbed_snapshots() {
        let scans = zoned_batch(3, 40, 4);
        let snapshot_of = |sharded: bool| {
            let router = MaxOfMins::new(35);
            let session = nashdb_obs::ObsSession::start();
            let mut q = QueueView::new(12);
            if sharded {
                let plan = plan_shards(&scans).expect("zoned batch must decompose into shards");
                router
                    .route_batch_sharded(scans.clone(), &mut q, plan)
                    .unwrap();
            } else {
                router.route_batch_serial(&scans, &mut q).unwrap();
            }
            let mut snap = session.finish();
            snap.scrub_timings();
            snap.to_json_string()
        };
        let sharded = snapshot_of(true);
        let serial = snapshot_of(false);
        assert_eq!(sharded, serial);
        // Same-seed determinism: repeat runs are byte-identical too.
        assert_eq!(sharded, snapshot_of(true));
    }

    #[test]
    fn span_helper_counts_distinct_nodes() {
        let a = [
            Assignment {
                fragment: FragmentId(0),
                node: NodeId(0),
            },
            Assignment {
                fragment: FragmentId(1),
                node: NodeId(0),
            },
            Assignment {
                fragment: FragmentId(2),
                node: NodeId(2),
            },
        ];
        assert_eq!(span(&a), 2);
        assert_eq!(span(&[]), 0);
    }
}
