//! Replication and provisioning (paper §6).
//!
//! Given a fragmentation and each fragment's windowed value, NashDB decides
//! (1) how many replicas each fragment gets, (2) how many nodes to
//! provision, and (3) which node hosts which replica — collectively a
//! *cluster configuration*.
//!
//! Replica counts come straight from the profit-neutrality condition
//! (Eq. 9): `Ideal(f) = ⌊|W| · Value(f) · Disk / (Size(f) · Cost)⌋` — the
//! largest count at which every replica is still profitable. The paper
//! proves (Theorem 6.1) that these counts are a Nash equilibrium under
//! Definition 6.1; [`crate::economics::check_equilibrium`] re-verifies this
//! at runtime in tests.
//!
//! Replica placement minimizes wasted disk: packing replicas onto the
//! fewest nodes such that no node holds two replicas of the same fragment
//! is class-constrained bin packing (NP-hard), approximated by Best First
//! Fit Decreasing (approximation factor 2). The number of bins BFFD opens
//! *is* the provisioning decision.

pub mod hetero;
pub mod market;

use crate::economics::{replica_profit, EconomicConfig, FragmentEconomics, NodeSpec};
use crate::fragment::{FragmentRange, FragmentStats};
use crate::ids::{FragmentId, NodeId};

/// `Ideal(f)` (paper Eq. 9): the equilibrium replica count for a fragment.
/// Zero means no replica of this fragment is profitable even alone.
pub fn ideal_replicas(window: usize, value: f64, size: u64, spec: &NodeSpec) -> u64 {
    assert!(size > 0, "fragment of zero size");
    let ideal = (window as f64 * value * spec.disk as f64) / (size as f64 * spec.cost);
    if !ideal.is_finite() || ideal <= 0.0 {
        0
    } else {
        crate::num::saturating_u64(ideal.floor())
    }
}

/// Replication policy parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationPolicy {
    /// Scan window size `|W|` the fragment values were estimated over.
    pub window: usize,
    /// Node cost/capacity (all nodes identical, as in the paper).
    pub spec: NodeSpec,
    /// Safety cap on replicas per fragment. Eq. 9 is unbounded in fragment
    /// value; the cap keeps a mispriced workload from provisioning an
    /// absurd cluster. Forced to at least 1.
    pub max_replicas_per_fragment: u64,
}

impl ReplicationPolicy {
    /// A policy with the paper's behaviour (no practical cap).
    pub fn new(window: usize, spec: NodeSpec) -> Self {
        ReplicationPolicy {
            window,
            spec,
            max_replicas_per_fragment: u64::MAX,
        }
    }

    /// Applies a replica cap.
    pub fn with_max_replicas(mut self, cap: u64) -> Self {
        self.max_replicas_per_fragment = cap.max(1);
        self
    }
}

/// The replica-count decision for one fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationDecision {
    /// The fragment.
    pub id: FragmentId,
    /// Its tuple range.
    pub range: FragmentRange,
    /// Its windowed value `Value(f)`.
    pub value: f64,
    /// Replicas to create: `max(Ideal(f), 1)`.
    pub replicas: u64,
    /// True when `Ideal(f) = 0` and the single replica exists only so the
    /// data stays available — such replicas are *not* economically
    /// profitable and are excluded from equilibrium checking.
    pub forced: bool,
}

/// Computes replica counts for every fragment (Eq. 9, floored at one copy so
/// no data is lost).
pub fn decide_replicas(
    stats: &[FragmentStats],
    policy: &ReplicationPolicy,
) -> Vec<ReplicationDecision> {
    let decisions: Vec<ReplicationDecision> = stats
        .iter()
        .map(|s| {
            let ideal = ideal_replicas(policy.window, s.value, s.range.size(), &policy.spec);
            let capped = ideal.min(policy.max_replicas_per_fragment);
            ReplicationDecision {
                id: s.id,
                range: s.range,
                value: s.value,
                replicas: capped.max(1),
                forced: ideal == 0,
            }
        })
        .collect();
    // Aggregate equilibrium economics: total surplus of the economically
    // motivated (non-forced) replicas. At the exact Eq. 9 counts this is the
    // residual profit the floor leaves on the table — a drift indicator.
    let mut surplus = 0.0f64;
    let mut total_replicas = 0u64;
    let mut forced = 0u64;
    for d in &decisions {
        crate::obs_hooks::record("replication.replicas_per_fragment", d.replicas);
        total_replicas = total_replicas.saturating_add(d.replicas);
        if d.forced {
            forced += 1;
        } else {
            surplus += d.replicas as f64
                * replica_profit(
                    policy.window,
                    d.value,
                    d.replicas,
                    d.range.size(),
                    &policy.spec,
                );
        }
    }
    crate::obs_hooks::counter_add("replication.decisions", decisions.len() as u64);
    crate::obs_hooks::counter_add("replication.replicas_total", total_replicas);
    crate::obs_hooks::counter_add("replication.forced_singles", forced);
    crate::obs_hooks::gauge_set("replication.nash_surplus", surplus);
    decisions
}

/// Why packing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// A single fragment is larger than a node's disk, so no assignment
    /// exists. Carries the offending fragment and its size.
    FragmentExceedsDisk {
        /// The oversized fragment.
        fragment: FragmentId,
        /// Its size in tuples.
        size: u64,
        /// The node disk capacity in tuples.
        disk: u64,
    },
    /// The fragment statistics are not densely id-ordered (`stats[i].id`
    /// must equal `i`, as [`crate::fragment::fragment_stats`] produces).
    /// Dense ids are what let every scheme lookup be a flat `Vec` index
    /// instead of a hash probe.
    NonDenseFragmentIds {
        /// Position in the stats slice where density first breaks.
        index: usize,
        /// The id found at that position.
        found: FragmentId,
    },
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::FragmentExceedsDisk {
                fragment,
                size,
                disk,
            } => write!(
                f,
                "fragment {fragment} ({size} tuples) exceeds node disk ({disk} tuples)"
            ),
            PackError::NonDenseFragmentIds { index, found } => write!(
                f,
                "fragment stats are not densely id-ordered: expected f{index} at position {index}, found {found}"
            ),
        }
    }
}

impl std::error::Error for PackError {}

/// A complete cluster configuration: replica counts plus their assignment
/// onto the provisioned nodes. Node ids are indices into `nodes`.
///
/// Fragment ids are **dense**: construction rejects stats whose ids are not
/// exactly `0..n` in order (the shape [`crate::fragment::fragment_stats`]
/// produces), so a fragment id doubles as the index into `decisions` and
/// `hosts`. Every per-query lookup ([`hosts`](ClusterScheme::hosts),
/// [`range_of`](ClusterScheme::range_of),
/// [`node_used`](ClusterScheme::node_used)) is therefore a flat
/// bounds-checked `Vec` index — no hash probe, no iteration-order hazard.
#[derive(Debug, Clone)]
pub struct ClusterScheme {
    /// Policy the scheme was built under.
    pub policy: ReplicationPolicy,
    /// Per-fragment decisions; `decisions[i].id == FragmentId(i)`.
    pub decisions: Vec<ReplicationDecision>,
    /// For each provisioned node, the fragments it hosts.
    pub nodes: Vec<Vec<FragmentId>>,
    /// Per fragment (dense id index), its hosting nodes in node order.
    hosts: Vec<Vec<NodeId>>,
    /// Per node, total tuples stored (same order as `nodes`).
    used: Vec<u64>,
}

impl ClusterScheme {
    /// Builds the full scheme: Eq. 9 replica counts packed by BFFD.
    ///
    /// # Errors
    /// [`PackError::NonDenseFragmentIds`] if `stats[i].id != i` for any
    /// position, [`PackError::FragmentExceedsDisk`] if a fragment cannot
    /// fit on any node.
    pub fn build(
        stats: &[FragmentStats],
        policy: ReplicationPolicy,
    ) -> Result<ClusterScheme, PackError> {
        for (i, s) in stats.iter().enumerate() {
            if s.id.index() != i {
                return Err(PackError::NonDenseFragmentIds {
                    index: i,
                    found: s.id,
                });
            }
        }
        let decisions = decide_replicas(stats, &policy);
        let nodes = pack_bffd(&decisions, policy.spec.disk)?;
        let mut hosts: Vec<Vec<NodeId>> = vec![Vec::new(); decisions.len()];
        let mut used = vec![0u64; nodes.len()];
        for (n, frags) in nodes.iter().enumerate() {
            for &f in frags {
                // Packing only places fragments it was handed, and density
                // was checked above, so `f` always indexes in range.
                hosts[f.index()].push(NodeId(n as u64));
                used[n] = used[n].saturating_add(decisions[f.index()].range.size());
            }
        }
        Ok(ClusterScheme {
            policy,
            decisions,
            nodes,
            hosts,
            used,
        })
    }

    /// Number of provisioned nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes hosting a replica of `fragment` (empty if unknown). O(1):
    /// dense ids index straight into the per-fragment host lists.
    pub fn hosts(&self, fragment: FragmentId) -> &[NodeId] {
        self.hosts.get(fragment.index()).map_or(&[], Vec::as_slice)
    }

    /// The tuple range of `fragment`, if it exists in the scheme. O(1):
    /// dense ids index straight into `decisions`.
    pub fn range_of(&self, fragment: FragmentId) -> Option<FragmentRange> {
        self.decisions.get(fragment.index()).map(|d| d.range)
    }

    /// The full decision for `fragment`, if it exists in the scheme.
    pub fn decision_of(&self, fragment: FragmentId) -> Option<&ReplicationDecision> {
        self.decisions.get(fragment.index())
    }

    /// Tuples stored on node `n`. O(1): totals are precomputed at build.
    pub fn node_used(&self, n: NodeId) -> u64 {
        self.used[n.index()]
    }

    /// The economically meaningful part of the scheme as an
    /// [`EconomicConfig`], for equilibrium verification. Forced single
    /// replicas (Ideal = 0) are excluded: they exist for availability, not
    /// profit, and the paper's theorem does not cover them.
    ///
    /// Output order is deterministic: `fragments` follows `decisions` (id
    /// order) rather than any hash-map iteration order, so two identical
    /// schemes serialize byte-identically.
    pub fn economic_config(&self) -> EconomicConfig {
        let keep: std::collections::HashSet<FragmentId> = self
            .decisions
            .iter()
            .filter(|d| !d.forced)
            .map(|d| d.id)
            .collect();
        EconomicConfig {
            window: self.policy.window,
            spec: self.policy.spec,
            fragments: self
                .decisions
                .iter()
                .filter(|d| !d.forced)
                .map(|d| FragmentEconomics {
                    id: d.id,
                    size: d.range.size(),
                    value: d.value,
                    replicas: d.replicas,
                })
                .collect(),
            assignment: self
                .nodes
                .iter()
                .enumerate()
                .map(|(n, frags)| {
                    (
                        NodeId(n as u64),
                        frags.iter().copied().filter(|f| keep.contains(f)).collect(),
                    )
                })
                .collect(),
        }
    }
}

/// Best First Fit Decreasing class-constrained bin packing (paper §6,
/// following Xavier & Miyazawa): fragments in decreasing replica count;
/// each replica goes to the first node with room that does not already hold
/// that fragment; a new node is opened when none fits.
///
/// Returns the per-node fragment lists.
pub fn pack_bffd(
    decisions: &[ReplicationDecision],
    disk: u64,
) -> Result<Vec<Vec<FragmentId>>, PackError> {
    let watch = crate::obs_hooks::stopwatch();
    let mut order: Vec<&ReplicationDecision> = decisions.iter().collect();
    // Decreasing replica count, then a deterministic hash of the fragment's
    // *position*. The hash order matters twice over: (1) physically
    // adjacent fragments are exactly the ones range scans read *together*,
    // and placing equal-replica fragments in physical (or size) order would
    // first-fit whole runs of them onto the same node, serializing every
    // scan that crosses the run; (2) hashing the tuple range — rather than
    // the (positional, hence unstable) fragment id — keeps the placement
    // order, and so the packing, nearly identical across reconfigurations,
    // which is what lets the Hungarian transition planner find cheap
    // matchings. (The paper specifies only the replica-count ordering.)
    let scatter = |d: &ReplicationDecision| {
        (d.range.start ^ d.range.end.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    };
    order.sort_by(|a, b| {
        b.replicas
            .cmp(&a.replicas)
            .then(scatter(a).cmp(&scatter(b)))
            .then(a.id.cmp(&b.id))
    });

    let mut nodes: Vec<Vec<FragmentId>> = Vec::new();
    let mut free: Vec<u64> = Vec::new();

    for d in order {
        let size = d.range.size();
        if size > disk {
            return Err(PackError::FragmentExceedsDisk {
                fragment: d.id,
                size,
                disk,
            });
        }
        for _ in 0..d.replicas {
            let slot = nodes
                .iter()
                .enumerate()
                .position(|(i, frags)| free[i] >= size && !frags.contains(&d.id));
            match slot {
                Some(i) => {
                    nodes[i].push(d.id);
                    free[i] -= size;
                }
                None => {
                    nodes.push(vec![d.id]);
                    free.push(disk - size);
                }
            }
        }
    }
    watch.record("packing.bffd_ns");
    crate::obs_hooks::counter_add(
        "packing.placements",
        nodes.iter().map(|f| f.len() as u64).sum(),
    );
    crate::obs_hooks::gauge_set("packing.nodes", nodes.len() as f64);
    for used in free.iter().map(|f| disk - f) {
        crate::obs_hooks::record("packing.node_fill_tuples", used);
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::economics::check_equilibrium;

    fn spec() -> NodeSpec {
        NodeSpec::new(100.0, 1_000)
    }

    fn stats(id: u64, start: u64, end: u64, value: f64) -> FragmentStats {
        FragmentStats {
            id: FragmentId(id),
            range: FragmentRange::new(start, end),
            value,
            error: 0.0,
        }
    }

    #[test]
    fn ideal_matches_eq9() {
        // |W|=50, Value=1.0, Disk=1000, Size=250, Cost=100:
        // 50·1·1000 / (250·100) = 2.
        assert_eq!(ideal_replicas(50, 1.0, 250, &spec()), 2);
        // Worthless fragment: zero.
        assert_eq!(ideal_replicas(50, 0.0, 250, &spec()), 0);
        // Doubling disk doubles replicas (ceteris paribus).
        let big = NodeSpec::new(100.0, 2_000);
        assert_eq!(ideal_replicas(50, 1.0, 250, &big), 4);
        // Doubling size halves replicas.
        assert_eq!(ideal_replicas(50, 1.0, 500, &spec()), 1);
    }

    #[test]
    fn ideal_monotonicity_paper_claims() {
        let s = spec();
        // More scans per unit time => more replicas.
        assert!(ideal_replicas(100, 1.0, 250, &s) >= ideal_replicas(50, 1.0, 250, &s));
        // Higher value => more replicas.
        assert!(ideal_replicas(50, 2.0, 250, &s) >= ideal_replicas(50, 1.0, 250, &s));
        // Higher cost => fewer replicas.
        let pricey = NodeSpec::new(200.0, 1_000);
        assert!(ideal_replicas(50, 1.0, 250, &pricey) <= ideal_replicas(50, 1.0, 250, &s));
    }

    #[test]
    fn decisions_floor_at_one_and_mark_forced() {
        let policy = ReplicationPolicy::new(50, spec());
        let d = decide_replicas(&[stats(0, 0, 250, 1.0), stats(1, 250, 500, 0.0)], &policy);
        assert_eq!(d[0].replicas, 2);
        assert!(!d[0].forced);
        assert_eq!(d[1].replicas, 1);
        assert!(d[1].forced);
    }

    #[test]
    fn replica_cap_applies() {
        let policy = ReplicationPolicy::new(50, spec()).with_max_replicas(3);
        let d = decide_replicas(&[stats(0, 0, 10, 1_000.0)], &policy);
        assert_eq!(d[0].replicas, 3);
        assert!(!d[0].forced);
    }

    #[test]
    fn bffd_no_duplicates_and_capacity_respected() {
        let policy = ReplicationPolicy::new(50, spec());
        let decisions = decide_replicas(
            &[
                stats(0, 0, 400, 4.0),
                stats(1, 400, 700, 2.0),
                stats(2, 700, 1000, 0.5),
            ],
            &policy,
        );
        let nodes = pack_bffd(&decisions, 1_000).unwrap();
        for frags in &nodes {
            let mut seen = std::collections::HashSet::new();
            let mut used = 0;
            for f in frags {
                assert!(seen.insert(*f), "duplicate replica on a node");
                used += decisions.iter().find(|d| d.id == *f).unwrap().range.size();
            }
            assert!(used <= 1_000, "node over capacity: {used}");
        }
        // Every replica placed.
        let placed: u64 = nodes.iter().map(|f| f.len() as u64).sum();
        let wanted: u64 = decisions.iter().map(|d| d.replicas).sum();
        assert_eq!(placed, wanted);
    }

    #[test]
    fn bffd_highest_replica_count_first_opens_enough_nodes() {
        // One fragment with 5 replicas forces >= 5 nodes even though each is
        // tiny (class constraint: distinct nodes per replica).
        let d = vec![ReplicationDecision {
            id: FragmentId(0),
            range: FragmentRange::new(0, 10),
            value: 1.0,
            replicas: 5,
            forced: false,
        }];
        let nodes = pack_bffd(&d, 1_000).unwrap();
        assert_eq!(nodes.len(), 5);
    }

    #[test]
    fn bffd_oversized_fragment_errors() {
        let d = vec![ReplicationDecision {
            id: FragmentId(0),
            range: FragmentRange::new(0, 2_000),
            value: 1.0,
            replicas: 1,
            forced: false,
        }];
        let err = pack_bffd(&d, 1_000).unwrap_err();
        assert!(matches!(err, PackError::FragmentExceedsDisk { .. }));
        assert!(err.to_string().contains("exceeds node disk"));
    }

    #[test]
    fn scheme_is_nash_equilibrium() {
        let policy = ReplicationPolicy::new(50, spec());
        let scheme = ClusterScheme::build(
            &[
                stats(0, 0, 250, 1.0),    // ideal 2
                stats(1, 250, 500, 2.5),  // ideal 5
                stats(2, 500, 1000, 0.2), // ideal 0 -> forced
            ],
            policy,
        )
        .unwrap();
        assert_eq!(check_equilibrium(&scheme.economic_config()), Ok(()));
        // Forced fragment still hosted exactly once.
        assert_eq!(scheme.hosts(FragmentId(2)).len(), 1);
    }

    #[test]
    fn indexed_lookups_match_linear_scan_reference() {
        // The O(1) index must agree with the definitional linear scans it
        // replaced, across a scheme big enough to exercise many nodes.
        let policy = ReplicationPolicy::new(50, spec());
        let st: Vec<FragmentStats> = (0..40)
            .map(|i| {
                stats(
                    i,
                    i * 25,
                    (i + 1) * 25,
                    f64::from(u32::try_from(i % 7).unwrap()) * 0.6,
                )
            })
            .collect();
        let scheme = ClusterScheme::build(&st, policy).unwrap();
        for probe in 0..45 {
            let f = FragmentId(probe);
            let linear = scheme.decisions.iter().find(|d| d.id == f);
            assert_eq!(scheme.range_of(f), linear.map(|d| d.range));
            assert_eq!(scheme.decision_of(f).map(|d| d.id), linear.map(|d| d.id));
        }
        for n in 0..scheme.num_nodes() {
            let node = NodeId(n as u64);
            let linear: u64 = scheme.nodes[n]
                .iter()
                .map(|f| {
                    scheme
                        .decisions
                        .iter()
                        .find(|d| d.id == *f)
                        .map_or(0, |d| d.range.size())
                })
                .sum();
            assert_eq!(scheme.node_used(node), linear, "node {node}");
        }
    }

    #[test]
    fn economic_config_is_deterministic_and_id_ordered() {
        // Regression: `economic_config` used to collect the non-forced
        // decisions into a HashMap and emit `fragments` in hash-iteration
        // order, so two identical schemes could serialize differently.
        let policy = ReplicationPolicy::new(50, spec());
        let st: Vec<FragmentStats> = (0..24)
            .map(|i| {
                stats(
                    i,
                    i * 40,
                    (i + 1) * 40,
                    if i % 5 == 0 {
                        0.0 // forced singles interleaved with economic ones
                    } else {
                        1.0 + f64::from(u32::try_from(i % 3).unwrap())
                    },
                )
            })
            .collect();
        // Rebuild from scratch each round: every build used to mint a fresh
        // (randomly seeded) HashMap, which is where the order instability
        // came from — repeated calls on one scheme would not catch it.
        let serialize = || {
            let scheme = ClusterScheme::build(&st, policy).unwrap();
            format!("{:?}", scheme.economic_config())
        };
        let first = serialize();
        for _ in 0..10 {
            assert_eq!(serialize(), first);
        }
        let cfg = ClusterScheme::build(&st, policy).unwrap().economic_config();
        for w in cfg.fragments.windows(2) {
            assert!(w[0].id < w[1].id, "fragments out of id order");
        }
        assert!(cfg.fragments.iter().all(|f| f.value > 0.0));
    }

    #[test]
    fn non_dense_fragment_ids_rejected() {
        let policy = ReplicationPolicy::new(50, spec());
        // Gap: first id is 1, not 0.
        let err = ClusterScheme::build(&[stats(1, 0, 250, 1.0)], policy).unwrap_err();
        assert!(matches!(
            err,
            PackError::NonDenseFragmentIds { index: 0, .. }
        ));
        assert!(err.to_string().contains("densely id-ordered"));
        // Dense set but out of positional order is rejected too: the id must
        // *be* the index, not merely appear somewhere.
        let err = ClusterScheme::build(&[stats(1, 250, 500, 1.0), stats(0, 0, 250, 1.0)], policy)
            .unwrap_err();
        assert!(matches!(
            err,
            PackError::NonDenseFragmentIds { index: 0, .. }
        ));
    }

    #[test]
    fn scheme_lookup_helpers() {
        let policy = ReplicationPolicy::new(50, spec());
        let scheme =
            ClusterScheme::build(&[stats(0, 0, 250, 1.0), stats(1, 250, 500, 1.0)], policy)
                .unwrap();
        assert_eq!(
            scheme.range_of(FragmentId(0)),
            Some(FragmentRange::new(0, 250))
        );
        assert_eq!(scheme.range_of(FragmentId(9)), None);
        let total_hosted: usize = (0..scheme.num_nodes()).map(|n| scheme.nodes[n].len()).sum();
        let from_hosts: usize = scheme
            .decisions
            .iter()
            .map(|d| scheme.hosts(d.id).len())
            .sum();
        assert_eq!(total_hosted, from_hosts);
        for n in 0..scheme.num_nodes() {
            assert!(scheme.node_used(NodeId(n as u64)) <= 1_000);
        }
    }
}
