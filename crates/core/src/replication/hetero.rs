//! Heterogeneous nodes (paper §6: "For simplicity, we assume that the cost
//! and disk space of all nodes are equal, but our techniques can be easily
//! extended to work with non-uniform costs and disk sizes"). This module is
//! that extension, carried out.
//!
//! With several node classes (say, cheap HDD boxes and pricey NVMe boxes),
//! a replica's storage cost depends on where it lives: class `c` charges
//! `Size(f) · Costᶜ/Diskᶜ` per period — its **density** `Costᶜ/Diskᶜ` is
//! what matters. Income is still `|W| · Value(f) / r`, host-independent.
//!
//! In equilibrium, replicas occupy the *cheapest-density* classes first: a
//! replica on an expensive class while a cheaper slot exists is not stable
//! (the holder — or an entrant of the cheaper class — can profitably
//! undercut). So the equilibrium count follows from a greedy sweep: keep
//! adding replicas to the cheapest class with free capacity while the *new*
//! replica (which, by the sweep order, has the highest density of any
//! holder) is still profitable at the diluted income. Uniform classes
//! recover Eq. 9 exactly.

use crate::economics::NodeSpec;
use crate::fragment::FragmentStats;
use crate::ids::{FragmentId, NodeId};

/// One class of nodes available to rent.
#[derive(Debug, Clone, Copy)]
pub struct NodeClass {
    /// Cost and disk of every node in the class.
    pub spec: NodeSpec,
    /// How many nodes of this class exist (`None` = unbounded, as in the
    /// paper's elastic market).
    pub available: Option<u32>,
}

impl NodeClass {
    /// An unbounded class.
    pub fn unbounded(spec: NodeSpec) -> Self {
        NodeClass {
            spec,
            available: None,
        }
    }

    /// Storage-cost density `Cost/Disk` (per tuple per period).
    pub fn density(&self) -> f64 {
        self.spec.cost / self.spec.disk as f64
    }

    /// Replica capacity of the class for a fragment of `size` tuples: each
    /// node holds at most one replica of a fragment, so a bounded class
    /// offers at most `available` replica slots (and none if the fragment
    /// cannot fit on a node at all).
    fn replica_slots(&self, size: u64) -> u64 {
        if size > self.spec.disk {
            return 0;
        }
        self.available.map_or(u64::MAX, u64::from)
    }
}

/// A named node-class mix, scaled from a reference [`NodeSpec`].
///
/// The scenario matrix (and any other caller wanting "the same cluster,
/// different hardware market") picks a preset and applies it to the spec its
/// autotuner produced for the uniform case. Multipliers are relative to that
/// reference, so presets compose with workloads of any size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixPreset {
    /// One unbounded class at the reference spec (the paper's §6 baseline).
    Uniform,
    /// Unbounded budget boxes: half the rent, double the disk (density ×¼).
    BudgetHdd,
    /// Unbounded premium boxes: double the rent, three-quarters the disk.
    PremiumNvme,
    /// A bounded premium tier over an unbounded budget tier: the elastic
    /// margin is the budget class, but hot replicas can claim the handful of
    /// fast nodes.
    MixedTier,
}

impl MixPreset {
    /// All presets, in a stable order (the scenario matrix sweeps these).
    pub const ALL: [MixPreset; 4] = [
        MixPreset::Uniform,
        MixPreset::BudgetHdd,
        MixPreset::PremiumNvme,
        MixPreset::MixedTier,
    ];

    /// Stable machine-readable name (used in artifacts and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            MixPreset::Uniform => "uniform",
            MixPreset::BudgetHdd => "budget-hdd",
            MixPreset::PremiumNvme => "premium-nvme",
            MixPreset::MixedTier => "mixed-tier",
        }
    }

    /// Parses a preset from its [`name`](Self::name).
    pub fn parse(s: &str) -> Option<MixPreset> {
        MixPreset::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The concrete class list, scaled from `reference`.
    ///
    /// Every preset contains at least one unbounded class, so elastic
    /// provisioning never dead-ends.
    pub fn classes(self, reference: &NodeSpec) -> Vec<NodeClass> {
        let scaled = |cost_mult: f64, disk_mult: f64| {
            NodeSpec::new(
                reference.cost * cost_mult,
                crate::num::saturating_u64(reference.disk as f64 * disk_mult).max(1),
            )
        };
        match self {
            MixPreset::Uniform => vec![NodeClass::unbounded(*reference)],
            MixPreset::BudgetHdd => vec![NodeClass::unbounded(scaled(0.5, 2.0))],
            MixPreset::PremiumNvme => vec![NodeClass::unbounded(scaled(2.0, 0.75))],
            MixPreset::MixedTier => vec![
                NodeClass {
                    spec: scaled(2.0, 0.75),
                    available: Some(4),
                },
                NodeClass::unbounded(scaled(0.5, 2.0)),
            ],
        }
    }

    /// The spec of the preset's *marginal* class — the cheapest-density
    /// unbounded class, i.e. the hardware elastic growth actually rents.
    /// A homogeneous cluster simulation consumes a mix through this: run at
    /// the marginal spec, since in equilibrium the unbounded cheap class
    /// absorbs all marginal replicas (bounded classes only shift a constant
    /// number of slots).
    pub fn effective_spec(self, reference: &NodeSpec) -> NodeSpec {
        let unbounded: Vec<NodeClass> = self
            .classes(reference)
            .into_iter()
            .filter(|c| c.available.is_none())
            .collect();
        // Every preset has ≥ 1 unbounded class by construction; fall back to
        // the reference rather than panic if that invariant ever breaks.
        unbounded
            .iter()
            .min_by(|a, b| a.density().total_cmp(&b.density()))
            .map_or(*reference, |c| c.spec)
    }
}

/// The equilibrium replica counts of one fragment across node classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeteroDecision {
    /// The fragment.
    pub id: FragmentId,
    /// Replicas per class (same order as the input classes).
    pub per_class: Vec<u64>,
}

impl HeteroDecision {
    /// Total replicas across classes.
    pub fn total(&self) -> u64 {
        self.per_class.iter().sum()
    }
}

/// Computes the heterogeneous `Ideal(f)`: how many replicas, and on which
/// classes, a free market would hold.
///
/// Returns one count per class (input order preserved). A fragment worth
/// less than the cheapest feasible storage gets zero replicas — callers
/// wanting the availability floor apply it per class afterwards, as the
/// homogeneous pipeline does.
///
/// # Panics
/// Panics if `classes` is empty or `size` is zero.
pub fn ideal_replicas_hetero(
    window: usize,
    value: f64,
    size: u64,
    classes: &[NodeClass],
) -> Vec<u64> {
    assert!(!classes.is_empty(), "need at least one node class");
    assert!(size > 0, "fragment of zero size");

    // Sweep classes cheapest-density first.
    let mut order: Vec<usize> = (0..classes.len()).collect();
    order.sort_by(|&a, &b| {
        classes[a]
            .density()
            .total_cmp(&classes[b].density())
            .then(a.cmp(&b))
    });

    let mut counts = vec![0u64; classes.len()];
    let mut total = 0u64;
    for &c in &order {
        let slots = classes[c].replica_slots(size);
        while counts[c] < slots {
            // The candidate replica is the most expensive holder so far; if
            // it profits at the diluted income, every replica profits.
            let income = window as f64 * value / (total + 1) as f64;
            let cost = size as f64 * classes[c].density();
            if income < cost {
                return counts;
            }
            counts[c] += 1;
            total = total.saturating_add(1);
            if total == u64::MAX {
                return counts;
            }
        }
    }
    counts
}

/// Per-fragment decisions for a whole scheme.
pub fn decide_replicas_hetero(
    stats: &[FragmentStats],
    window: usize,
    classes: &[NodeClass],
) -> Vec<HeteroDecision> {
    stats
        .iter()
        .map(|s| HeteroDecision {
            id: s.id,
            per_class: ideal_replicas_hetero(window, s.value, s.range.size(), classes),
        })
        .collect()
}

/// A packed heterogeneous cluster: nodes with their class and contents.
#[derive(Debug, Clone)]
pub struct HeteroNode {
    /// The node's id (dense across the whole cluster).
    pub id: NodeId,
    /// Index into the class list it was provisioned from.
    pub class: usize,
    /// Fragments hosted.
    pub fragments: Vec<FragmentId>,
}

/// Why heterogeneous packing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeteroPackError {
    /// A class ran out of nodes for the replicas assigned to it.
    ClassExhausted {
        /// The exhausted class.
        class: usize,
    },
    /// A decision references a fragment absent from the stats.
    UnknownFragment {
        /// The unknown fragment.
        fragment: FragmentId,
    },
}

impl std::fmt::Display for HeteroPackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeteroPackError::ClassExhausted { class } => {
                write!(f, "node class {class} has no capacity left")
            }
            HeteroPackError::UnknownFragment { fragment } => {
                write!(f, "replica decision for unknown fragment {fragment}")
            }
        }
    }
}

impl std::error::Error for HeteroPackError {}

/// BFFD within each class: replicas were already assigned to classes by the
/// economics; packing places each class's replicas onto the fewest nodes of
/// that class (first-fit, highest replica counts first, hash-scattered ties
/// as in [`pack_bffd`](super::pack_bffd)).
pub fn pack_bffd_hetero(
    stats: &[FragmentStats],
    decisions: &[HeteroDecision],
    classes: &[NodeClass],
) -> Result<Vec<HeteroNode>, HeteroPackError> {
    let size_of = |id: FragmentId| {
        stats
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.range.size())
            .ok_or(HeteroPackError::UnknownFragment { fragment: id })
    };
    let scatter = |id: FragmentId| id.get().wrapping_mul(0x9E37_79B9_7F4A_7C15);

    let mut nodes: Vec<HeteroNode> = Vec::new();
    for (c, class) in classes.iter().enumerate() {
        // Fragments with replicas on this class, most replicas first.
        let mut order: Vec<(&HeteroDecision, u64)> = decisions
            .iter()
            .filter_map(|d| (d.per_class[c] > 0).then_some((d, d.per_class[c])))
            .collect();
        order.sort_by_key(|(d, count)| (std::cmp::Reverse(*count), scatter(d.id)));

        let mut class_nodes: Vec<(usize, u64)> = Vec::new(); // (index into nodes, free)
        for (d, count) in order {
            let size = size_of(d.id)?;
            for _ in 0..count {
                let slot = class_nodes
                    .iter()
                    .position(|&(n, free)| free >= size && !nodes[n].fragments.contains(&d.id));
                match slot {
                    Some(i) => {
                        let (n, free) = class_nodes[i];
                        nodes[n].fragments.push(d.id);
                        class_nodes[i] = (n, free - size);
                    }
                    None => {
                        if let Some(cap) = class.available {
                            let used = u32::try_from(class_nodes.len()).unwrap_or(u32::MAX);
                            if used >= cap {
                                return Err(HeteroPackError::ClassExhausted { class: c });
                            }
                        }
                        let n = nodes.len();
                        nodes.push(HeteroNode {
                            id: NodeId(n as u64),
                            class: c,
                            fragments: vec![d.id],
                        });
                        class_nodes.push((n, class.spec.disk - size));
                    }
                }
            }
        }
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentRange;
    use crate::replication::ideal_replicas;

    fn classes_cheap_pricey() -> Vec<NodeClass> {
        vec![
            // Pricey NVMe: density 0.5.
            NodeClass {
                spec: NodeSpec::new(500.0, 1_000),
                available: Some(4),
            },
            // Cheap HDD: density 0.1, bounded.
            NodeClass {
                spec: NodeSpec::new(100.0, 1_000),
                available: Some(3),
            },
        ]
    }

    #[test]
    fn uniform_classes_recover_eq9() {
        let spec = NodeSpec::new(100.0, 1_000);
        let classes = [NodeClass::unbounded(spec)];
        for &(value, size) in &[(1.0f64, 250u64), (5.0, 100), (0.0, 500), (2.5, 40)] {
            let hetero: u64 = ideal_replicas_hetero(50, value, size, &classes)
                .iter()
                .sum();
            assert_eq!(hetero, ideal_replicas(50, value, size, &spec));
        }
    }

    #[test]
    fn cheap_class_fills_first_then_spills() {
        // Value high enough for 5 replicas at density 0.1 but only 3 cheap
        // slots exist; the 4th/5th replicas must clear the pricier density.
        // income at r: 50·value/r ≥ size·density.
        let classes = classes_cheap_pricey();
        // size 100: cheap cost 10/replica, pricey 50/replica.
        // value = 6: incomes 300, 150, 100, 75, 60 → cheap supports r ≤ 30;
        // pricey needs income ≥ 50 → up to r = 6. 3 cheap + 3 pricey = 6.
        let counts = ideal_replicas_hetero(50, 6.0, 100, &classes);
        assert_eq!(counts, vec![3, 3]); // [pricey, cheap] in input order
    }

    #[test]
    fn expensive_marginal_replica_stops_the_sweep() {
        let classes = classes_cheap_pricey();
        // value = 1: incomes 50, 25, 16.7 … cheap (cost 10) supports r ≤ 5
        // but only 3 slots; pricey replica #4 would need income ≥ 50 but
        // gets 12.5 → stop at the cheap capacity.
        let counts = ideal_replicas_hetero(50, 1.0, 100, &classes);
        assert_eq!(counts, vec![0, 3]);
    }

    #[test]
    fn oversized_fragment_skips_small_class() {
        let classes = vec![
            NodeClass::unbounded(NodeSpec::new(10.0, 100)), // too small
            NodeClass::unbounded(NodeSpec::new(100.0, 10_000)),
        ];
        let counts = ideal_replicas_hetero(50, 5.0, 500, &classes);
        assert_eq!(counts[0], 0, "fragment cannot fit the small class");
        assert!(counts[1] > 0);
    }

    #[test]
    fn worthless_fragment_gets_nothing() {
        let counts = ideal_replicas_hetero(50, 0.0, 100, &classes_cheap_pricey());
        assert_eq!(counts, vec![0, 0]);
    }

    fn stats(id: u64, start: u64, end: u64, value: f64) -> FragmentStats {
        FragmentStats {
            id: FragmentId(id),
            range: FragmentRange::new(start, end),
            value,
            error: 0.0,
        }
    }

    #[test]
    fn hetero_packing_respects_class_capacity_and_disks() {
        let classes = classes_cheap_pricey();
        let st = vec![
            stats(0, 0, 100, 6.0),
            stats(1, 100, 500, 1.2),
            stats(2, 500, 900, 0.4),
        ];
        let decisions = decide_replicas_hetero(&st, 50, &classes);
        let nodes = pack_bffd_hetero(&st, &decisions, &classes).unwrap();
        // No node over its class disk; no duplicate replicas per node.
        for n in &nodes {
            let used: u64 = n
                .fragments
                .iter()
                .map(|f| st.iter().find(|s| s.id == *f).unwrap().range.size())
                .sum();
            assert!(used <= classes[n.class].spec.disk);
            let mut seen = std::collections::HashSet::new();
            assert!(n.fragments.iter().all(|f| seen.insert(*f)));
        }
        // Per-class node caps respected.
        for (c, class) in classes.iter().enumerate() {
            if let Some(cap) = class.available {
                let used = nodes.iter().filter(|n| n.class == c).count();
                assert!(used <= cap as usize);
            }
        }
        // Every decided replica is placed.
        for d in &decisions {
            let placed = nodes.iter().filter(|n| n.fragments.contains(&d.id)).count() as u64;
            assert_eq!(placed, d.total(), "fragment {}", d.id);
        }
    }

    #[test]
    fn class_exhaustion_is_reported() {
        // Force more replicas onto a bounded class than it has nodes by
        // hand-building decisions (the economics would not do this, but the
        // packer must still fail loudly).
        let classes = vec![NodeClass {
            spec: NodeSpec::new(100.0, 1_000),
            available: Some(1),
        }];
        let st = vec![stats(0, 0, 100, 1.0)];
        let decisions = vec![HeteroDecision {
            id: FragmentId(0),
            per_class: vec![2],
        }];
        let err = pack_bffd_hetero(&st, &decisions, &classes).unwrap_err();
        assert_eq!(err, HeteroPackError::ClassExhausted { class: 0 });
        assert!(err.to_string().contains("no capacity"));
    }

    #[test]
    fn mix_presets_round_trip_names_and_stay_unbounded() {
        for p in MixPreset::ALL {
            assert_eq!(MixPreset::parse(p.name()), Some(p), "{}", p.name());
            let classes = p.classes(&NodeSpec::new(100.0, 1_000));
            assert!(
                classes.iter().any(|c| c.available.is_none()),
                "{} has no unbounded class",
                p.name()
            );
        }
        assert_eq!(MixPreset::parse("warp-drive"), None);
    }

    #[test]
    fn effective_spec_is_the_cheap_unbounded_margin() {
        let reference = NodeSpec::new(100.0, 1_000);
        assert_eq!(MixPreset::Uniform.effective_spec(&reference), reference);
        // Mixed tier's margin is the budget class, not the bounded premium.
        let eff = MixPreset::MixedTier.effective_spec(&reference);
        assert_eq!(eff, NodeSpec::new(50.0, 2_000));
        // Budget halves the density twice over; premium raises it.
        let density = |s: NodeSpec| s.cost / s.disk as f64;
        assert!(density(MixPreset::BudgetHdd.effective_spec(&reference)) < density(reference));
        assert!(density(MixPreset::PremiumNvme.effective_spec(&reference)) > density(reference));
    }

    #[test]
    fn hetero_counts_monotone_in_value() {
        let classes = classes_cheap_pricey();
        let mut prev = 0;
        for v in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let total: u64 = ideal_replicas_hetero(50, v, 100, &classes).iter().sum();
            assert!(total >= prev, "value {v}: {total} < {prev}");
            prev = total;
        }
    }
}
