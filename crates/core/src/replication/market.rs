//! Market-simulation replication, Mariposa-style (paper §6 and §9).
//!
//! Mariposa reaches balanced replication by *simulating* the market: nodes
//! repeatedly make myopic best responses (add the most profitable replica,
//! drop an unprofitable one, enter when entry pays, exit when empty) until
//! nothing wants to move. The paper's §6 argues this is NashDB's key
//! advantage in reverse: "Mariposa directly simulates a marketplace,
//! creating overhead while slowly driving the system towards equilibrium.
//! NashDB computes this equilibrium directly."
//!
//! This module implements the best-response dynamic so the claim can be
//! *measured*: the `market` experiment in `nashdb-bench` compares the
//! simulation's rounds/actions against the closed form (Eq. 9), and the
//! tests prove both land on the same replica counts for every profitable
//! fragment — while the market, unlike NashDB, simply drops fragments
//! worth less than their storage (availability is not a market good).

use super::{replica_profit, ReplicationPolicy};
use crate::fragment::FragmentStats;

/// Knobs for the best-response dynamic.
#[derive(Debug, Clone, Copy)]
pub struct MarketConfig {
    /// Give up after this many rounds without convergence.
    pub max_rounds: u64,
    /// Myopic firms act one replica at a time; a round visits every node
    /// once. `actions_per_round` bounds how many deviations a single node
    /// may make per visit (Mariposa trades one fragment per bid cycle).
    pub actions_per_round: u32,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            max_rounds: 100_000,
            actions_per_round: 1,
        }
    }
}

/// What the simulated market converged to.
#[derive(Debug, Clone)]
pub struct MarketOutcome {
    /// Final replica count per input fragment (same order as the stats).
    pub replicas: Vec<u64>,
    /// Rounds until no firm wanted to deviate (or the cap).
    pub rounds: u64,
    /// Total unilateral deviations (adds + drops + entries + exits) taken.
    pub actions: u64,
    /// True iff a full round passed with no deviation.
    pub converged: bool,
    /// Fragments the market refuses to host at all (`Ideal = 0`): unlike
    /// NashDB, a pure market provides no availability floor.
    pub unhosted: Vec<usize>,
}

/// Runs myopic best-response dynamics to (approximate) equilibrium.
///
/// Firms are implicit: the state is the replica count per fragment, and in
/// each round every fragment's marginal holder considers dropping (profit
/// at the current count < 0) while every outside firm considers adding
/// (profit at count + 1 > 0). Disk capacity is respected in aggregate
/// (replicas of one fragment need distinct nodes, so counts are implicitly
/// bounded by firms, which are free to enter — as in the paper's model).
pub fn simulate_market(
    stats: &[FragmentStats],
    policy: &ReplicationPolicy,
    cfg: MarketConfig,
) -> MarketOutcome {
    let mut replicas: Vec<u64> = vec![0; stats.len()];
    let mut actions = 0u64;
    let mut rounds = 0u64;
    let mut converged = false;

    while rounds < cfg.max_rounds {
        rounds += 1;
        let mut acted = false;
        for (i, s) in stats.iter().enumerate() {
            for _ in 0..cfg.actions_per_round {
                let r = replicas[i];
                // Drop: the marginal replica loses money.
                if r > 0
                    && replica_profit(policy.window, s.value, r, s.range.size(), &policy.spec) < 0.0
                {
                    replicas[i] = r - 1;
                    actions += 1;
                    acted = true;
                    continue;
                }
                // Add/entry: one more replica would still profit.
                if r < policy.max_replicas_per_fragment
                    && replica_profit(policy.window, s.value, r + 1, s.range.size(), &policy.spec)
                        >= 0.0
                {
                    replicas[i] = r + 1;
                    actions += 1;
                    acted = true;
                    continue;
                }
                break;
            }
        }
        if !acted {
            converged = true;
            break;
        }
    }

    let unhosted = replicas
        .iter()
        .enumerate()
        .filter_map(|(i, &r)| (r == 0).then_some(i))
        .collect();
    MarketOutcome {
        replicas,
        rounds,
        actions,
        converged,
        unhosted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::economics::NodeSpec;
    use crate::fragment::FragmentRange;
    use crate::ids::FragmentId;
    use crate::replication::ideal_replicas;

    fn stats(values: &[(u64, f64)]) -> Vec<FragmentStats> {
        let mut pos = 0;
        values
            .iter()
            .enumerate()
            .map(|(i, &(size, value))| {
                let s = FragmentStats {
                    id: FragmentId(i as u64),
                    range: FragmentRange::new(pos, pos + size),
                    value,
                    error: 0.0,
                };
                pos += size;
                s
            })
            .collect()
    }

    fn policy() -> ReplicationPolicy {
        ReplicationPolicy::new(50, NodeSpec::new(100.0, 1_000)).with_max_replicas(1_000)
    }

    #[test]
    fn market_converges_to_the_closed_form() {
        let st = stats(&[(250, 1.0), (100, 5.0), (500, 0.2), (50, 0.01)]);
        let p = policy();
        let out = simulate_market(&st, &p, MarketConfig::default());
        assert!(out.converged);
        for (s, &r) in st.iter().zip(&out.replicas) {
            let ideal = ideal_replicas(p.window, s.value, s.range.size(), &p.spec);
            assert_eq!(
                r, ideal,
                "fragment {} market {} vs ideal {}",
                s.id, r, ideal
            );
        }
    }

    #[test]
    fn market_drops_unprofitable_fragments_entirely() {
        let st = stats(&[(900, 0.0001)]);
        let out = simulate_market(&st, &policy(), MarketConfig::default());
        assert!(out.converged);
        assert_eq!(out.replicas[0], 0);
        assert_eq!(out.unhosted, vec![0]);
    }

    #[test]
    fn rounds_scale_with_the_largest_count() {
        // One replica per fragment per round: reaching Ideal = k takes ~k
        // rounds — the "slowly driving towards equilibrium" the paper
        // criticizes. NashDB's closed form is one division.
        let st = stats(&[(10, 50.0)]);
        let p = policy();
        let ideal = ideal_replicas(p.window, 50.0, 10, &p.spec);
        assert!(ideal > 100, "test wants a hot fragment, ideal {ideal}");
        let out = simulate_market(&st, &p, MarketConfig::default());
        assert!(out.converged);
        assert_eq!(out.replicas[0], ideal.min(1_000));
        assert!(
            out.rounds >= ideal.min(1_000),
            "rounds {} < ideal {}",
            out.rounds,
            ideal
        );
    }

    #[test]
    fn round_cap_reports_non_convergence() {
        let st = stats(&[(10, 50.0)]);
        let out = simulate_market(
            &st,
            &policy(),
            MarketConfig {
                max_rounds: 3,
                actions_per_round: 1,
            },
        );
        assert!(!out.converged);
        assert_eq!(out.rounds, 3);
        assert_eq!(out.replicas[0], 3);
    }

    #[test]
    fn batched_actions_converge_faster_to_the_same_point() {
        let st = stats(&[(10, 50.0), (300, 0.8)]);
        let p = policy();
        let slow = simulate_market(&st, &p, MarketConfig::default());
        let fast = simulate_market(
            &st,
            &p,
            MarketConfig {
                max_rounds: 100_000,
                actions_per_round: 64,
            },
        );
        assert!(slow.converged && fast.converged);
        assert_eq!(slow.replicas, fast.replicas);
        assert!(fast.rounds <= slow.rounds);
    }
}
