//! The Kuhn–Munkres (Hungarian) algorithm for minimum-weight perfect
//! bipartite matching, `O(n³)` via shortest augmenting paths with
//! potentials.
//!
//! The paper uses an off-the-shelf implementation (JGraphT); we implement it
//! from scratch and verify against brute-force permutation search in tests.

/// Why the Hungarian solver rejected its input matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HungarianError {
    /// The cost matrix has no rows.
    Empty,
    /// One row's length disagrees with the row count.
    NotSquare {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// The matrix's row count (the required length).
        n: usize,
    },
}

impl std::fmt::Display for HungarianError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            HungarianError::Empty => write!(f, "empty cost matrix"),
            HungarianError::NotSquare { row, len, n } => {
                write!(
                    f,
                    "cost matrix is not square: row {row} has {len} entries, expected {n}"
                )
            }
        }
    }
}

impl std::error::Error for HungarianError {}

/// Solves the assignment problem for a square `n × n` cost matrix.
///
/// Returns `(assignment, total_cost)` where `assignment[row] = col`.
///
/// # Errors
/// [`HungarianError`] if the matrix is empty or not square.
pub fn hungarian(cost: &[Vec<u64>]) -> Result<(Vec<usize>, u64), HungarianError> {
    let n = cost.len();
    if n == 0 {
        return Err(HungarianError::Empty);
    }
    for (row, r) in cost.iter().enumerate() {
        if r.len() != n {
            return Err(HungarianError::NotSquare {
                row,
                len: r.len(),
                n,
            });
        }
    }
    Ok(solve_square(cost, n))
}

/// The solver proper. `cost` must be a square `n × n` matrix with `n ≥ 1`
/// — [`hungarian`] validates public inputs; [`plan_transition`]
/// (`super::plan_transition`) constructs its matrix square by design and
/// calls in directly.
pub(super) fn solve_square(cost: &[Vec<u64>], n: usize) -> (Vec<usize>, u64) {
    let watch = crate::obs_hooks::stopwatch();

    const INF: i64 = i64::MAX / 4;

    // 1-indexed arrays, the classic formulation: p[j] = row matched to
    // column j (p[0] is the row currently being inserted).
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] as i64 - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r][c])
        .sum();
    watch.record("transition.hungarian_ns");
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<u64>]) -> u64 {
        fn rec(cost: &[Vec<u64>], row: usize, used: &mut Vec<bool>, acc: u64, best: &mut u64) {
            if row == cost.len() {
                *best = (*best).min(acc);
                return;
            }
            for col in 0..cost.len() {
                if !used[col] {
                    used[col] = true;
                    rec(cost, row + 1, used, acc + cost[row][col], best);
                    used[col] = false;
                }
            }
        }
        let mut best = u64::MAX;
        rec(cost, 0, &mut vec![false; cost.len()], 0, &mut best);
        best
    }

    fn assert_valid_assignment(cost: &[Vec<u64>], assignment: &[usize], total: u64) {
        let n = cost.len();
        let mut seen = vec![false; n];
        let mut sum = 0;
        for (r, &c) in assignment.iter().enumerate() {
            assert!(!seen[c], "column {c} assigned twice");
            seen[c] = true;
            sum += cost[r][c];
        }
        assert_eq!(sum, total, "reported total does not match assignment");
    }

    #[test]
    fn trivial_one_by_one() {
        let (a, t) = hungarian(&[vec![7]]).unwrap();
        assert_eq!(a, vec![0]);
        assert_eq!(t, 7);
    }

    #[test]
    fn classic_three_by_three() {
        let cost = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        let (a, t) = hungarian(&cost).unwrap();
        assert_valid_assignment(&cost, &a, t);
        assert_eq!(t, 5); // 1 + 2 + 2
    }

    #[test]
    fn identity_preferred_on_diagonal_zeros() {
        let cost = vec![vec![0, 9, 9], vec![9, 0, 9], vec![9, 9, 0]];
        let (a, t) = hungarian(&cost).unwrap();
        assert_eq!(t, 0);
        assert_eq!(a, vec![0, 1, 2]);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for trial in 0..50 {
            let n = rng.gen_range(1..=7usize);
            let cost: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0..1_000u64)).collect())
                .collect();
            let (a, t) = hungarian(&cost).unwrap();
            assert_valid_assignment(&cost, &a, t);
            let bf = brute_force(&cost);
            assert_eq!(t, bf, "trial {trial}: hungarian {t} vs brute force {bf}");
        }
    }

    #[test]
    fn handles_large_costs_without_overflow() {
        // Tuple counts can reach billions; make sure potentials don't wrap.
        let big = 3_000_000_000u64;
        let cost = vec![vec![big, big / 2], vec![big / 3, big]];
        let (a, t) = hungarian(&cost).unwrap();
        assert_valid_assignment(&cost, &a, t);
        assert_eq!(t, big / 2 + big / 3);
    }

    #[test]
    fn rejects_ragged_matrix() {
        assert_eq!(
            hungarian(&[vec![1, 2], vec![3]]),
            Err(HungarianError::NotSquare {
                row: 1,
                len: 1,
                n: 2
            })
        );
    }

    #[test]
    fn rejects_empty_matrix() {
        assert_eq!(hungarian(&[]), Err(HungarianError::Empty));
    }

    #[test]
    fn all_dummy_columns_cost_nothing() {
        // A scale-to-zero transition pads every column with decommission
        // dummies: whole columns of zeros. The matching must still be a
        // valid permutation with total zero.
        let cost = vec![vec![0, 0, 0], vec![0, 0, 0], vec![0, 0, 0]];
        let (a, t) = hungarian(&cost).unwrap();
        assert_valid_assignment(&cost, &a, t);
        assert_eq!(t, 0);
    }

    #[test]
    fn mixed_real_and_dummy_columns() {
        // Two real new nodes (columns 0-1) and one dummy (column 2, all
        // zeros): the dummy must absorb the row whose real options are
        // worst.
        let cost = vec![vec![10, 20, 0], vec![30, 10, 0], vec![90, 90, 0]];
        let (a, t) = hungarian(&cost).unwrap();
        assert_valid_assignment(&cost, &a, t);
        assert_eq!(t, 20); // rows 0->0, 1->1, 2->dummy
        assert_eq!(a[2], 2);
    }

    #[test]
    fn single_node_dominant_column() {
        // 1×1 with a huge cost: trivially matched, no overflow.
        let (a, t) = hungarian(&[vec![u64::MAX / 8]]).unwrap();
        assert_eq!(a, vec![0]);
        assert_eq!(t, u64::MAX / 8);
    }

    #[test]
    fn scales_to_hundreds_of_nodes() {
        // The paper reports standard implementations handle thousands of
        // nodes; verify ours completes a few-hundred-node instance quickly
        // and produces a no-worse-than-greedy matching.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 200;
        let cost: Vec<Vec<u64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0..1_000_000u64)).collect())
            .collect();
        let (a, t) = hungarian(&cost).unwrap();
        assert_valid_assignment(&cost, &a, t);
        // Greedy row-by-row assignment for comparison.
        let mut used = vec![false; n];
        let mut greedy = 0u64;
        for row in &cost {
            let (c, w) = (0..n)
                .filter(|&c| !used[c])
                .map(|c| (c, row[c]))
                .min_by_key(|&(_, w)| w)
                .unwrap();
            used[c] = true;
            greedy += w;
        }
        assert!(t <= greedy, "optimal {t} worse than greedy {greedy}");
    }
}
