//! Sets of tuple indices represented as sorted disjoint half-open intervals.
//!
//! Transition planning (paper §7) needs `|Data(m′) − Data(m)|`: the number
//! of tuples a node must receive that it does not already store. Fragments
//! are contiguous tuple ranges, so a node's data is a union of intervals and
//! the set difference is cheap interval algebra.

/// A set of tuple indices as sorted, disjoint, non-adjacent half-open
/// intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    /// Sorted, disjoint, non-touching `(start, end)` pairs.
    runs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from arbitrary (possibly overlapping, unsorted)
    /// intervals; empty intervals are ignored.
    pub fn from_intervals<I: IntoIterator<Item = (u64, u64)>>(intervals: I) -> Self {
        let mut runs: Vec<(u64, u64)> = intervals.into_iter().filter(|(s, e)| s < e).collect();
        runs.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(runs.len());
        for (s, e) in runs {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => {
                    *last_end = (*last_end).max(e);
                }
                _ => merged.push((s, e)),
            }
        }
        IntervalSet { runs: merged }
    }

    /// The underlying runs.
    pub fn runs(&self) -> &[(u64, u64)] {
        &self.runs
    }

    /// Total number of tuples in the set.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|(s, e)| e - s).sum()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// True iff `x` is in the set.
    pub fn contains(&self, x: u64) -> bool {
        self.runs
            .binary_search_by(|&(s, e)| {
                if x < s {
                    std::cmp::Ordering::Greater
                } else if x >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Number of tuples in `self` but not in `other` — the paper's
    /// `|Data(self) − Data(other)|`, the tuples that must be copied to turn
    /// a node holding `other` into one holding `self`.
    pub fn difference_len(&self, other: &IntervalSet) -> u64 {
        self.len() - self.intersection_len(other)
    }

    /// Number of tuples in both sets.
    pub fn intersection_len(&self, other: &IntervalSet) -> u64 {
        let mut total = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a_s, a_e) = self.runs[i];
            let (b_s, b_e) = other.runs[j];
            let lo = a_s.max(b_s);
            let hi = a_e.min(b_e);
            if lo < hi {
                total += hi - lo;
            }
            if a_e <= b_e {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    /// The union of two sets.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.runs.iter().chain(other.runs.iter()).copied())
    }
}

impl FromIterator<(u64, u64)> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_overlaps_and_adjacency() {
        let s = IntervalSet::from_intervals([(5, 10), (0, 3), (3, 6), (20, 25), (24, 30)]);
        assert_eq!(s.runs(), &[(0, 10), (20, 30)]);
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn drops_empty_intervals() {
        let s = IntervalSet::from_intervals([(5, 5), (7, 6)]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn contains_checks_runs() {
        let s = IntervalSet::from_intervals([(0, 10), (20, 30)]);
        assert!(s.contains(0));
        assert!(s.contains(9));
        assert!(!s.contains(10));
        assert!(!s.contains(15));
        assert!(s.contains(20));
        assert!(!s.contains(30));
    }

    #[test]
    fn intersection_and_difference() {
        let a = IntervalSet::from_intervals([(0, 10), (20, 30)]);
        let b = IntervalSet::from_intervals([(5, 25)]);
        assert_eq!(a.intersection_len(&b), 5 + 5);
        assert_eq!(a.difference_len(&b), 10);
        assert_eq!(b.difference_len(&a), 10);
        assert_eq!(a.difference_len(&a), 0);
    }

    #[test]
    fn difference_against_empty() {
        let a = IntervalSet::from_intervals([(0, 10)]);
        let e = IntervalSet::new();
        assert_eq!(a.difference_len(&e), 10);
        assert_eq!(e.difference_len(&a), 0);
    }

    #[test]
    fn union_covers_both() {
        let a = IntervalSet::from_intervals([(0, 10)]);
        let b = IntervalSet::from_intervals([(5, 15), (20, 22)]);
        let u = a.union(&b);
        assert_eq!(u.runs(), &[(0, 15), (20, 22)]);
    }

    /// The paper's Fig. 5 example: old node {(30,50)} -> new node {(20,35),
    /// (35,55)} requires copying 20-30 and 50-55 = 15 tuples.
    #[test]
    fn figure5_edge_weight() {
        let old = IntervalSet::from_intervals([(30, 50)]);
        let new = IntervalSet::from_intervals([(20, 35), (35, 55)]);
        assert_eq!(new.difference_len(&old), 15);
    }

    #[test]
    fn from_iterator_collects() {
        let s: IntervalSet = [(0u64, 5u64), (10, 12)].into_iter().collect();
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn empty_against_empty() {
        let e = IntervalSet::new();
        assert_eq!(e.len(), 0);
        assert_eq!(e.intersection_len(&e), 0);
        assert_eq!(e.difference_len(&e), 0);
        assert!(e.union(&e).is_empty());
        assert!(!e.contains(0));
    }

    #[test]
    fn single_tuple_runs() {
        let s = IntervalSet::from_intervals([(5, 6), (7, 8)]);
        assert_eq!(s.runs(), &[(5, 6), (7, 8)]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(5) && s.contains(7));
        assert!(!s.contains(6));
        // Touching single tuples merge into one run.
        let t = IntervalSet::from_intervals([(5, 6), (6, 7)]);
        assert_eq!(t.runs(), &[(5, 7)]);
    }

    #[test]
    fn many_runs_against_one_spanning_run() {
        let many = IntervalSet::from_intervals((0..50u64).map(|i| (i * 10, i * 10 + 5)));
        let span = IntervalSet::from_intervals([(0, 500)]);
        assert_eq!(many.len(), 250);
        assert_eq!(many.intersection_len(&span), 250);
        assert_eq!(span.difference_len(&many), 250);
        assert_eq!(many.difference_len(&span), 0);
    }

    #[test]
    fn difference_is_asymmetric_on_nested_sets() {
        let outer = IntervalSet::from_intervals([(0, 100)]);
        let inner = IntervalSet::from_intervals([(40, 60)]);
        assert_eq!(outer.difference_len(&inner), 80);
        assert_eq!(inner.difference_len(&outer), 0);
    }
}
