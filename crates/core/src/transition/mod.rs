//! Cluster transitioning (paper §7).
//!
//! When a new fragmentation/replication scheme is adopted, each node of the
//! old cluster should be "turned into" the new node it already most
//! resembles, so that as few tuples as possible cross the network. With
//! per-node data modeled as tuple [`IntervalSet`]s, the cost of turning old
//! node `m` into new node `m′` is `|Data(m′) − Data(m)|`; adding dummy
//! vertices for provisioned/decommissioned nodes makes the cost matrix
//! square, and a minimum-weight perfect matching ([`hungarian`]) is the
//! optimal transition strategy (Eq. 10).

mod hungarian;
mod interval_set;

pub use hungarian::{hungarian, HungarianError};
pub use interval_set::IntervalSet;

use crate::ids::NodeId;
use crate::replication::ClusterScheme;

/// One node's fate in a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMove {
    /// An existing node is kept and turned into a node of the new scheme,
    /// copying `transfer` tuples it does not already hold.
    Reuse {
        /// The node's id in the old scheme.
        old: NodeId,
        /// Its id in the new scheme.
        new: NodeId,
        /// Tuples to copy onto it.
        transfer: u64,
    },
    /// A fresh node is provisioned and receives its full contents.
    Provision {
        /// The node's id in the new scheme.
        new: NodeId,
        /// Tuples to copy onto it (its entire data set).
        transfer: u64,
    },
    /// An old node is released; nothing is copied.
    Decommission {
        /// The node's id in the old scheme.
        old: NodeId,
    },
}

impl NodeMove {
    /// Tuples this move copies.
    pub fn transfer(&self) -> u64 {
        match self {
            NodeMove::Reuse { transfer, .. } | NodeMove::Provision { transfer, .. } => *transfer,
            NodeMove::Decommission { .. } => 0,
        }
    }
}

/// The optimal transition between two schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionPlan {
    /// One entry per matched pair (including dummy pairings rendered as
    /// provision/decommission moves).
    pub moves: Vec<NodeMove>,
    /// Total tuples copied — the minimized objective (Eq. 10).
    pub total_transfer: u64,
}

impl TransitionPlan {
    /// Moves that reuse an old node.
    pub fn reused(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.moves.iter().filter_map(|m| match m {
            NodeMove::Reuse { old, new, transfer } => Some((*old, *new, *transfer)),
            _ => None,
        })
    }

    /// Number of freshly provisioned nodes.
    pub fn provisioned(&self) -> usize {
        self.moves
            .iter()
            .filter(|m| matches!(m, NodeMove::Provision { .. }))
            .count()
    }

    /// Number of decommissioned nodes.
    pub fn decommissioned(&self) -> usize {
        self.moves
            .iter()
            .filter(|m| matches!(m, NodeMove::Decommission { .. }))
            .count()
    }
}

/// Plans the minimum-transfer transition from the nodes of `old` to the
/// nodes of `new`, each given as the interval set of tuples it stores.
pub fn plan_transition(old: &[IntervalSet], new: &[IntervalSet]) -> TransitionPlan {
    let watch = crate::obs_hooks::stopwatch();
    let n = old.len().max(new.len());
    if n == 0 {
        crate::obs_hooks::counter_add("transition.plans", 1);
        watch.record("transition.plan_ns");
        return TransitionPlan {
            moves: Vec::new(),
            total_transfer: 0,
        };
    }

    // Rows: old nodes then dummies. Columns: new nodes then dummies. With
    // `n = max(|old|, |new|)`, dummies only ever pad the smaller side, so a
    // dummy row never meets a dummy column; the `(_, None)` arm folds that
    // impossible pairing in with decommissioning (both cost 0).
    let cost: Vec<Vec<u64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| match (old.get(i), new.get(j)) {
                    // Turning an old node into a new one: copy what's missing.
                    (Some(o), Some(nw)) => nw.difference_len(o),
                    // Provisioning a fresh node: copy everything.
                    (None, Some(nw)) => nw.len(),
                    // Decommissioning: free.
                    (_, None) => 0,
                })
                .collect()
        })
        .collect();

    // The matrix is square by construction with n ≥ 1 (checked above), so
    // the solver is called directly rather than through the validating
    // public wrapper.
    let (assignment, total_transfer) = hungarian::solve_square(&cost, n);

    let moves = assignment
        .iter()
        .enumerate()
        .filter_map(|(i, &j)| match (i < old.len(), j < new.len()) {
            (true, true) => Some(NodeMove::Reuse {
                old: NodeId(i as u64),
                new: NodeId(j as u64),
                transfer: cost[i][j],
            }),
            (false, true) => Some(NodeMove::Provision {
                new: NodeId(j as u64),
                transfer: cost[i][j],
            }),
            (true, false) => Some(NodeMove::Decommission {
                old: NodeId(i as u64),
            }),
            // Dummy-to-dummy pairs cannot occur (dummies pad one side only);
            // dropping the arm keeps the plan well-typed without a panic.
            (false, false) => None,
        })
        .collect();

    let plan = TransitionPlan {
        moves,
        total_transfer,
    };
    crate::obs_hooks::counter_add("transition.plans", 1);
    crate::obs_hooks::counter_add("transition.tuples_moved", plan.total_transfer);
    crate::obs_hooks::counter_add("transition.provisioned", plan.provisioned() as u64);
    crate::obs_hooks::counter_add("transition.decommissioned", plan.decommissioned() as u64);
    crate::obs_hooks::record("transition.matrix_dim", n as u64);
    watch.record("transition.plan_ns");
    plan
}

/// The per-node tuple interval sets of a [`ClusterScheme`], in node order —
/// the representation [`plan_transition`] consumes.
pub fn scheme_intervals(scheme: &ClusterScheme) -> Vec<IntervalSet> {
    scheme
        .nodes
        .iter()
        .map(|frags| {
            frags
                .iter()
                .filter_map(|f| scheme.range_of(*f))
                .map(|r| (r.start, r.end))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(runs: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_intervals(runs.iter().copied())
    }

    #[test]
    fn identity_transition_is_free() {
        let nodes = vec![set(&[(0, 100)]), set(&[(100, 200)])];
        let plan = plan_transition(&nodes, &nodes);
        assert_eq!(plan.total_transfer, 0);
        assert_eq!(plan.provisioned(), 0);
        assert_eq!(plan.decommissioned(), 0);
        // Each node maps to its identical twin.
        for (old, new, t) in plan.reused() {
            assert_eq!(t, 0);
            assert_eq!(nodes[old.index()], nodes[new.index()]);
        }
    }

    #[test]
    fn scale_up_provisions_new_nodes() {
        let old = vec![set(&[(0, 100)])];
        let new = vec![set(&[(0, 100)]), set(&[(100, 200)])];
        let plan = plan_transition(&old, &new);
        assert_eq!(plan.total_transfer, 100);
        assert_eq!(plan.provisioned(), 1);
        assert_eq!(plan.decommissioned(), 0);
        // The surviving node keeps its data.
        let reused: Vec<_> = plan.reused().collect();
        assert_eq!(reused, vec![(NodeId(0), NodeId(0), 0)]);
    }

    #[test]
    fn scale_down_decommissions_for_free() {
        let old = vec![set(&[(0, 100)]), set(&[(100, 200)])];
        let new = vec![set(&[(0, 100)])];
        let plan = plan_transition(&old, &new);
        assert_eq!(plan.total_transfer, 0);
        assert_eq!(plan.decommissioned(), 1);
    }

    #[test]
    fn reuses_most_similar_node() {
        // New node wants (0, 90): old node A holds (0, 80), old node B holds
        // (200, 300). Matching must pick A (transfer 10), not B (90).
        let old = vec![set(&[(200, 300)]), set(&[(0, 80)])];
        let new = vec![set(&[(0, 90)])];
        let plan = plan_transition(&old, &new);
        assert_eq!(plan.total_transfer, 10);
        let reused: Vec<_> = plan.reused().collect();
        assert_eq!(reused, vec![(NodeId(1), NodeId(0), 10)]);
    }

    /// Structure of the paper's Fig. 5: three old nodes, four new nodes
    /// after re-fragmentation; the matching reuses the similar nodes and the
    /// total is the sum of the cheap edges.
    #[test]
    fn refragmentation_transition() {
        let old = vec![
            set(&[(0, 20), (30, 50)]),
            set(&[(20, 30), (30, 50)]),
            set(&[(0, 20), (50, 75)]),
        ];
        let new = vec![set(&[(0, 20), (20, 35)]), set(&[(35, 55), (55, 75)])];
        let plan = plan_transition(&old, &new);
        // One old node is destroyed (dummy column), two are reused.
        assert_eq!(plan.decommissioned(), 1);
        assert_eq!(plan.provisioned(), 0);
        // Brute force over the 3 choices of destroyed node × 2 pairings:
        // old0 -> new0 costs |(0,35) - {0-20,30-50}| = 10; old0 -> new1 = 20
        // old1 -> new0 costs 35 - (20..35∩{20-50}=15) = 20; old1 -> new1 = 20
        // old2 -> new0 costs 35 - 20 = 15;                  old2 -> new1 = 15
        // Best: old0->new0 (10) + old2->new1 (15) = 25, destroy old1.
        assert_eq!(plan.total_transfer, 25);
        let reused: Vec<_> = plan.reused().collect();
        assert!(reused.contains(&(NodeId(0), NodeId(0), 10)));
        assert!(reused.contains(&(NodeId(2), NodeId(1), 15)));
    }

    #[test]
    fn empty_both_sides() {
        let plan = plan_transition(&[], &[]);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.total_transfer, 0);
    }

    #[test]
    fn scale_to_zero_decommissions_everything() {
        // New side empty: the cost matrix is all dummy columns.
        let old = vec![set(&[(0, 100)]), set(&[(100, 200)]), set(&[(200, 300)])];
        let plan = plan_transition(&old, &[]);
        assert_eq!(plan.total_transfer, 0);
        assert_eq!(plan.decommissioned(), 3);
        assert_eq!(plan.provisioned(), 0);
        assert_eq!(plan.reused().count(), 0);
    }

    #[test]
    fn single_old_node_to_single_new_node() {
        let old = vec![set(&[(0, 100)])];
        let new = vec![set(&[(50, 180)])];
        let plan = plan_transition(&old, &new);
        assert_eq!(plan.total_transfer, 80);
        let reused: Vec<_> = plan.reused().collect();
        assert_eq!(reused, vec![(NodeId(0), NodeId(0), 80)]);
    }

    #[test]
    fn rectangular_wide_growth() {
        // 1 old node, 4 new: three provisions plus one reuse, and the reuse
        // must pick the new node most similar to the survivor.
        let old = vec![set(&[(0, 100)])];
        let new = vec![
            set(&[(300, 400)]),
            set(&[(0, 90)]),
            set(&[(100, 200)]),
            set(&[(200, 300)]),
        ];
        let plan = plan_transition(&old, &new);
        assert_eq!(plan.provisioned(), 3);
        assert_eq!(plan.decommissioned(), 0);
        let reused: Vec<_> = plan.reused().collect();
        assert_eq!(reused, vec![(NodeId(0), NodeId(1), 0)]);
        // 100 + 100 + 100 provisioned, 0 for the reuse.
        assert_eq!(plan.total_transfer, 300);
    }

    #[test]
    fn rectangular_deep_shrink() {
        // 4 old nodes, 1 new: three decommissions, and the survivor is the
        // old node needing the least copying.
        let old = vec![
            set(&[(300, 400)]),
            set(&[(0, 60)]),
            set(&[(0, 95)]),
            set(&[(200, 300)]),
        ];
        let new = vec![set(&[(0, 100)])];
        let plan = plan_transition(&old, &new);
        assert_eq!(plan.decommissioned(), 3);
        assert_eq!(plan.provisioned(), 0);
        let reused: Vec<_> = plan.reused().collect();
        assert_eq!(reused, vec![(NodeId(2), NodeId(0), 5)]);
        assert_eq!(plan.total_transfer, 5);
    }

    #[test]
    fn empty_interval_sets_are_valid_nodes() {
        // A node holding nothing (all replicas evacuated) still matches:
        // turning it into any new node costs that node's full contents.
        let old = vec![IntervalSet::new(), set(&[(0, 100)])];
        let new = vec![set(&[(0, 100)]), set(&[(100, 150)])];
        let plan = plan_transition(&old, &new);
        // Reuse the full node for free, fill the empty one with 50 tuples.
        assert_eq!(plan.total_transfer, 50);
        assert_eq!(plan.provisioned(), 0);
    }

    #[test]
    fn cold_start_provisions_everything() {
        let new = vec![set(&[(0, 50)]), set(&[(50, 100)])];
        let plan = plan_transition(&[], &new);
        assert_eq!(plan.total_transfer, 100);
        assert_eq!(plan.provisioned(), 2);
    }

    #[test]
    fn plan_is_optimal_vs_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let n_old = rng.gen_range(1..5usize);
            let n_new = rng.gen_range(1..5usize);
            let mk = |rng: &mut rand::rngs::StdRng| {
                let a = rng.gen_range(0..100u64);
                let b = a + rng.gen_range(1..100u64);
                set(&[(a, b)])
            };
            let old: Vec<_> = (0..n_old).map(|_| mk(&mut rng)).collect();
            let new: Vec<_> = (0..n_new).map(|_| mk(&mut rng)).collect();
            let plan = plan_transition(&old, &new);

            // Brute force over all injections of new nodes into old ∪ fresh.
            let n = n_old.max(n_new);
            let cost = |i: usize, j: usize| -> u64 {
                match (old.get(i), new.get(j)) {
                    (Some(o), Some(nw)) => nw.difference_len(o),
                    (None, Some(nw)) => nw.len(),
                    _ => 0,
                }
            };
            let mut best = u64::MAX;
            let mut perm: Vec<usize> = (0..n).collect();
            permute(&mut perm, 0, &mut |p: &[usize]| {
                let total: u64 = p.iter().enumerate().map(|(i, &j)| cost(i, j)).sum();
                best = best.min(total);
            });
            assert_eq!(plan.total_transfer, best);
        }
    }

    fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
        if k == items.len() {
            visit(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, visit);
            items.swap(k, i);
        }
    }
}
