//! Runtime invariant audits (compiled only with the `invariant-audit`
//! feature).
//!
//! Each pipeline stage of NashDB maintains a structural or economic
//! invariant that the paper's correctness argument leans on: the value
//! tree stays AVL-balanced and consistent with the scan window (§4), a
//! fragmentation tiles its table and never beats the DP optimum (§5), a
//! replica configuration is a Nash equilibrium (§6, Definition 6.1), a
//! packing respects the one-replica-per-fragment class constraint and node
//! capacity (§6.3), and a transition plan is a minimum-weight perfect
//! matching (§7, Eq. 10).
//!
//! The functions here re-derive each invariant from first principles —
//! independent reference implementations, brute force where the instance
//! is small enough — and return a typed [`AuditError`] instead of
//! panicking, so they can drive both `debug_assert!`-style hooks inside
//! the driver and property-test suites. They are deliberately slow
//! (quadratic scans, permutation enumeration); nothing here belongs on a
//! hot path, which is why the whole module sits behind a default-off
//! feature.

use std::collections::{HashMap, HashSet};

use crate::economics::{check_equilibrium, EconomicConfig, EquilibriumViolation};
use crate::fragment::{optimal_fragmentation, ChunkPrefix, Fragmentation};
use crate::ids::{FragmentId, NodeId};
use crate::replication::ReplicationDecision;
use crate::transition::{IntervalSet, NodeMove, TransitionPlan};
use crate::value::{
    AvlValueTree, BTreeValueTree, Chunk, PricedScan, TupleValueEstimator, ValueTreeBackend,
};

/// Absolute floating-point tolerance used by the delta-sum and
/// fragmentation-error comparisons.
pub const AUDIT_EPSILON: f64 = 1e-6;

/// Largest instance (old/new node count) for which [`audit_transition`]
/// brute-forces all permutations as a minimality certificate. `7! = 5040`
/// candidate matchings keeps the certificate cheap.
pub const CERTIFICATE_LIMIT: usize = 7;

/// Largest chunk count for which [`audit_fragmentation`] re-runs the exact
/// DP to certify the error objective.
pub const OPTIMALITY_CHUNK_LIMIT: usize = 64;

/// A violated invariant, reported by one of the `audit_*` functions.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The AVL tree has a node whose subtrees differ in height by more
    /// than one, or whose cached height is stale.
    UnbalancedTree {
        /// Key of the first offending tree node.
        key: u64,
    },
    /// The tree's in-order deltas disagree with a reference tree rebuilt
    /// from the scan window.
    TreeDivergence {
        /// Human-readable description of the first disagreement.
        detail: String,
    },
    /// The tree's deltas do not sum to (approximately) zero, i.e. some
    /// scan's start and end contributions no longer cancel.
    DeltaSumNonzero {
        /// The offending sum.
        sum: f64,
    },
    /// A fragmentation does not cover its table exactly.
    CoverageGap {
        /// Table length implied by the value chunks.
        expected: u64,
        /// Table length the fragmentation actually covers.
        actual: u64,
    },
    /// A fragmentation has more fragments than the `maxFrags` cap.
    TooManyFragments {
        /// Fragments in the fragmentation.
        count: usize,
        /// The cap it was built under.
        max_frags: usize,
    },
    /// A fragmentation's summed error (Eq. 5) is *below* the exact DP
    /// optimum for the same fragment budget — impossible for a correct
    /// objective, so one of the two error computations is wrong.
    BeatsOptimal {
        /// The audited fragmentation's total error.
        actual: f64,
        /// The DP optimum for the same `k`.
        optimal: f64,
    },
    /// The audited value chunks are malformed (empty, offset, or
    /// discontiguous), so no fragmentation property can be re-derived.
    InvalidChunks(crate::fragment::FragmentError),
    /// The replica configuration is not a Nash equilibrium.
    Equilibrium(EquilibriumViolation),
    /// A packed node references a fragment with no replication decision.
    UnknownFragment {
        /// The unknown fragment.
        fragment: FragmentId,
        /// The node referencing it.
        node: NodeId,
    },
    /// A node holds two replicas of the same fragment, violating the
    /// class constraint of §6.3.
    DuplicateReplica {
        /// The offending node.
        node: NodeId,
        /// The duplicated fragment.
        fragment: FragmentId,
    },
    /// A node's hosted fragments exceed its disk capacity.
    NodeOverCapacity {
        /// The offending node.
        node: NodeId,
        /// Tuples placed on it.
        used: u64,
        /// Its disk capacity.
        disk: u64,
    },
    /// The number of placed replicas of a fragment differs from its
    /// replication decision.
    ReplicaCountMismatch {
        /// The fragment.
        fragment: FragmentId,
        /// Replicas the decision called for.
        wanted: u64,
        /// Replicas actually placed.
        placed: u64,
    },
    /// A transition plan is not a perfect matching over old and new nodes
    /// (a node is missing, repeated, or out of range).
    BrokenMatching {
        /// Human-readable description of the structural defect.
        detail: String,
    },
    /// A move's recorded transfer disagrees with the interval-set
    /// difference it should equal, or the per-move transfers do not sum
    /// to `total_transfer`.
    WrongTransfer {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A transition plan moves more tuples than the brute-force optimum.
    SuboptimalTransition {
        /// The plan's total transfer.
        actual: u64,
        /// The brute-force minimum.
        optimal: u64,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::UnbalancedTree { key } => {
                write!(f, "AVL invariant violated at key {key}")
            }
            AuditError::TreeDivergence { detail } => {
                write!(f, "value tree diverges from scan window: {detail}")
            }
            AuditError::DeltaSumNonzero { sum } => {
                write!(f, "value-tree deltas sum to {sum}, expected 0")
            }
            AuditError::CoverageGap { expected, actual } => {
                write!(f, "fragmentation covers {actual} tuples of {expected}")
            }
            AuditError::TooManyFragments { count, max_frags } => {
                write!(f, "{count} fragments exceed maxFrags={max_frags}")
            }
            AuditError::BeatsOptimal { actual, optimal } => {
                write!(f, "error {actual} beats the DP optimum {optimal}")
            }
            AuditError::InvalidChunks(e) => write!(f, "malformed value chunks: {e}"),
            AuditError::Equilibrium(v) => write!(f, "not a Nash equilibrium: {v}"),
            AuditError::UnknownFragment { fragment, node } => {
                write!(f, "node {node} hosts unknown fragment {fragment}")
            }
            AuditError::DuplicateReplica { node, fragment } => {
                write!(f, "node {node} holds fragment {fragment} twice")
            }
            AuditError::NodeOverCapacity { node, used, disk } => {
                write!(f, "node {node} stores {used} tuples of {disk} capacity")
            }
            AuditError::ReplicaCountMismatch {
                fragment,
                wanted,
                placed,
            } => {
                write!(
                    f,
                    "fragment {fragment} placed {placed} times, decision wanted {wanted}"
                )
            }
            AuditError::BrokenMatching { detail } => {
                write!(f, "transition is not a perfect matching: {detail}")
            }
            AuditError::WrongTransfer { detail } => {
                write!(f, "transition transfer accounting broken: {detail}")
            }
            AuditError::SuboptimalTransition { actual, optimal } => {
                write!(f, "transition copies {actual} tuples, optimum is {optimal}")
            }
        }
    }
}

impl std::error::Error for AuditError {}

impl From<EquilibriumViolation> for AuditError {
    fn from(v: EquilibriumViolation) -> Self {
        AuditError::Equilibrium(v)
    }
}

// ---------------------------------------------------------------------------
// §4 — value tree
// ---------------------------------------------------------------------------

/// Audits an AVL-backed estimator: the tree must satisfy the AVL balance
/// invariant and must agree with a `BTreeMap` reference rebuilt from the
/// estimator's own scan window.
///
/// # Errors
/// [`AuditError::UnbalancedTree`], [`AuditError::TreeDivergence`], or
/// [`AuditError::DeltaSumNonzero`].
pub fn audit_value_tree(est: &TupleValueEstimator<AvlValueTree>) -> Result<(), AuditError> {
    if let Some(key) = est.tree().balance_violation() {
        return Err(AuditError::UnbalancedTree { key });
    }
    let scans: Vec<PricedScan> = est.scans().copied().collect();
    audit_tree_consistency(est.tree(), &scans)
}

/// Audits any tree backend against an explicit scan list: an independent
/// [`BTreeValueTree`] is rebuilt from `scans` and the two delta sequences
/// must match key-for-key within [`AUDIT_EPSILON`]; the deltas of a
/// well-formed tree also sum to zero, since every scan contributes `+w` at
/// its start and `-w` at its end.
///
/// # Errors
/// [`AuditError::TreeDivergence`] or [`AuditError::DeltaSumNonzero`].
pub fn audit_tree_consistency<B: ValueTreeBackend>(
    tree: &B,
    scans: &[PricedScan],
) -> Result<(), AuditError> {
    let mut reference = BTreeValueTree::default();
    for s in scans {
        reference.add_scan(s);
    }
    fn collect<B: ValueTreeBackend>(tree: &B) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        tree.visit_deltas(&mut |k, d| out.push((k, d)));
        out
    }
    let actual = collect(tree);
    let expected = collect(&reference);
    if actual.len() != expected.len() {
        return Err(AuditError::TreeDivergence {
            detail: format!(
                "{} tracked keys, reference has {}",
                actual.len(),
                expected.len()
            ),
        });
    }
    for (&(ak, ad), &(ek, ed)) in actual.iter().zip(&expected) {
        if ak != ek {
            return Err(AuditError::TreeDivergence {
                detail: format!("key {ak} where reference has {ek}"),
            });
        }
        if (ad - ed).abs() > AUDIT_EPSILON {
            return Err(AuditError::TreeDivergence {
                detail: format!("delta {ad} at key {ak}, reference has {ed}"),
            });
        }
    }
    let sum: f64 = actual.iter().map(|&(_, d)| d).sum();
    if sum.abs() > AUDIT_EPSILON {
        return Err(AuditError::DeltaSumNonzero { sum });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// §5 — fragmentation
// ---------------------------------------------------------------------------

/// Audits a fragmentation against the value chunks it was derived from:
/// it must tile exactly the table the chunks describe, respect the
/// `maxFrags` cap, and — on instances small enough to re-solve exactly —
/// its Eq. 5 error must not *beat* the DP optimum for the same fragment
/// count (the optimum is a lower bound, so "beating" it means an error
/// computation is broken).
///
/// Contiguity and strictly-increasing boundaries are enforced by
/// [`Fragmentation`]'s constructors; this audit re-checks the properties
/// that depend on the pairing of a fragmentation with a value function.
///
/// # Errors
/// [`AuditError::CoverageGap`], [`AuditError::TooManyFragments`], or
/// [`AuditError::BeatsOptimal`].
pub fn audit_fragmentation(
    frag: &Fragmentation,
    chunks: &[Chunk],
    max_frags: usize,
) -> Result<(), AuditError> {
    let expected = chunks.last().map_or(frag.table_len(), |c| c.end);
    if frag.table_len() != expected {
        return Err(AuditError::CoverageGap {
            expected,
            actual: frag.table_len(),
        });
    }
    if frag.len() > max_frags {
        return Err(AuditError::TooManyFragments {
            count: frag.len(),
            max_frags,
        });
    }
    if !chunks.is_empty() && chunks.len() <= OPTIMALITY_CHUNK_LIMIT {
        let prefix = ChunkPrefix::new(chunks).map_err(AuditError::InvalidChunks)?;
        let actual = frag.total_error(&prefix);
        let best = optimal_fragmentation(chunks, frag.len()).map_err(AuditError::InvalidChunks)?;
        let optimal = best.total_error(&prefix);
        // Relative tolerance: errors scale with value² × tuples.
        let tol = AUDIT_EPSILON * (1.0 + optimal.abs());
        if actual < optimal - tol {
            return Err(AuditError::BeatsOptimal { actual, optimal });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// §6 — equilibrium
// ---------------------------------------------------------------------------

/// Audits a replica configuration against Definition 6.1: every held
/// replica is (weakly) profitable, and no node can profit by adding,
/// swapping in, or newly entering with any fragment bundle (the
/// no-profitable-entry condition derived from `Ideal(f)`, Eq. 9).
///
/// This is a thin, audit-typed wrapper over
/// [`check_equilibrium`]; forced availability replicas
/// (`Ideal(f) = 0`) must already be excluded from `config`, as
/// [`ClusterScheme::economic_config`](crate::replication::ClusterScheme::economic_config)
/// does.
///
/// # Errors
/// [`AuditError::Equilibrium`] carrying the specific violated condition.
pub fn audit_equilibrium(config: &EconomicConfig) -> Result<(), AuditError> {
    check_equilibrium(config).map_err(AuditError::from)
}

// ---------------------------------------------------------------------------
// §6.3 — packing
// ---------------------------------------------------------------------------

/// Audits a packed placement against its replication decisions: every
/// hosted fragment has a decision, no node holds the same fragment twice
/// (the class constraint), no node exceeds `disk`, and each fragment is
/// placed exactly as many times as its decision calls for.
///
/// # Errors
/// [`AuditError::UnknownFragment`], [`AuditError::DuplicateReplica`],
/// [`AuditError::NodeOverCapacity`], or
/// [`AuditError::ReplicaCountMismatch`].
pub fn audit_packing(
    nodes: &[Vec<FragmentId>],
    decisions: &[ReplicationDecision],
    disk: u64,
) -> Result<(), AuditError> {
    let by_id: HashMap<FragmentId, &ReplicationDecision> =
        decisions.iter().map(|d| (d.id, d)).collect();
    let mut placed: HashMap<FragmentId, u64> = HashMap::new();
    for (i, frags) in nodes.iter().enumerate() {
        let node = NodeId(i as u64);
        let mut seen: HashSet<FragmentId> = HashSet::new();
        let mut used: u64 = 0;
        for &fid in frags {
            let Some(d) = by_id.get(&fid) else {
                return Err(AuditError::UnknownFragment {
                    fragment: fid,
                    node,
                });
            };
            if !seen.insert(fid) {
                return Err(AuditError::DuplicateReplica {
                    node,
                    fragment: fid,
                });
            }
            used = used.saturating_add(d.range.size());
            *placed.entry(fid).or_insert(0) += 1;
        }
        if used > disk {
            return Err(AuditError::NodeOverCapacity { node, used, disk });
        }
    }
    for d in decisions {
        let got = placed.get(&d.id).copied().unwrap_or(0);
        if got != d.replicas {
            return Err(AuditError::ReplicaCountMismatch {
                fragment: d.id,
                wanted: d.replicas,
                placed: got,
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// §7 — transition
// ---------------------------------------------------------------------------

/// Audits a transition plan against the schemes it transitions between:
/// the moves must form a perfect matching (every old node reused or
/// decommissioned exactly once, every new node reused or provisioned
/// exactly once), each move's transfer must equal the interval-set
/// difference it stands for, the transfers must sum to `total_transfer`,
/// and — for instances of at most [`CERTIFICATE_LIMIT`] nodes — the total
/// must match the brute-force minimum over all matchings (Eq. 10).
///
/// # Errors
/// [`AuditError::BrokenMatching`], [`AuditError::WrongTransfer`], or
/// [`AuditError::SuboptimalTransition`].
pub fn audit_transition(
    old: &[IntervalSet],
    new: &[IntervalSet],
    plan: &TransitionPlan,
) -> Result<(), AuditError> {
    let n = old.len().max(new.len());
    if plan.moves.len() != n {
        return Err(AuditError::BrokenMatching {
            detail: format!("{} moves for {n} matched pairs", plan.moves.len()),
        });
    }
    let mut old_seen = vec![false; old.len()];
    let mut new_seen = vec![false; new.len()];
    let visit = |seen: &mut [bool], idx: u64, side: &str| -> Result<usize, AuditError> {
        let i = usize::try_from(idx).unwrap_or(usize::MAX);
        match seen.get_mut(i) {
            None => Err(AuditError::BrokenMatching {
                detail: format!("{side} node {idx} out of range"),
            }),
            Some(s) if *s => Err(AuditError::BrokenMatching {
                detail: format!("{side} node {idx} matched twice"),
            }),
            Some(s) => {
                *s = true;
                Ok(i)
            }
        }
    };
    let mut sum: u64 = 0;
    for m in &plan.moves {
        let (want, got) = match m {
            NodeMove::Reuse {
                old: o,
                new: nw,
                transfer,
            } => {
                let i = visit(&mut old_seen, o.get(), "old")?;
                let j = visit(&mut new_seen, nw.get(), "new")?;
                (new[j].difference_len(&old[i]), *transfer)
            }
            NodeMove::Provision { new: nw, transfer } => {
                let j = visit(&mut new_seen, nw.get(), "new")?;
                (new[j].len(), *transfer)
            }
            NodeMove::Decommission { old: o } => {
                visit(&mut old_seen, o.get(), "old")?;
                (0, 0)
            }
        };
        if want != got {
            return Err(AuditError::WrongTransfer {
                detail: format!("move {m:?} records {got} tuples, interval difference is {want}"),
            });
        }
        sum = sum.saturating_add(got);
    }
    if !old_seen.iter().all(|&s| s) || !new_seen.iter().all(|&s| s) {
        return Err(AuditError::BrokenMatching {
            detail: "a node was never matched".to_owned(),
        });
    }
    if sum != plan.total_transfer {
        return Err(AuditError::WrongTransfer {
            detail: format!("moves sum to {sum}, plan claims {}", plan.total_transfer),
        });
    }
    if n > 0 && n <= CERTIFICATE_LIMIT {
        let optimal = brute_force_transfer(old, new, n);
        if plan.total_transfer != optimal {
            return Err(AuditError::SuboptimalTransition {
                actual: plan.total_transfer,
                optimal,
            });
        }
    }
    Ok(())
}

/// Minimum total transfer over all perfect matchings of the dummy-padded
/// `n × n` instance, by permutation enumeration (Heap's algorithm).
fn brute_force_transfer(old: &[IntervalSet], new: &[IntervalSet], n: usize) -> u64 {
    let cost = |i: usize, j: usize| -> u64 {
        match (old.get(i), new.get(j)) {
            (Some(o), Some(nw)) => nw.difference_len(o),
            (None, Some(nw)) => nw.len(),
            _ => 0,
        }
    };
    let mut perm: Vec<usize> = (0..n).collect();
    let mut counters = vec![0usize; n];
    let total = |p: &[usize]| -> u64 { p.iter().enumerate().map(|(i, &j)| cost(i, j)).sum() };
    let mut best = total(&perm);
    let mut i = 0;
    while i < n {
        if counters[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(counters[i], i);
            }
            best = best.min(total(&perm));
            counters[i] += 1;
            i = 0;
        } else {
            counters[i] = 0;
            i += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::economics::NodeSpec;
    use crate::fragment::fragment_stats;
    use crate::replication::{ClusterScheme, ReplicationPolicy};
    use crate::transition::plan_transition;

    fn scan(start: u64, end: u64, price: f64) -> PricedScan {
        PricedScan::new(start, end, price)
    }

    fn set(runs: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_intervals(runs.iter().copied())
    }

    #[test]
    fn healthy_estimator_passes() {
        let mut est = TupleValueEstimator::new(16);
        for i in 0..40u64 {
            est.observe(scan(i % 7, i % 7 + 10, 1.0 + (i % 3) as f64));
        }
        audit_value_tree(&est).unwrap();
    }

    #[test]
    fn mismatched_window_is_divergence() {
        let mut est = TupleValueEstimator::new(8);
        est.observe(scan(0, 10, 1.0));
        est.observe(scan(5, 20, 2.0));
        // Claim the window held only the first scan: the rebuilt reference
        // then disagrees with the real tree.
        let err = audit_tree_consistency(est.tree(), &[scan(0, 10, 1.0)]).unwrap_err();
        assert!(matches!(err, AuditError::TreeDivergence { .. }), "{err}");
    }

    #[test]
    fn phantom_scan_is_divergence() {
        // A tree holding a scan the window claims was never observed: the
        // rebuilt reference is empty, the tree is not.
        let mut tree = AvlValueTree::default();
        tree.add_scan(&scan(0, 10, 1.0));
        let err = audit_tree_consistency(&tree, &[]).unwrap_err();
        assert!(matches!(err, AuditError::TreeDivergence { .. }), "{err}");
    }

    fn chunks() -> Vec<Chunk> {
        vec![
            Chunk {
                start: 0,
                end: 10,
                value: 5.0,
            },
            Chunk {
                start: 10,
                end: 60,
                value: 1.0,
            },
            Chunk {
                start: 60,
                end: 100,
                value: 3.0,
            },
        ]
    }

    #[test]
    fn optimal_fragmentation_passes_audit() {
        let frag = optimal_fragmentation(&chunks(), 3).unwrap();
        audit_fragmentation(&frag, &chunks(), 3).unwrap();
    }

    #[test]
    fn short_fragmentation_is_coverage_gap() {
        let frag = Fragmentation::from_boundaries(vec![0, 50]);
        let err = audit_fragmentation(&frag, &chunks(), 4).unwrap_err();
        assert!(matches!(err, AuditError::CoverageGap { .. }), "{err}");
    }

    #[test]
    fn cap_violation_detected() {
        let frag = Fragmentation::equal_width(100, 10);
        let err = audit_fragmentation(&frag, &chunks(), 4).unwrap_err();
        assert!(matches!(err, AuditError::TooManyFragments { .. }), "{err}");
    }

    fn scheme() -> ClusterScheme {
        let frag = Fragmentation::from_boundaries(vec![0, 10, 60, 100]);
        let stats = fragment_stats(&frag, &chunks()).unwrap();
        let policy = ReplicationPolicy::new(10, NodeSpec::new(1.0, 120));
        ClusterScheme::build(&stats, policy).unwrap()
    }

    #[test]
    fn built_scheme_passes_packing_and_equilibrium() {
        let s = scheme();
        audit_packing(&s.nodes, &s.decisions, s.policy.spec.disk).unwrap();
        audit_equilibrium(&s.economic_config()).unwrap();
    }

    #[test]
    fn duplicate_replica_detected() {
        let mut s = scheme();
        let first = s.nodes[0][0];
        s.nodes[0].push(first);
        let err = audit_packing(&s.nodes, &s.decisions, s.policy.spec.disk).unwrap_err();
        assert!(matches!(err, AuditError::DuplicateReplica { .. }), "{err}");
    }

    #[test]
    fn lost_replica_detected() {
        let mut s = scheme();
        s.nodes[0].remove(0);
        let err = audit_packing(&s.nodes, &s.decisions, s.policy.spec.disk).unwrap_err();
        assert!(
            matches!(err, AuditError::ReplicaCountMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn capacity_violation_detected() {
        let s = scheme();
        let err = audit_packing(&s.nodes, &s.decisions, 1).unwrap_err();
        assert!(matches!(err, AuditError::NodeOverCapacity { .. }), "{err}");
    }

    #[test]
    fn unknown_fragment_detected() {
        let mut s = scheme();
        s.nodes[0].push(FragmentId(999));
        let err = audit_packing(&s.nodes, &s.decisions, s.policy.spec.disk).unwrap_err();
        assert!(matches!(err, AuditError::UnknownFragment { .. }), "{err}");
    }

    #[test]
    fn over_replication_breaks_equilibrium() {
        let spec = NodeSpec::new(1.0, 100);
        let config = EconomicConfig {
            window: 10,
            spec,
            fragments: vec![crate::economics::FragmentEconomics {
                id: FragmentId(0),
                size: 50,
                value: 0.01, // Ideal ≈ 0: any replica loses money.
                replicas: 2,
            }],
            assignment: vec![
                (NodeId(0), vec![FragmentId(0)]),
                (NodeId(1), vec![FragmentId(0)]),
            ],
        };
        let err = audit_equilibrium(&config).unwrap_err();
        assert!(matches!(err, AuditError::Equilibrium(_)), "{err}");
    }

    #[test]
    fn planned_transition_passes() {
        let old = vec![set(&[(0, 100)]), set(&[(100, 200)])];
        let new = vec![set(&[(0, 150)]), set(&[(150, 200)]), set(&[(0, 50)])];
        let plan = plan_transition(&old, &new);
        audit_transition(&old, &new, &plan).unwrap();
    }

    #[test]
    fn tampered_total_is_wrong_transfer() {
        let old = vec![set(&[(0, 100)])];
        let new = vec![set(&[(50, 150)])];
        let mut plan = plan_transition(&old, &new);
        plan.total_transfer += 1;
        let err = audit_transition(&old, &new, &plan).unwrap_err();
        assert!(matches!(err, AuditError::WrongTransfer { .. }), "{err}");
    }

    #[test]
    fn dropped_move_is_broken_matching() {
        let old = vec![set(&[(0, 100)]), set(&[(100, 200)])];
        let new = vec![set(&[(0, 100)]), set(&[(100, 200)])];
        let mut plan = plan_transition(&old, &new);
        plan.moves.pop();
        let err = audit_transition(&old, &new, &plan).unwrap_err();
        assert!(matches!(err, AuditError::BrokenMatching { .. }), "{err}");
    }

    #[test]
    fn greedy_pairing_flagged_suboptimal() {
        // A deliberately bad matching: pair each new node with the *worst*
        // old node. The per-move transfers are internally consistent, so
        // only the brute-force certificate can catch it.
        let old = vec![set(&[(0, 100)]), set(&[(100, 200)])];
        let new = vec![set(&[(100, 200)]), set(&[(0, 100)])];
        let bad = TransitionPlan {
            moves: vec![
                NodeMove::Reuse {
                    old: NodeId(0),
                    new: NodeId(0),
                    transfer: 100,
                },
                NodeMove::Reuse {
                    old: NodeId(1),
                    new: NodeId(1),
                    transfer: 100,
                },
            ],
            total_transfer: 200,
        };
        let err = audit_transition(&old, &new, &bad).unwrap_err();
        assert!(
            matches!(err, AuditError::SuboptimalTransition { .. }),
            "{err}"
        );
    }
}
