//! Internal indirection over the optional `nashdb-obs` dependency.
//!
//! Algorithm code instruments itself unconditionally through these
//! re-exports; with the `obs` feature disabled they resolve to inlined
//! no-ops, so the hot paths carry zero observability cost and the crate
//! keeps its no-external-dependency builds (`--no-default-features`).

#[cfg(feature = "obs")]
pub(crate) use nashdb_obs::{counter_add, gauge_set, is_active, record, stopwatch};

#[cfg(not(feature = "obs"))]
pub(crate) use noop::{counter_add, gauge_set, is_active, record, stopwatch};

#[cfg(not(feature = "obs"))]
mod noop {
    //! Signature-compatible no-op stand-ins for the `nashdb-obs` API.

    pub(crate) struct Stopwatch;

    #[inline]
    pub(crate) fn counter_add(_name: &str, _delta: u64) {}

    #[inline]
    pub(crate) fn gauge_set(_name: &str, _value: f64) {}

    #[inline]
    pub(crate) fn record(_name: &str, _value: u64) {}

    #[inline]
    pub(crate) fn is_active() -> bool {
        false
    }

    #[inline]
    pub(crate) fn stopwatch() -> Stopwatch {
        Stopwatch
    }

    impl Stopwatch {
        #[inline]
        pub(crate) fn record(self, _name: &str) {}
    }
}
