//! The economic model (paper §3 and §6).
//!
//! Queries are patrons, tuples are goods, nodes are firms. A node pays a
//! storage cost for each fragment replica it holds and collects the
//! fragment's expected income, diluted by the number of replicas in the
//! cluster. NashDB chooses replica counts so that every replica is
//! profitable but one more of any fragment would not be — a Nash equilibrium
//! (Definition 6.1). This module defines the cost/income/profit arithmetic
//! and a checker for all four equilibrium conditions, used both by tests and
//! by the replication manager's debug assertions.
//!
//! Monetary amounts are `f64` in the paper's reporting unit of **1/100 of a
//! cent**; time is abstract ("per unit time" — the reconfiguration period).

use std::collections::HashSet;

use crate::ids::{FragmentId, NodeId};

/// Tolerance for floating-point profit comparisons: a deviation must improve
/// profit by more than this to count as an equilibrium violation.
pub const PROFIT_EPSILON: f64 = 1e-9;

/// A cluster node's economic parameters: usage cost per unit time and disk
/// capacity in tuples. The paper assumes (as we do by default) that all
/// nodes are identical; the arithmetic itself does not require it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Rent cost per unit time, in 1/100 cent.
    pub cost: f64,
    /// Disk capacity, in tuples.
    pub disk: u64,
}

impl NodeSpec {
    /// Creates a spec, validating that both parameters are positive.
    ///
    /// # Panics
    /// Panics if `cost` is not finite and positive or `disk` is zero.
    pub fn new(cost: f64, disk: u64) -> Self {
        assert!(
            cost.is_finite() && cost > 0.0,
            "node cost must be positive, got {cost}"
        );
        assert!(disk > 0, "node disk capacity must be nonzero");
        NodeSpec { cost, disk }
    }

    /// `C(f)` — expected cost of storing one replica of a fragment of
    /// `size` tuples for one unit of time: `size × Cost / Disk`.
    pub fn storage_cost(&self, size: u64) -> f64 {
        size as f64 * self.cost / self.disk as f64
    }
}

/// `I(f)` — expected income per replica of a fragment (paper §6): the
/// fragment's windowed value `|W| × Value(f)` split evenly across its
/// `replicas` copies.
///
/// # Panics
/// Panics if `replicas` is zero (an unhosted fragment has no income to
/// split).
pub fn expected_income(window: usize, value: f64, replicas: u64) -> f64 {
    assert!(replicas > 0, "income of a fragment with zero replicas");
    window as f64 * value / replicas as f64
}

/// Profit a node earns from holding one replica of a fragment.
pub fn replica_profit(window: usize, value: f64, replicas: u64, size: u64, spec: &NodeSpec) -> f64 {
    expected_income(window, value, replicas) - spec.storage_cost(size)
}

/// A fragment's economic summary within a cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentEconomics {
    /// The fragment.
    pub id: FragmentId,
    /// Size in tuples.
    pub size: u64,
    /// Windowed aggregate tuple value `Value(f)` (paper Eq. 3).
    pub value: f64,
    /// Number of replicas in the configuration.
    pub replicas: u64,
}

/// A concrete assignment of fragment replicas to nodes, as checked for Nash
/// equilibrium.
#[derive(Debug, Clone)]
pub struct EconomicConfig {
    /// Window size `|W|` the values were estimated over.
    pub window: usize,
    /// Per-node economic parameters (shared by all nodes).
    pub spec: NodeSpec,
    /// Every fragment in the scheme.
    pub fragments: Vec<FragmentEconomics>,
    /// For each node, the fragments it hosts.
    pub assignment: Vec<(NodeId, Vec<FragmentId>)>,
}

/// A way some agent could profitably deviate — i.e. a violated condition of
/// Definition 6.1.
#[derive(Debug, Clone, PartialEq)]
pub enum EquilibriumViolation {
    /// Condition 1: `node` profits by dropping `fragment` (the replica's
    /// profit is negative by `loss`).
    DropProfitable {
        /// The deviating node.
        node: NodeId,
        /// The unprofitable fragment it would drop.
        fragment: FragmentId,
        /// How negative the replica's profit is.
        loss: f64,
    },
    /// Condition 2: `node` profits by adding one more replica of `fragment`.
    AddProfitable {
        /// The deviating node.
        node: NodeId,
        /// The fragment worth adding.
        fragment: FragmentId,
        /// The profit the extra replica would earn.
        gain: f64,
    },
    /// Condition 3: `node` profits by swapping `drop` for `add`.
    SwapProfitable {
        /// The deviating node.
        node: NodeId,
        /// The fragment it would drop.
        drop: FragmentId,
        /// The fragment it would pick up.
        add: FragmentId,
        /// Net profit of the swap.
        gain: f64,
    },
    /// Condition 4: a brand-new node could enter hosting `fragments` and
    /// earn `gain`.
    EntryProfitable {
        /// The profitable bundle a new node could host.
        fragments: Vec<FragmentId>,
        /// The profit it would earn.
        gain: f64,
    },
    /// The configuration is malformed (e.g. a node holds a fragment twice, a
    /// hosted fragment is missing from `fragments`, or replica counts do not
    /// match the assignment).
    Malformed(
        /// Description of the inconsistency.
        String,
    ),
}

impl std::fmt::Display for EquilibriumViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquilibriumViolation::DropProfitable {
                node,
                fragment,
                loss,
            } => write!(
                f,
                "node {node} profits by dropping fragment {fragment} (replica loses {loss})"
            ),
            EquilibriumViolation::AddProfitable {
                node,
                fragment,
                gain,
            } => write!(
                f,
                "node {node} profits by adding fragment {fragment} (gain {gain})"
            ),
            EquilibriumViolation::SwapProfitable {
                node,
                drop,
                add,
                gain,
            } => write!(
                f,
                "node {node} profits by swapping fragment {drop} for {add} (gain {gain})"
            ),
            EquilibriumViolation::EntryProfitable { fragments, gain } => write!(
                f,
                "a new node could enter hosting {fragments:?} and earn {gain}"
            ),
            EquilibriumViolation::Malformed(detail) => {
                write!(f, "malformed configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for EquilibriumViolation {}

/// Checks all four conditions of Definition 6.1 against a configuration.
///
/// Returns `Ok(())` when the configuration is a Nash equilibrium, or the
/// first violation found. Structural inconsistencies (duplicate replicas on
/// a node, replica-count mismatches) are reported as
/// [`EquilibriumViolation::Malformed`] — they would make the economic
/// comparison meaningless.
pub fn check_equilibrium(config: &EconomicConfig) -> Result<(), EquilibriumViolation> {
    let econ_of = |id: FragmentId| config.fragments.iter().find(|f| f.id == id);

    // Structural validation: counts implied by the assignment must match the
    // declared replica counts, and no node may hold a fragment twice.
    let mut counted = vec![0u64; config.fragments.len()];
    for (node, frags) in &config.assignment {
        let mut seen = HashSet::new();
        for &fid in frags {
            if !seen.insert(fid) {
                return Err(EquilibriumViolation::Malformed(format!(
                    "node {node} holds {fid} more than once"
                )));
            }
            match config.fragments.iter().position(|f| f.id == fid) {
                Some(idx) => counted[idx] += 1,
                None => {
                    return Err(EquilibriumViolation::Malformed(format!(
                        "node {node} hosts unknown fragment {fid}"
                    )))
                }
            }
        }
    }
    for (f, &count) in config.fragments.iter().zip(&counted) {
        if f.replicas != count {
            return Err(EquilibriumViolation::Malformed(format!(
                "fragment {} declares {} replicas but {} are assigned",
                f.id, f.replicas, count
            )));
        }
    }

    for (node, frags) in &config.assignment {
        let held: HashSet<FragmentId> = frags.iter().copied().collect();

        // Condition 1: dropping any held replica must not increase profit,
        // i.e. every held replica's profit must be >= 0.
        for &fid in frags {
            let Some(f) = econ_of(fid) else {
                // Unreachable after structural validation, but surfacing it
                // as Malformed keeps this function panic-free.
                return Err(EquilibriumViolation::Malformed(format!(
                    "node {node} hosts unknown fragment {fid}"
                )));
            };
            let profit = replica_profit(config.window, f.value, f.replicas, f.size, &config.spec);
            if profit < -PROFIT_EPSILON {
                return Err(EquilibriumViolation::DropProfitable {
                    node: *node,
                    fragment: fid,
                    loss: -profit,
                });
            }
        }

        // Condition 2: adding one more replica of any fragment the node does
        // not hold must not be profitable at the diluted income.
        for f in &config.fragments {
            if held.contains(&f.id) {
                continue;
            }
            let gain = replica_profit(config.window, f.value, f.replicas + 1, f.size, &config.spec);
            if gain > PROFIT_EPSILON {
                return Err(EquilibriumViolation::AddProfitable {
                    node: *node,
                    fragment: f.id,
                    gain,
                });
            }
        }

        // Condition 3: swapping a held fragment for an unheld one must not
        // be profitable: new replica's (diluted) profit must not exceed the
        // dropped replica's current profit.
        for &drop_id in frags {
            let Some(d) = econ_of(drop_id) else {
                return Err(EquilibriumViolation::Malformed(format!(
                    "node {node} hosts unknown fragment {drop_id}"
                )));
            };
            let drop_profit =
                replica_profit(config.window, d.value, d.replicas, d.size, &config.spec);
            for a in &config.fragments {
                if held.contains(&a.id) {
                    continue;
                }
                let add_profit =
                    replica_profit(config.window, a.value, a.replicas + 1, a.size, &config.spec);
                let gain = add_profit - drop_profit;
                if gain > PROFIT_EPSILON {
                    return Err(EquilibriumViolation::SwapProfitable {
                        node: *node,
                        drop: drop_id,
                        add: a.id,
                        gain,
                    });
                }
            }
        }
    }

    // Condition 4: a new (empty) node's best entry bundle is every fragment
    // whose next replica would be profitable; if that bundle is nonempty the
    // market invites entry.
    let mut bundle = Vec::new();
    let mut gain = 0.0;
    for f in &config.fragments {
        let p = replica_profit(config.window, f.value, f.replicas + 1, f.size, &config.spec);
        if p > PROFIT_EPSILON {
            bundle.push(f.id);
            gain += p;
        }
    }
    if !bundle.is_empty() {
        return Err(EquilibriumViolation::EntryProfitable {
            fragments: bundle,
            gain,
        });
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NodeSpec {
        NodeSpec::new(100.0, 1_000)
    }

    fn frag(id: u64, size: u64, value: f64, replicas: u64) -> FragmentEconomics {
        FragmentEconomics {
            id: FragmentId(id),
            size,
            value,
            replicas,
        }
    }

    #[test]
    fn storage_cost_is_prorated() {
        let s = spec();
        assert!((s.storage_cost(500) - 50.0).abs() < 1e-12);
        assert!((s.storage_cost(0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn spec_rejects_nonpositive_cost() {
        let _ = NodeSpec::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn spec_rejects_zero_disk() {
        let _ = NodeSpec::new(1.0, 0);
    }

    #[test]
    fn income_dilutes_with_replicas() {
        let one = expected_income(50, 10.0, 1);
        let five = expected_income(50, 10.0, 5);
        assert!((one - 500.0).abs() < 1e-12);
        assert!((five - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn income_requires_replicas() {
        let _ = expected_income(50, 10.0, 0);
    }

    /// The worked equilibrium: with |W|=50, Value=1.0, size=250 and
    /// cost/disk = 0.1, Ideal = floor(50·1.0/25) = 2; two replicas each earn
    /// 25 − 25 = 0 ≥ 0 and a third would earn 50/3 − 25 < 0.
    fn equilibrium_config() -> EconomicConfig {
        EconomicConfig {
            window: 50,
            spec: spec(),
            fragments: vec![frag(0, 250, 1.0, 2)],
            assignment: vec![
                (NodeId(0), vec![FragmentId(0)]),
                (NodeId(1), vec![FragmentId(0)]),
            ],
        }
    }

    #[test]
    fn ideal_counts_pass_the_checker() {
        assert_eq!(check_equilibrium(&equilibrium_config()), Ok(()));
    }

    #[test]
    fn under_replication_invites_add_or_entry() {
        let mut c = equilibrium_config();
        // Value 1.2 -> a second replica earns 30 - 25 > 0 (with value 1.0 a
        // second replica is exactly profit-neutral, which weak Nash allows).
        c.fragments[0].value = 1.2;
        c.fragments[0].replicas = 1;
        c.assignment = vec![(NodeId(0), vec![FragmentId(0)])];
        match check_equilibrium(&c) {
            Err(EquilibriumViolation::AddProfitable { .. })
            | Err(EquilibriumViolation::EntryProfitable { .. }) => {}
            other => panic!("expected profitable add/entry, got {other:?}"),
        }
    }

    #[test]
    fn over_replication_makes_drops_profitable() {
        let mut c = equilibrium_config();
        c.fragments[0].replicas = 3;
        c.assignment = vec![
            (NodeId(0), vec![FragmentId(0)]),
            (NodeId(1), vec![FragmentId(0)]),
            (NodeId(2), vec![FragmentId(0)]),
        ];
        match check_equilibrium(&c) {
            Err(EquilibriumViolation::DropProfitable { .. }) => {}
            other => panic!("expected profitable drop, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_replica_on_node_is_malformed() {
        let mut c = equilibrium_config();
        c.assignment = vec![(NodeId(0), vec![FragmentId(0), FragmentId(0)])];
        assert!(matches!(
            check_equilibrium(&c),
            Err(EquilibriumViolation::Malformed(_))
        ));
    }

    #[test]
    fn replica_count_mismatch_is_malformed() {
        let mut c = equilibrium_config();
        c.assignment.pop();
        assert!(matches!(
            check_equilibrium(&c),
            Err(EquilibriumViolation::Malformed(_))
        ));
    }

    #[test]
    fn unknown_fragment_is_malformed() {
        let mut c = equilibrium_config();
        c.assignment[0].1.push(FragmentId(99));
        assert!(matches!(
            check_equilibrium(&c),
            Err(EquilibriumViolation::Malformed(_))
        ));
    }

    #[test]
    fn swap_violation_detected() {
        // Fragment 0 barely profitable at its count, fragment 1 wildly
        // profitable even after dilution — a holder of 0 should swap to 1.
        // (This also triggers add/entry checks; force the swap arm by making
        // the adding node already full... simplest: check that *some*
        // violation fires and that the configuration is not an equilibrium.)
        let c = EconomicConfig {
            window: 50,
            spec: spec(),
            fragments: vec![frag(0, 250, 1.0, 2), frag(1, 100, 50.0, 1)],
            assignment: vec![
                (NodeId(0), vec![FragmentId(0)]),
                (NodeId(1), vec![FragmentId(0), FragmentId(1)]),
            ],
        };
        assert!(check_equilibrium(&c).is_err());
    }
}
