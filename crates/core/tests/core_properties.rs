//! Property tests over `nashdb-core` invariants not covered by the
//! workspace-level suite: AVL structural health under churn, error-function
//! agreement with direct computation, FindSplit ≡ the chunk-restricted
//! search, heterogeneous ≡ homogeneous replication on uniform classes, and
//! market dynamics ≡ the closed form.

use proptest::prelude::*;

use nashdb_core::economics::NodeSpec;
use nashdb_core::fragment::{find_split, ChunkPrefix, FragmentRange, FragmentStats};
use nashdb_core::ids::FragmentId;
use nashdb_core::replication::hetero::{ideal_replicas_hetero, NodeClass};
use nashdb_core::replication::market::{simulate_market, MarketConfig};
use nashdb_core::replication::{ideal_replicas, ReplicationPolicy};
use nashdb_core::value::{Chunk, PricedScan, TupleValueEstimator};

const TABLE: u64 = 5_000;

fn arb_scans() -> impl Strategy<Value = Vec<PricedScan>> {
    proptest::collection::vec((0..TABLE - 1, 1..TABLE / 2, 0.01f64..5.0), 1..60).prop_map(|v| {
        v.into_iter()
            .map(|(s, l, p)| PricedScan::new(s, (s + l).min(TABLE), p))
            .collect()
    })
}

fn arb_chunks() -> impl Strategy<Value = Vec<Chunk>> {
    proptest::collection::vec((1u64..40, 0.0f64..4.0), 1..12).prop_map(|parts| {
        let mut out = Vec::new();
        let mut pos = 0;
        for (len, value) in parts {
            out.push(Chunk {
                start: pos,
                end: pos + len,
                value,
            });
            pos += len;
        }
        out
    })
}

proptest! {
    /// The estimator's value function always integrates to the window's
    /// mean query price, and per-tuple values stay within the maximum
    /// possible scan weight.
    #[test]
    fn estimator_values_are_bounded(scans in arb_scans(), window in 1usize..24) {
        let mut est = TupleValueEstimator::new(window);
        let mut recent: Vec<PricedScan> = Vec::new();
        for s in &scans {
            est.observe(*s);
            recent.push(*s);
            if recent.len() > window {
                recent.remove(0);
            }
        }
        let max_weight = recent.iter().map(|s| s.weight()).fold(0.0, f64::max);
        for c in est.chunks(TABLE) {
            // No tuple can be worth more than the sum of all windowed
            // weights / |W|... a simpler sound bound: |W| × max weight.
            prop_assert!(c.value <= max_weight * recent.len() as f64 + 1e-9);
            prop_assert!(c.value >= 0.0);
        }
    }

    /// ChunkPrefix::error equals the direct unnormalized variance computed
    /// tuple by tuple.
    #[test]
    fn error_matches_direct_variance(chunks in arb_chunks()) {
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        let table = prefix.table_len();
        // Expand V(x) per tuple (tables here are tiny).
        let mut v = Vec::with_capacity(nashdb_core::num::usize_from(table));
        for c in &chunks {
            for _ in c.start..c.end {
                v.push(c.value);
            }
        }
        // A handful of ranges.
        for (a, b) in [(0, table), (0, table.div_ceil(2)), (table / 3, table)] {
            if a >= b {
                continue;
            }
            let xs = &v[nashdb_core::num::usize_from(a)..nashdb_core::num::usize_from(b)];
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let direct: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
            let fast = prefix.error(a, b);
            prop_assert!(
                (fast - direct).abs() < 1e-6 * (1.0 + direct),
                "range {a}..{b}: fast {fast} vs direct {direct}"
            );
        }
    }

    /// Algorithm 2 over all tuples never beats (and never loses to) the
    /// chunk-boundary-restricted split the production code uses.
    #[test]
    fn findsplit_equals_boundary_search(chunks in arb_chunks()) {
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        let table = prefix.table_len();
        if table < 2 {
            return Ok(());
        }
        let literal = find_split(&chunks, 0, table).unwrap().expect("table >= 2");
        let boundary = chunks[..chunks.len().saturating_sub(1)]
            .iter()
            .map(|c| prefix.error(0, c.end) + prefix.error(c.end, table))
            .fold(f64::INFINITY, f64::min);
        if boundary.is_finite() {
            prop_assert!((literal.error - boundary).abs() < 1e-6 * (1.0 + boundary));
        } else {
            // Single chunk: any interior point splits a constant run.
            prop_assert!(literal.error < 1e-9);
        }
    }

    /// One uniform node class makes the heterogeneous sweep collapse to
    /// Eq. 9 for any inputs.
    #[test]
    fn hetero_collapses_to_eq9(
        value in 0.0f64..20.0,
        size in 1u64..5_000,
        cost in 0.1f64..500.0,
        disk_mult in 1u64..20,
    ) {
        let disk = size * disk_mult;
        let spec = NodeSpec::new(cost, disk);
        let total: u64 = ideal_replicas_hetero(50, value, size, &[NodeClass::unbounded(spec)])
            .iter()
            .sum();
        prop_assert_eq!(total, ideal_replicas(50, value, size, &spec));
    }

    /// Best-response dynamics always converge to the closed form.
    #[test]
    fn market_always_matches_closed_form(
        frags in proptest::collection::vec((1u64..2_000, 0.0f64..10.0), 1..20),
    ) {
        let mut pos = 0u64;
        let stats: Vec<FragmentStats> = frags
            .into_iter()
            .enumerate()
            .map(|(i, (size, value))| {
                let s = FragmentStats {
                    id: FragmentId(i as u64),
                    range: FragmentRange::new(pos, pos + size),
                    value,
                    error: 0.0,
                };
                pos += size;
                s
            })
            .collect();
        let policy = ReplicationPolicy::new(50, NodeSpec::new(40.0, 4_000))
            .with_max_replicas(500);
        let out = simulate_market(&stats, &policy, MarketConfig::default());
        prop_assert!(out.converged);
        for (s, &r) in stats.iter().zip(&out.replicas) {
            let ideal = ideal_replicas(50, s.value, s.range.size(), &policy.spec).min(500);
            prop_assert_eq!(r, ideal, "fragment {}", s.id);
        }
    }
}

/// The invariant audits themselves, property-tested: every artifact the real
/// pipeline produces must pass its audit, and deliberately corrupted
/// artifacts must fail it.
#[cfg(feature = "invariant-audit")]
mod audit_props {
    use super::*;
    use nashdb_core::audit::{
        audit_equilibrium, audit_fragmentation, audit_packing, audit_transition,
        audit_tree_consistency, audit_value_tree, AuditError,
    };
    use nashdb_core::fragment::{fragment_stats, optimal_fragmentation, Fragmentation};
    use nashdb_core::replication::ClusterScheme;
    use nashdb_core::transition::{plan_transition, IntervalSet};

    fn arb_interval_nodes() -> impl Strategy<Value = Vec<IntervalSet>> {
        proptest::collection::vec(
            proptest::collection::vec((0u64..1_000, 1u64..300), 1..4),
            0..5,
        )
        .prop_map(|nodes| {
            nodes
                .into_iter()
                .map(|runs| IntervalSet::from_intervals(runs.into_iter().map(|(s, l)| (s, s + l))))
                .collect()
        })
    }

    // Test-helper panics are the failure mode here, but this free fn sits
    // outside any #[cfg(test)] scope so `allow-unwrap-in-tests` misses it.
    #[allow(clippy::unwrap_used)]
    fn build_scheme(
        chunks: &[Chunk],
        k: usize,
    ) -> Result<ClusterScheme, nashdb_core::replication::PackError> {
        let frag = optimal_fragmentation(chunks, k).unwrap();
        let stats = fragment_stats(&frag, chunks).unwrap();
        let policy = ReplicationPolicy::new(50, NodeSpec::new(1_000.0, frag.table_len()));
        ClusterScheme::build(&stats, policy)
    }

    proptest! {
        /// §4: a churned estimator always passes the balance and
        /// window-consistency audit.
        #[test]
        fn value_tree_audit_accepts_real_estimators(
            scans in arb_scans(),
            window in 1usize..24,
        ) {
            let mut est = TupleValueEstimator::new(window);
            for s in &scans {
                est.observe(*s);
            }
            prop_assert!(audit_value_tree(&est).is_ok());
        }

        /// §4 negative: a window claiming a scan the tree never saw is
        /// always caught.
        #[test]
        fn value_tree_audit_rejects_fabricated_scan(scans in arb_scans()) {
            let mut est = TupleValueEstimator::new(scans.len());
            for s in &scans {
                est.observe(*s);
            }
            let mut claimed: Vec<PricedScan> = est.scans().copied().collect();
            claimed.push(PricedScan::new(0, TABLE, 1_000.0));
            prop_assert!(audit_tree_consistency(est.tree(), &claimed).is_err());
        }

        /// §5: the DP fragmenter's output always passes the audit that
        /// re-runs the DP against it.
        #[test]
        fn fragmentation_audit_accepts_optimal(chunks in arb_chunks(), k in 1usize..6) {
            let frag = optimal_fragmentation(&chunks, k).unwrap();
            prop_assert!(audit_fragmentation(&frag, &chunks, k).is_ok());
        }

        /// §5 negative: a fragmentation for the wrong table length is
        /// always a coverage gap.
        #[test]
        fn fragmentation_audit_rejects_wrong_table(chunks in arb_chunks()) {
            let table = chunks.last().map_or(0, |c| c.end);
            let frag = Fragmentation::from_boundaries(vec![0, table + 7]);
            let is_gap = matches!(
                audit_fragmentation(&frag, &chunks, 8),
                Err(AuditError::CoverageGap { .. })
            );
            prop_assert!(is_gap);
        }

        /// §6: a scheme built by Eq. 9 + BFFD always satisfies the packing
        /// constraints and is a Nash equilibrium.
        #[test]
        fn built_scheme_audits_clean(chunks in arb_chunks(), k in 1usize..6) {
            let scheme = build_scheme(&chunks, k).unwrap();
            prop_assert!(
                audit_packing(&scheme.nodes, &scheme.decisions, scheme.policy.spec.disk).is_ok()
            );
            prop_assert!(audit_equilibrium(&scheme.economic_config()).is_ok());
        }

        /// §6 negative: duplicating any replica on any node breaks either
        /// the class constraint or the replica-count bookkeeping.
        #[test]
        fn packing_audit_rejects_duplicate(chunks in arb_chunks()) {
            let mut scheme = build_scheme(&chunks, 4).unwrap();
            let f = scheme.nodes[0][0];
            scheme.nodes[0].push(f);
            prop_assert!(
                audit_packing(&scheme.nodes, &scheme.decisions, scheme.policy.spec.disk).is_err()
            );
        }

        /// §6 negative: inflating a replica count without repacking is
        /// structurally malformed.
        #[test]
        fn equilibrium_audit_rejects_phantom_replicas(chunks in arb_chunks()) {
            let mut scheme = build_scheme(&chunks, 4).unwrap();
            scheme.decisions[0].replicas += 5;
            scheme.decisions[0].forced = false;
            prop_assert!(audit_equilibrium(&scheme.economic_config()).is_err());
        }

        /// §7: the Hungarian plan always passes the structural audit and
        /// the brute-force minimality certificate (instances here are small
        /// enough that the certificate always runs).
        #[test]
        fn transition_audit_accepts_hungarian_plans(
            old in arb_interval_nodes(),
            new in arb_interval_nodes(),
        ) {
            let plan = plan_transition(&old, &new);
            prop_assert!(audit_transition(&old, &new, &plan).is_ok());
        }

        /// §7 negative: any tampering with the claimed total is caught.
        #[test]
        fn transition_audit_rejects_tampered_total(
            old in arb_interval_nodes(),
            new in arb_interval_nodes(),
        ) {
            let mut plan = plan_transition(&old, &new);
            plan.total_transfer += 1;
            prop_assert!(audit_transition(&old, &new, &plan).is_err());
        }
    }
}
