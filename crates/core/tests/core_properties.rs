//! Property tests over `nashdb-core` invariants not covered by the
//! workspace-level suite: AVL structural health under churn, error-function
//! agreement with direct computation, FindSplit ≡ the chunk-restricted
//! search, heterogeneous ≡ homogeneous replication on uniform classes, and
//! market dynamics ≡ the closed form.

use proptest::prelude::*;

use nashdb_core::economics::NodeSpec;
use nashdb_core::fragment::{find_split, ChunkPrefix, FragmentRange, FragmentStats};
use nashdb_core::ids::FragmentId;
use nashdb_core::replication::hetero::{ideal_replicas_hetero, NodeClass};
use nashdb_core::replication::market::{simulate_market, MarketConfig};
use nashdb_core::replication::{ideal_replicas, ReplicationPolicy};
use nashdb_core::value::{Chunk, PricedScan, TupleValueEstimator};

const TABLE: u64 = 5_000;

fn arb_scans() -> impl Strategy<Value = Vec<PricedScan>> {
    proptest::collection::vec(
        (0..TABLE - 1, 1..TABLE / 2, 0.01f64..5.0),
        1..60,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(s, l, p)| PricedScan::new(s, (s + l).min(TABLE), p))
            .collect()
    })
}

fn arb_chunks() -> impl Strategy<Value = Vec<Chunk>> {
    proptest::collection::vec((1u64..40, 0.0f64..4.0), 1..12).prop_map(|parts| {
        let mut out = Vec::new();
        let mut pos = 0;
        for (len, value) in parts {
            out.push(Chunk {
                start: pos,
                end: pos + len,
                value,
            });
            pos += len;
        }
        out
    })
}

proptest! {
    /// The estimator's value function always integrates to the window's
    /// mean query price, and per-tuple values stay within the maximum
    /// possible scan weight.
    #[test]
    fn estimator_values_are_bounded(scans in arb_scans(), window in 1usize..24) {
        let mut est = TupleValueEstimator::new(window);
        let mut recent: Vec<PricedScan> = Vec::new();
        for s in &scans {
            est.observe(*s);
            recent.push(*s);
            if recent.len() > window {
                recent.remove(0);
            }
        }
        let max_weight = recent.iter().map(|s| s.weight()).fold(0.0, f64::max);
        for c in est.chunks(TABLE) {
            // No tuple can be worth more than the sum of all windowed
            // weights / |W|... a simpler sound bound: |W| × max weight.
            prop_assert!(c.value <= max_weight * recent.len() as f64 + 1e-9);
            prop_assert!(c.value >= 0.0);
        }
    }

    /// ChunkPrefix::error equals the direct unnormalized variance computed
    /// tuple by tuple.
    #[test]
    fn error_matches_direct_variance(chunks in arb_chunks()) {
        let prefix = ChunkPrefix::new(&chunks);
        let table = prefix.table_len();
        // Expand V(x) per tuple (tables here are tiny).
        let mut v = Vec::with_capacity(table as usize);
        for c in &chunks {
            for _ in c.start..c.end {
                v.push(c.value);
            }
        }
        // A handful of ranges.
        for (a, b) in [(0, table), (0, table.div_ceil(2)), (table / 3, table)] {
            if a >= b {
                continue;
            }
            let xs = &v[a as usize..b as usize];
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let direct: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
            let fast = prefix.error(a, b);
            prop_assert!(
                (fast - direct).abs() < 1e-6 * (1.0 + direct),
                "range {a}..{b}: fast {fast} vs direct {direct}"
            );
        }
    }

    /// Algorithm 2 over all tuples never beats (and never loses to) the
    /// chunk-boundary-restricted split the production code uses.
    #[test]
    fn findsplit_equals_boundary_search(chunks in arb_chunks()) {
        let prefix = ChunkPrefix::new(&chunks);
        let table = prefix.table_len();
        if table < 2 {
            return Ok(());
        }
        let literal = find_split(&chunks, 0, table).expect("table >= 2");
        let boundary = chunks[..chunks.len().saturating_sub(1)]
            .iter()
            .map(|c| prefix.error(0, c.end) + prefix.error(c.end, table))
            .fold(f64::INFINITY, f64::min);
        if boundary.is_finite() {
            prop_assert!((literal.error - boundary).abs() < 1e-6 * (1.0 + boundary));
        } else {
            // Single chunk: any interior point splits a constant run.
            prop_assert!(literal.error < 1e-9);
        }
    }

    /// One uniform node class makes the heterogeneous sweep collapse to
    /// Eq. 9 for any inputs.
    #[test]
    fn hetero_collapses_to_eq9(
        value in 0.0f64..20.0,
        size in 1u64..5_000,
        cost in 0.1f64..500.0,
        disk_mult in 1u64..20,
    ) {
        let disk = size * disk_mult;
        let spec = NodeSpec::new(cost, disk);
        let total: u64 = ideal_replicas_hetero(50, value, size, &[NodeClass::unbounded(spec)])
            .iter()
            .sum();
        prop_assert_eq!(total, ideal_replicas(50, value, size, &spec));
    }

    /// Best-response dynamics always converge to the closed form.
    #[test]
    fn market_always_matches_closed_form(
        frags in proptest::collection::vec((1u64..2_000, 0.0f64..10.0), 1..20),
    ) {
        let mut pos = 0u64;
        let stats: Vec<FragmentStats> = frags
            .into_iter()
            .enumerate()
            .map(|(i, (size, value))| {
                let s = FragmentStats {
                    id: FragmentId(i as u64),
                    range: FragmentRange::new(pos, pos + size),
                    value,
                    error: 0.0,
                };
                pos += size;
                s
            })
            .collect();
        let policy = ReplicationPolicy::new(50, NodeSpec::new(40.0, 4_000))
            .with_max_replicas(500);
        let out = simulate_market(&stats, &policy, MarketConfig::default());
        prop_assert!(out.converged);
        for (s, &r) in stats.iter().zip(&out.replicas) {
            let ideal = ideal_replicas(50, s.value, s.range.size(), &policy.spec).min(500);
            prop_assert_eq!(r, ideal, "fragment {}", s.id);
        }
    }
}
