//! Fixture: a justified `determinism-taint` escape silences the source —
//! and, because escaped sources do not taint their callers, the caller
//! stays clean too. No findings expected.

use std::collections::HashMap;

fn build_index() -> HashMap<u64, u64> {
    HashMap::new()
}

fn audit_order() -> Vec<u64> {
    let index = build_index();
    // nashdb-lint: allow(determinism-taint) -- audit-only pass; the caller re-sorts before use
    index.keys().copied().collect()
}

pub fn audited() -> usize {
    let ids = audit_order();
    ids.len()
}
