//! Fixture: hash iterations whose statements sanitize the order — sorted
//! in place, collected into BTree containers, or reduced
//! order-insensitively. No findings expected, including through helper
//! indirection.

use std::collections::{BTreeMap, BTreeSet, HashMap};

fn build_index() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn total(m: &HashMap<u64, u64>) -> u64 {
    m.values().sum()
}

pub fn ordered(m: &HashMap<u64, u64>) -> BTreeMap<u64, u64> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>()
}

pub fn stable_order() -> Vec<u64> {
    let index = build_index();
    let keys: BTreeSet<u64> = index.keys().copied().collect();
    keys.into_iter().collect()
}

pub fn hottest() -> Option<u64> {
    let index = build_index();
    index.values().copied().max()
}
