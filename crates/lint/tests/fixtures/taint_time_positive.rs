//! Fixture: wall-clock and raw-thread sources in a deterministic crate.
//! Unlike iteration sources these cannot be sanitized by a sink in the
//! same statement — only escaped with a justification.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now() //~ determinism-taint
}

pub fn epoch_ms() -> u64 {
    let now = std::time::SystemTime::now(); //~ determinism-taint
    let _elapsed = now;
    0
}

pub fn fan_out() {
    let handle = std::thread::spawn(|| 1 + 1); //~ determinism-taint
    let _joined = handle;
}
