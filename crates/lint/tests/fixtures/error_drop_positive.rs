//! Fixture: discarded workspace `Result`s and `#[must_use]` returns.
//! Every marked line must trip `error-drop`.

#[derive(Debug)]
pub struct StoreError;

pub struct Store;

impl Store {
    pub fn persist(&self) -> Result<(), StoreError> {
        Ok(())
    }
}

pub fn apply_scheme() -> Result<u64, StoreError> {
    Ok(1)
}

#[must_use]
pub fn plan_cost() -> u64 {
    1
}

pub fn flush(store: &Store) {
    let _ = store.persist(); //~ error-drop
}

pub fn reconfigure() {
    let _ = apply_scheme(); //~ error-drop
}

pub fn estimate() {
    plan_cost(); //~ error-drop
}
