//! Fixture: data-dependent integer accumulation inside loops. Every marked
//! line must trip `unchecked-arith-expr`.

pub fn spend(sizes: &[u64]) -> u64 {
    let mut total = 0u64;
    for s in sizes {
        total += *s; //~ unchecked-arith-expr
    }
    total
}

pub fn fold(xs: &[u64]) -> u64 {
    let mut sum: u64 = 0;
    for x in xs {
        sum = sum + x; //~ unchecked-arith-expr
    }
    sum
}

pub fn compound(factors: &[usize]) -> usize {
    let mut product: usize = 1;
    for f in factors {
        product *= f; //~ unchecked-arith-expr
    }
    product
}

pub fn drain(queue: &mut Vec<u64>) -> u64 {
    let mut consumed = 0u64;
    while let Some(size) = queue.pop() {
        consumed += size; //~ unchecked-arith-expr
    }
    consumed
}

pub struct Meter {
    pub used: u64,
}

impl Meter {
    pub fn absorb(&mut self, sizes: &[u64]) {
        for s in sizes {
            self.used += *s; //~ unchecked-arith-expr
        }
    }
}
