//! Fixture: unchecked arithmetic on integer accumulators. Every marked line
//! must trip `unchecked-arith`.

pub fn spend(sizes: &[u64]) -> u64 {
    let mut total = 0u64;
    for s in sizes {
        total += *s; //~ unchecked-arith
    }
    total
}

pub fn fill(used: &mut [u64], n: usize, size: u64) {
    used[n] += size; //~ unchecked-arith
}

pub fn fold(xs: &[u64]) -> u64 {
    let mut sum: u64 = 0;
    for x in xs {
        sum = sum + x; //~ unchecked-arith
    }
    sum
}

pub fn scale(count: usize, factor: usize) -> usize {
    let mut count = count;
    count *= factor; //~ unchecked-arith
    count
}
