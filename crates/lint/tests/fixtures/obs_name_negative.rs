//! Fixture: registry-conformant obs names — nothing here may trip
//! `obs-name-prefix`.

pub fn emit(v: u64) {
    crate::obs_hooks::record("routing.fast_path", v);
    nashdb_obs::counter_add("fragment.splits", 1);
    nashdb_obs::gauge_set("packing.bins", v);
    nashdb_obs::record_duration("perf.routing.incremental_ns", v);
    let _g = nashdb_obs::span("pipeline");
    let _h = nashdb_obs::span("replication");
    // Slash-joined paths are snapshot lookups, not creation sites.
    let _s = lookup_span("pipeline/reconfigure/scheme");
}

fn lookup_span(_path: &str) {}
