//! Fixture: accumulator arithmetic that must NOT trip `unchecked-arith` —
//! saturating/checked forms, non-accumulator names, non-integer
//! accumulators, escaped sites, and test-only code.

pub fn safe_spend(sizes: &[u64]) -> u64 {
    let mut total = 0u64;
    for s in sizes {
        total = total.saturating_add(*s);
    }
    total
}

pub fn safe_fill(used: &mut [u64], n: usize, size: u64) {
    used[n] = used[n].saturating_add(size);
}

pub fn not_an_accumulator(xs: &[u64]) -> u64 {
    let mut widgets = 0u64;
    for x in xs {
        widgets += *x;
    }
    widgets
}

pub fn float_accumulator(xs: &[f64]) -> f64 {
    let mut total_f = 0.0f64;
    for x in xs {
        total_f += *x;
    }
    total_f
}

pub fn escaped(sizes: &[u64]) -> u64 {
    let mut total = 0u64;
    for s in sizes {
        // nashdb-lint: allow(unchecked-arith) -- sizes are validated < 2^32 upstream
        total += *s;
    }
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut sum = 0u64;
        sum += 1;
        assert_eq!(sum, 1);
    }
}
