//! Fixture: loop arithmetic that must NOT trip `unchecked-arith-expr` —
//! saturating/checked forms, constant cursor steps, bounded `while`
//! cursors, loop-local (per-iteration) bindings, floats, arithmetic
//! outside any loop, escaped sites, and test-only code.

pub fn safe_spend(sizes: &[u64]) -> u64 {
    let mut total = 0u64;
    for s in sizes {
        total = total.saturating_add(*s);
    }
    total
}

pub fn cursor(toks: &[u64]) -> u64 {
    let mut pos = 0usize;
    let mut last = 0u64;
    while pos < toks.len() {
        last = toks[pos];
        pos += 1;
    }
    last
}

pub fn skip_pairs(toks: &[u64]) -> usize {
    let mut pos = 0usize;
    loop {
        if pos >= toks.len() {
            break;
        }
        pos += 2;
    }
    pos
}

pub fn per_round(rounds: &[Vec<u64>]) -> Vec<u64> {
    let mut out = Vec::new();
    for r in rounds {
        // Declared inside the loop: reset every iteration, not an
        // unbounded accumulator.
        let mut batch = 0u64;
        batch += r.len() as u64;
        out.push(batch);
    }
    out
}

pub fn float_accumulator(xs: &[f64]) -> f64 {
    let mut total_f = 0.0f64;
    for x in xs {
        total_f += *x;
    }
    total_f
}

pub fn once(a: u64, b: u64) -> u64 {
    let mut t = a;
    t += b;
    t
}

pub fn escaped(sizes: &[u64]) -> u64 {
    let mut total = 0u64;
    for s in sizes {
        // nashdb-lint: allow(unchecked-arith-expr) -- sizes are validated < 2^32 upstream
        total += *s;
    }
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut sum = 0u64;
        for x in [1u64, 2, 3] {
            sum += x;
        }
        assert_eq!(sum, 6);
    }
}
