//! Fixture: metric/span name literals outside the stage registry. The
//! marked lines must trip `obs-name-prefix` (linted under a non-exempt
//! crate path).

pub fn emit(v: u64) {
    crate::obs_hooks::record("bogus.metric", v); //~ obs-name-prefix
    nashdb_obs::counter_add("queue_depth", 1); //~ obs-name-prefix
    nashdb_obs::gauge_set("packing-bffd.bins", v); //~ obs-name-prefix
    let _g = nashdb_obs::span("warp"); //~ obs-name-prefix
}
