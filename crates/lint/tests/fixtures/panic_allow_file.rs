//! Fixture: a file-wide escape. An audit-style module whose entire job is
//! to assert invariants — zero findings expected.
// nashdb-lint: allow-file(panic-in-lib) -- invariant-audit module; panicking is its contract

pub fn audit_density(ids: &[u64]) {
    for (i, id) in ids.iter().enumerate() {
        assert!(*id == i as u64, "non-dense id at {i}");
    }
    assert!(!ids.is_empty(), "empty id space");
}
