//! Fixture: panic-adjacent code that must NOT trip `panic-in-lib` —
//! `debug_assert*` (vanishes in release), test-only asserts, and escaped
//! documented contracts.

pub fn checked(x: u64) -> u64 {
    debug_assert!(x > 0, "callers validate x");
    debug_assert_eq!(x % 2, 0);
    x
}

pub fn contract(x: u64) -> u64 {
    // nashdb-lint: allow(panic-in-lib) -- documented constructor contract; see module docs
    assert!(x < 1_000, "x out of documented range");
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asserts_fine_in_tests() {
        assert_eq!(checked(2), 2);
        assert!(contract(3) == 3);
    }
}
