//! Fixture: obs-gated items whose no-op twins exist — nothing here may
//! trip `obs-fallback-parity`.

#[cfg(feature = "obs")]
pub fn record_stage(name: &str, value: u64) {
    nashdb_obs::record(name, value);
}

#[cfg(not(feature = "obs"))]
pub fn record_stage(_name: &str, _value: u64) {}

#[cfg(feature = "obs")]
pub use nashdb_obs::span as stage_span;

#[cfg(not(feature = "obs"))]
pub fn stage_span(_segment: &str) {}

#[cfg(feature = "obs")]
pub struct Stopwatch {
    started: u64,
}

#[cfg(not(feature = "obs"))]
pub struct Stopwatch;
