//! Fixture: consumed or out-of-scope fallible calls that must NOT trip
//! `error-drop` — `?`, binding, matching, std (unresolvable) calls,
//! escaped sites, and test code.

#[derive(Debug)]
pub struct StoreError;

pub fn apply_scheme() -> Result<u64, StoreError> {
    Ok(1)
}

pub fn propagated() -> Result<u64, StoreError> {
    let v = apply_scheme()?;
    Ok(v)
}

pub fn bound_and_handled() -> u64 {
    let r = apply_scheme();
    match r {
        Ok(v) => v,
        Err(_) => 0,
    }
}

pub fn std_calls_are_out_of_scope(path: &str) {
    // Unresolvable (std) call: precision over recall.
    let _ = std::fs::remove_file(path);
}

pub fn escaped() {
    // nashdb-lint: allow(error-drop) -- best-effort cache warm-up; failure is benign
    let _ = apply_scheme();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_discard() {
        let _ = super::apply_scheme();
    }
}
