//! Fixture: `#[cfg(feature = "obs")]` items with no `not(...)` twin. The
//! marked attribute lines must trip `obs-fallback-parity`.

#[cfg(feature = "obs")] //~ obs-fallback-parity
pub fn emit_hook(name: &str, value: u64) {
    nashdb_obs::counter_add(name, value);
}

#[cfg(feature = "obs")] //~ obs-fallback-parity
pub struct StageGuard {
    started: u64,
}

#[cfg(feature = "obs")]
pub fn paired_hook() {}

#[cfg(not(feature = "obs"))]
pub fn paired_hook() {}
