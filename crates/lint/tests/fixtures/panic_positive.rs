//! Fixture: panicking macros in non-test library code. Every marked line
//! must trip `panic-in-lib`.

pub fn broken(x: u64) -> u64 {
    assert!(x > 0, "x must be positive"); //~ panic-in-lib
    if x == 3 {
        panic!("three is right out"); //~ panic-in-lib
    }
    match x {
        0 => unreachable!(), //~ panic-in-lib
        _ => x,
    }
}

pub fn later() {
    todo!() //~ panic-in-lib
}
