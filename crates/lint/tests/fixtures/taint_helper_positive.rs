//! Fixture: determinism taint the token rule cannot see. The map arrives
//! through a helper's *return value*, so `map-iter-order`'s typed-name
//! heuristic never types the binding — only the call-graph rule fires.

use std::collections::HashMap;

fn build_index() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn chunk_order() -> Vec<u64> {
    let index = build_index();
    let mut out = Vec::new();
    for k in index.keys() { //~ determinism-taint
        out.push(*k);
    }
    out
}

pub struct Router {
    table: HashMap<u64, u64>,
}

impl Router {
    fn table(&self) -> &HashMap<u64, u64> {
        &self.table
    }

    pub fn targets(&self) -> Vec<u64> {
        // A one-call getter hides the receiver type from the token rule.
        self.table().values().copied().collect() //~ determinism-taint
    }
}
