//! Fixture: hash-map uses that must NOT trip `map-iter-order` — sorted or
//! order-insensitive sinks, BTree collection, membership tests, escaped
//! sites, and test-only code.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn reduced_sum(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum::<u64>()
}

pub fn reordered(m: &HashMap<u32, u32>) -> BTreeMap<u32, u32> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u32, u32>>()
}

pub fn counted(m: &HashMap<u32, u32>) -> usize {
    m.keys().count()
}

pub fn extremum(seen: &HashSet<u64>) -> Option<u64> {
    seen.iter().copied().max()
}

pub fn membership(m: &HashMap<u32, u32>, k: u32) -> bool {
    m.contains_key(&k)
}

pub fn escaped_fold(seen: &HashSet<u64>) -> u64 {
    let mut out = 0;
    // nashdb-lint: allow(map-iter-order) -- xor fold is commutative
    for s in seen {
        out ^= *s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt(m: &HashMap<u32, u32>) {
        let _: Vec<u32> = m.values().copied().collect();
    }
}
