//! Fixture: the deprecated `unchecked-arith` escape id still silences the
//! successor rule `unchecked-arith-expr` (alias canonicalization). No
//! findings expected.

pub fn legacy(sizes: &[u64]) -> u64 {
    let mut total = 0u64;
    for s in sizes {
        // nashdb-lint: allow(unchecked-arith) -- validated < 2^32 upstream; pre-rename escape
        total += *s;
    }
    total
}
