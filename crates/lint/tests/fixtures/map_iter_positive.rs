//! Fixture: hash-ordered iteration leaking into outputs. Every marked line
//! must trip `map-iter-order` when linted under a deterministic crate path.
use std::collections::{HashMap, HashSet};

pub fn leak_values(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect() //~ map-iter-order
}

pub fn leak_pairs(m: &HashMap<u32, u32>) -> Vec<(u32, u32)> {
    m.iter().map(|(k, v)| (*k, *v)).collect() //~ map-iter-order
}

pub fn leak_loop(seen: &HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for s in seen { //~ map-iter-order
        out.push(*s);
    }
    out
}

pub fn leak_drain(mut pending: HashMap<u64, u64>) -> Vec<u64> {
    pending.drain().map(|(_, v)| v).collect() //~ map-iter-order
}
