//! Fixture-driven tests for the rule engine.
//!
//! Positive fixtures mark each offending line with a trailing `//~ rule-id`
//! comment (rustc UI-test style); the harness asserts the engine reports
//! exactly that set of `(line, rule)` pairs. Negative fixtures carry no
//! markers and must produce no findings. On top of the corpus there are
//! applicability tests (crate scoping, binary targets, the `num` module
//! exemption), the escape-justification meta-rule, the PR 3 regression
//! gate, and a self-check that lints the real workspace against the
//! committed baseline.

// Test-only helper functions; `allow-expect-in-tests` covers `#[test]`
// bodies but not the helpers they call.
#![allow(clippy::expect_used)]

use std::path::{Path, PathBuf};

use nashdb_lint::{lint_source, lint_sources, lint_workspace, Baseline, Finding};

/// `(line, rule)` pairs a fixture's `//~` markers promise.
fn expected(src: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = src
        .lines()
        .enumerate()
        .filter_map(|(i, l)| {
            l.split("//~")
                .nth(1)
                .map(|rule| (i + 1, rule.trim().to_owned()))
        })
        .collect();
    out.sort();
    out
}

fn reported(findings: &[Finding]) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = findings
        .iter()
        .map(|f| (f.line, f.rule.to_owned()))
        .collect();
    out.sort();
    out
}

/// Lints a fixture under a deterministic, non-exempt crate path and checks
/// the reported `(line, rule)` set against the fixture's own markers.
fn check_fixture(name: &str, src: &str) {
    let path = format!("crates/core/src/{name}.rs");
    let want = expected(src);
    let got = reported(&lint_source(&path, src));
    assert_eq!(got, want, "fixture {name}: findings do not match markers");
}

macro_rules! fixture_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            check_fixture(
                stringify!($name),
                include_str!(concat!("fixtures/", stringify!($name), ".rs")),
            );
        }
    };
}

fixture_test!(map_iter_positive);
fixture_test!(map_iter_negative);
fixture_test!(unchecked_arith_positive);
fixture_test!(unchecked_arith_negative);
fixture_test!(arith_alias_escape);
fixture_test!(taint_helper_positive);
fixture_test!(taint_sanitized_negative);
fixture_test!(taint_time_positive);
fixture_test!(taint_allow_escape);
fixture_test!(error_drop_positive);
fixture_test!(error_drop_negative);
fixture_test!(obs_parity_positive);
fixture_test!(obs_parity_negative);
fixture_test!(obs_name_positive);
fixture_test!(obs_name_negative);
fixture_test!(panic_positive);
fixture_test!(panic_negative);
fixture_test!(panic_allow_file);

/// The acceptance scenario for the semantic layer: a `HashMap` iteration
/// moved behind a one-call helper *in another crate*. The token rule
/// cannot fire in the helper's crate (not deterministic) nor at the call
/// site (no hash-typed receiver); the taint rule reports the frontier
/// call with provenance.
#[test]
fn taint_crosses_crates_through_a_helper() {
    let helper = "\
use std::collections::HashMap;
pub fn chunk_ids(m: &HashMap<u64, u64>) -> Vec<u64> {
    m.keys().copied().collect()
}
";
    let caller = "\
pub fn plan(m: &std::collections::HashMap<u64, u64>) -> Vec<u64> {
    nashdb_workload::helpers::chunk_ids(m)
}

pub fn plan_sorted(m: &std::collections::HashMap<u64, u64>) -> Vec<u64> {
    let ids: std::collections::BTreeSet<u64> =
        nashdb_workload::helpers::chunk_ids(m).into_iter().collect();
    ids.into_iter().collect()
}
";
    let findings = lint_sources(&[
        (
            "crates/workload/src/helpers.rs".to_owned(),
            helper.to_owned(),
        ),
        ("crates/core/src/plan.rs".to_owned(), caller.to_owned()),
    ]);
    // Exactly one finding: the unsanitized frontier call in `plan`. The
    // helper itself is out of scope, `map-iter-order` never fires, and
    // `plan_sorted` sanitizes in the call statement.
    assert_eq!(
        reported(&findings),
        vec![(2, "determinism-taint".to_owned())],
        "got: {findings:?}"
    );
    assert_eq!(findings[0].file, "crates/core/src/plan.rs");
    assert!(
        findings[0].message.contains("chunk_ids")
            && findings[0]
                .message
                .contains("crates/workload/src/helpers.rs"),
        "provenance chain names the helper: {}",
        findings[0].message
    );
}

#[test]
fn map_iter_only_applies_to_deterministic_crates() {
    let src = include_str!("fixtures/map_iter_positive.rs");
    assert!(
        lint_source("crates/baselines/src/demo.rs", src).is_empty(),
        "baselines crate outputs are compared, not replayed; hash order is fine there"
    );
}

#[test]
fn binaries_may_panic() {
    let src = include_str!("fixtures/panic_positive.rs");
    assert!(lint_source("crates/core/src/main.rs", src).is_empty());
    assert!(lint_source("crates/bench/src/bin/nashdb_bench.rs", src).is_empty());
}

#[test]
fn num_module_owns_its_arithmetic() {
    let src = include_str!("fixtures/unchecked_arith_positive.rs");
    assert!(lint_source("crates/core/src/num.rs", src).is_empty());
    assert!(lint_source("crates/core/src/num/wide.rs", src).is_empty());
}

#[test]
fn unjustified_escape_is_a_finding_and_does_not_silence() {
    let src = "\
pub fn contract(x: u64) -> u64 {
    // nashdb-lint: allow(panic-in-lib)
    assert!(x < 10);
    x
}
";
    let got = reported(&lint_source("crates/core/src/demo.rs", src));
    assert_eq!(
        got,
        vec![
            (2, "escape-needs-justification".to_owned()),
            (3, "panic-in-lib".to_owned()),
        ]
    );
}

/// The workspace root, from this crate's manifest dir.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

fn committed_baseline() -> Baseline {
    let raw = std::fs::read_to_string(workspace_root().join("lint-baseline.json"))
        .expect("lint-baseline.json is committed at the workspace root");
    Baseline::from_json_str(&raw).expect("committed baseline parses")
}

/// PR 3 regression gate: the `economic_config()` bug — iterating a
/// `HashMap` of per-table weights straight into an output vector — must be
/// reported in `crates/core/src/replication/mod.rs`, and the committed
/// baseline must hold **zero** `map-iter-order` allowance for that file, so
/// reintroducing the bug fails CI rather than being absorbed as debt.
#[test]
fn reintroduced_economic_config_bug_fails_the_gate() {
    let src = "\
use std::collections::HashMap;

pub fn economic_config(weights: &HashMap<String, f64>) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (table, w) in weights {
        out.push((table.clone(), *w));
    }
    out
}
";
    let findings = lint_source("crates/core/src/replication/mod.rs", src);
    let map_iter: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "map-iter-order")
        .collect();
    assert_eq!(map_iter.len(), 1, "the hash-ordered loop must be reported");
    assert_eq!(map_iter[0].line, 5);

    let outcome = committed_baseline().check(&findings.clone());
    assert!(
        outcome.over.iter().any(|f| f.rule == "map-iter-order"),
        "baseline must hold no map-iter-order allowance for replication/mod.rs"
    );
}

/// Self-check: the real workspace lints clean modulo the committed
/// baseline, and the baseline carries no stale (over-generous) groups.
#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = workspace_root();
    let findings = lint_workspace(&root).expect("workspace walk succeeds");
    let outcome = committed_baseline().check(&findings);
    assert!(
        outcome.over.is_empty(),
        "findings beyond the baseline:\n{}",
        outcome
            .over
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.stale.is_empty(),
        "stale baseline groups (regenerate with --write-baseline): {:?}",
        outcome.stale
    );
}
