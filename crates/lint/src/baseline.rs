//! The committed finding baseline (`lint-baseline.json`).
//!
//! The baseline is a **ratchet**, not a suppression list: it records, per
//! `(rule, file)`, how many findings existed when the rule landed. CI fails
//! when a file *exceeds* its allowance — so new violations are caught even
//! in files with legacy sites — and reports (without failing) when a file
//! drops below it, so the allowance can be ratcheted down. Counts rather
//! than line numbers keep the baseline stable under unrelated edits.
//!
//! The JSON subset here is hand-rolled like `nashdb-obs`'s: this crate must
//! stay dependency-free.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// Baseline schema version.
pub const BASELINE_VERSION: u64 = 1;

/// Allowed finding counts keyed by `(rule, file)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u64>,
}

/// Baseline parse failure: position (byte offset) and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// Byte offset the parser stopped at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "baseline parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for BaselineError {}

/// The verdict of checking findings against a baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings in groups that exceed (or are absent from) the baseline.
    /// When a group exceeds its allowance every finding in the group is
    /// listed — counts cannot tell which specific site is new.
    pub over: Vec<Finding>,
    /// `(rule, file, allowed, actual)` for groups now *under* allowance;
    /// the baseline should be regenerated to ratchet down.
    pub stale: Vec<(String, String, u64, u64)>,
}

impl Baseline {
    /// Builds a baseline allowing exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.rule.to_owned(), f.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Number of `(rule, file)` groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no allowances exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Checks findings against the allowances.
    pub fn check(&self, findings: &[Finding]) -> BaselineOutcome {
        let mut groups: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            groups
                .entry((f.rule.to_owned(), f.file.clone()))
                .or_default()
                .push(f);
        }
        let mut out = BaselineOutcome::default();
        for (key, group) in &groups {
            let allowed = self.entries.get(key).copied().unwrap_or(0);
            let actual = group.len() as u64;
            if actual > allowed {
                out.over.extend(group.iter().map(|f| (*f).clone()));
            } else if actual < allowed {
                out.stale
                    .push((key.0.clone(), key.1.clone(), allowed, actual));
            }
        }
        for (key, &allowed) in &self.entries {
            if !groups.contains_key(key) {
                out.stale.push((key.0.clone(), key.1.clone(), allowed, 0));
            }
        }
        out
    }

    /// Serializes to the committed JSON form (sorted, newline-terminated).
    pub fn to_json_string(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"version\": {BASELINE_VERSION},\n"));
        s.push_str("  \"entries\": [\n");
        let mut first = true;
        for ((rule, file), count) in &self.entries {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!(
                "    {{ \"rule\": {}, \"file\": {}, \"count\": {count} }}",
                quote(rule),
                quote(file)
            ));
        }
        if !first {
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses the committed JSON form.
    pub fn from_json_str(raw: &str) -> Result<Baseline, BaselineError> {
        let mut p = Parser {
            src: raw.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let top = p.object()?;
        match top.get("version") {
            Some(Value::Number(BASELINE_VERSION)) => {}
            other => {
                return Err(BaselineError {
                    at: 0,
                    message: format!(
                        "unsupported baseline version {other:?} (expected {BASELINE_VERSION})"
                    ),
                })
            }
        }
        let mut entries = BTreeMap::new();
        let Some(Value::Array(list)) = top.get("entries") else {
            return Err(BaselineError {
                at: 0,
                message: "missing \"entries\" array".to_owned(),
            });
        };
        for v in list {
            let Value::Object(obj) = v else {
                return Err(BaselineError {
                    at: 0,
                    message: "entries must be objects".to_owned(),
                });
            };
            let (Some(Value::String(rule)), Some(Value::String(file)), Some(Value::Number(count))) =
                (obj.get("rule"), obj.get("file"), obj.get("count"))
            else {
                return Err(BaselineError {
                    at: 0,
                    message: "entry needs string \"rule\", string \"file\", number \"count\""
                        .to_owned(),
                });
            };
            // Deprecated rule ids keep working: canonicalize on load (and
            // merge, should both spellings appear).
            let rule = crate::rules::canonical_rule(rule).to_owned();
            *entries.entry((rule, file.clone())).or_insert(0) += *count;
        }
        Ok(Baseline { entries })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The JSON subset the baseline needs: objects, arrays, strings, unsigned
/// integers.
#[derive(Debug)]
enum Value {
    Object(BTreeMap<String, Value>),
    Array(Vec<Value>),
    String(String),
    Number(u64),
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> BaselineError {
        BaselineError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), BaselineError> {
        self.skip_ws();
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, BaselineError> {
        match self.peek() {
            Some(b'{') => self.object().map(Value::Object),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b) if b.is_ascii_digit() => self.number().map(Value::Number),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, Value>, BaselineError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(map);
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, BaselineError> {
        self.expect(b'[')?;
        let mut list = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(list));
        }
        loop {
            list.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(list));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, BaselineError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.src.get(self.pos).copied() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.src.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        other => {
                            return Err(
                                self.err(&format!("unsupported escape {other:?} in baseline"))
                            )
                        }
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<u64, BaselineError> {
        self.skip_ws();
        let start = self.pos;
        while self.src.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("expected an unsigned integer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn round_trips() {
        let findings = vec![
            finding("panic-in-lib", "crates/core/src/a.rs", 3),
            finding("panic-in-lib", "crates/core/src/a.rs", 9),
            finding("unchecked-arith-expr", "crates/sim/src/b.rs", 1),
        ];
        let b = Baseline::from_findings(&findings);
        let json = b.to_json_string();
        let parsed = Baseline::from_json_str(&json).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json_string(), json);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn ratchet_catches_over_and_reports_stale() {
        let b = Baseline::from_findings(&[
            finding("panic-in-lib", "a.rs", 1),
            finding("panic-in-lib", "a.rs", 2),
        ]);
        // Within allowance: clean.
        let ok = b.check(&[
            finding("panic-in-lib", "a.rs", 5),
            finding("panic-in-lib", "a.rs", 9),
        ]);
        assert!(ok.over.is_empty() && ok.stale.is_empty());
        // Exceeds allowance: the whole group is surfaced.
        let over = b.check(&[
            finding("panic-in-lib", "a.rs", 1),
            finding("panic-in-lib", "a.rs", 2),
            finding("panic-in-lib", "a.rs", 3),
        ]);
        assert_eq!(over.over.len(), 3);
        // A different file is never covered by a.rs's allowance.
        let other = b.check(&[finding("panic-in-lib", "b.rs", 1)]);
        assert_eq!(other.over.len(), 1);
        // Under allowance: stale report, no failure.
        let stale = b.check(&[finding("panic-in-lib", "a.rs", 1)]);
        assert!(stale.over.is_empty());
        assert_eq!(
            stale.stale,
            vec![("panic-in-lib".to_owned(), "a.rs".to_owned(), 2, 1)]
        );
        // Fully fixed file: stale with actual 0.
        let gone = b.check(&[]);
        assert_eq!(gone.stale[0].3, 0);
    }

    #[test]
    fn empty_baseline_flags_everything() {
        let b = Baseline::default();
        assert!(b.is_empty());
        let out = b.check(&[finding("map-iter-order", "x.rs", 1)]);
        assert_eq!(out.over.len(), 1);
    }

    #[test]
    fn deprecated_rule_ids_canonicalize_on_load() {
        let json = "{\"version\": 1, \"entries\": [\
            { \"rule\": \"unchecked-arith\", \"file\": \"a.rs\", \"count\": 2 },\
            { \"rule\": \"unchecked-arith-expr\", \"file\": \"a.rs\", \"count\": 1 }\
        ]}";
        let b = Baseline::from_json_str(json).unwrap();
        // Alias and canonical spellings merge into one allowance of 3.
        let hits: Vec<Finding> = (1..=3)
            .map(|l| finding("unchecked-arith-expr", "a.rs", l))
            .collect();
        let out = b.check(&hits);
        assert!(out.over.is_empty() && out.stale.is_empty());
    }

    #[test]
    fn rejects_bad_versions_and_garbage() {
        assert!(Baseline::from_json_str("{\"version\": 99, \"entries\": []}").is_err());
        assert!(Baseline::from_json_str("not json").is_err());
        assert!(Baseline::from_json_str("{\"version\": 1}").is_err());
    }
}
