//! A minimal Rust token scanner.
//!
//! The rule engine needs far less than a real parser: identifiers,
//! punctuation, and string literals, each tagged with a line number, with
//! comments and string *contents* reliably kept out of the token stream
//! (so a `HashMap` mentioned in a doc comment never trips a rule).
//! Comments are captured separately because the escape directives the
//! linter honors (the `allow(...)` forms) live in them.
//!
//! The scanner handles the lexical constructs that would otherwise corrupt
//! a naive text scan: nested block comments, raw strings with arbitrary
//! hash fences, byte strings, char literals vs. lifetimes, and numeric
//! suffixes (`0u64`), which rule `unchecked-arith` reads as type evidence.

/// What a token is. The scanner keeps only the classes rules consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `HashMap`, `assert_eq`).
    Ident,
    /// String literal; `text` holds the *contents* (no quotes, escapes raw).
    Str,
    /// Char literal or lifetime (`'a'`, `'static`); contents in `text`.
    Char,
    /// Numeric literal, suffix included (`1_000`, `0u64`, `1.5e-3`).
    Number,
    /// Punctuation. Multi-character operators that rules care about are
    /// fused (`::`, `->`, `=>`, `==`, `!=`, `<=`, `>=`, `+=`, `-=`, `*=`,
    /// `/=`, `%=`, `&&`, `||`, `..`, `..=`); everything else is one char.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what each class stores).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True iff this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True iff this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// A comment with the 1-based line it starts on. Line comments keep their
/// text without the `//`; block comments keep everything between the
/// delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based starting line.
    pub line: usize,
    /// Comment body.
    pub text: String,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (for escape directives).
    pub comments: Vec<Comment>,
}

/// Operators fused into one token, longest first so maximal munch works.
const FUSED: &[&str] = &[
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "&&", "||", "..",
];

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    /// Consumes `n` bytes that are known not to contain newlines.
    fn bump_n(&mut self, n: usize) {
        self.pos += n;
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scans `src` into tokens and comments. The scanner never fails: bytes it
/// does not understand become single-char punctuation, which rules ignore.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = s.peek(0) {
        let line = s.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek(1) == Some(b'/') => {
                let start = s.pos + 2;
                while s.peek(0).is_some_and(|c| c != b'\n') {
                    s.bump();
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
                });
            }
            b'/' if s.peek(1) == Some(b'*') => {
                s.bump_n(2);
                let start = s.pos;
                let mut depth = 1usize;
                let mut end = s.pos;
                while depth > 0 {
                    if s.starts_with("/*") {
                        depth += 1;
                        s.bump_n(2);
                    } else if s.starts_with("*/") {
                        depth -= 1;
                        end = s.pos;
                        s.bump_n(2);
                    } else if s.bump().is_none() {
                        end = s.pos;
                        break;
                    }
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&s.src[start..end]).into_owned(),
                });
            }
            b'"' => {
                s.bump();
                let text = scan_quoted(&mut s, b'"');
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                });
            }
            b'r' | b'b' if raw_fence(&s).is_some() => {
                let (prefix_len, hashes) = raw_fence(&s).unwrap_or((0, 0));
                s.bump_n(prefix_len);
                let close = "\"".to_owned() + &"#".repeat(hashes);
                s.bump(); // the opening quote `raw_fence` validated
                for _ in 0..hashes {
                    s.bump();
                }
                let start = s.pos;
                let mut end = s.src.len();
                while s.peek(0).is_some() {
                    if s.starts_with(&close) {
                        end = s.pos;
                        s.bump();
                        for _ in 0..hashes {
                            s.bump();
                        }
                        break;
                    }
                    s.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::from_utf8_lossy(&s.src[start..end]).into_owned(),
                    line,
                });
            }
            b'b' if s.peek(1) == Some(b'"') => {
                s.bump_n(2);
                let text = scan_quoted(&mut s, b'"');
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`): after the
                // quote, an identifier not followed by a closing quote is a
                // lifetime.
                let is_lifetime =
                    s.peek(1).is_some_and(is_ident_start) && s.peek(1) != Some(b'\\') && {
                        // Find where the identifier run ends.
                        let mut i = 1;
                        while s.peek(i).is_some_and(is_ident_continue) {
                            i += 1;
                        }
                        s.peek(i) != Some(b'\'')
                    };
                s.bump();
                if is_lifetime {
                    let start = s.pos;
                    while s.peek(0).is_some_and(is_ident_continue) {
                        s.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
                        line,
                    });
                } else {
                    let text = scan_quoted(&mut s, b'\'');
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text,
                        line,
                    });
                }
            }
            _ if is_ident_start(b) => {
                let start = s.pos;
                while s.peek(0).is_some_and(is_ident_continue) {
                    s.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = s.pos;
                // Digits, underscores, hex/suffix letters, and the dot/exp
                // forms; `1..3` must not swallow the range dots.
                while let Some(c) = s.peek(0) {
                    if c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'.'
                            && s.peek(1) != Some(b'.')
                            && s.peek(1).is_some_and(|d| d.is_ascii_digit()))
                    {
                        s.bump();
                    } else if (c == b'+' || c == b'-')
                        && matches!(s.src.get(s.pos.wrapping_sub(1)), Some(b'e' | b'E'))
                        && s.src[start..s.pos].contains(&b'.')
                    {
                        s.bump(); // float exponent sign, e.g. 1.5e-3
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
                    line,
                });
            }
            _ => {
                let fused = FUSED.iter().find(|op| s.starts_with(op));
                let text = match fused {
                    Some(op) => {
                        s.bump_n(op.len());
                        (*op).to_owned()
                    }
                    None => {
                        s.bump();
                        (b as char).to_string()
                    }
                };
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    out
}

/// Scans a quoted literal body after the opening delimiter, honoring
/// backslash escapes; returns the raw contents.
fn scan_quoted(s: &mut Scanner<'_>, close: u8) -> String {
    let start = s.pos;
    let mut end = s.src.len();
    while let Some(c) = s.peek(0) {
        if c == b'\\' {
            s.bump();
            s.bump();
            continue;
        }
        if c == close {
            end = s.pos;
            s.bump();
            break;
        }
        s.bump();
    }
    String::from_utf8_lossy(&s.src[start..end.min(s.src.len())]).into_owned()
}

/// If the scanner sits on a raw-string opener (`r"`, `r#"`, `br##"` …),
/// returns `(prefix_len, hash_count)` where `prefix_len` covers the letters
/// and hashes up to but not including the quote.
fn raw_fence(s: &Scanner<'_>) -> Option<(usize, usize)> {
    let mut i = 0;
    if s.peek(i) == Some(b'b') {
        i += 1;
    }
    if s.peek(i) != Some(b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while s.peek(i) == Some(b'#') {
        i += 1;
        hashes += 1;
    }
    (s.peek(i) == Some(b'"')).then_some((i, hashes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
// HashMap in a comment
/* HashMap /* nested */ still comment */
let s = "HashMap in a string";
let r = r#"HashMap raw"#;
let real = HashMap::new();
"##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|i| *i == "HashMap").count(),
            1,
            "only the real code mention counts: {ids:?}"
        );
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap in a comment"));
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<(String, usize)> =
            lexed.tokens.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(
            lines,
            vec![
                ("a".to_owned(), 1),
                ("b".to_owned(), 2),
                ("c".to_owned(), 3)
            ]
        );
    }

    #[test]
    fn fused_operators_and_ranges() {
        let toks: Vec<String> = lex("a += b; c..d; e == f; x.wrapping_mul(2)")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text)
            .collect();
        assert!(toks.contains(&"+=".to_owned()));
        assert!(toks.contains(&"..".to_owned()));
        assert!(toks.contains(&"==".to_owned()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let chars: Vec<String> = lexed
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text)
            .collect();
        assert_eq!(chars, vec!["a", "a", "x", "\\n"]);
    }

    #[test]
    fn numeric_suffixes_kept() {
        let nums: Vec<String> = lex("let a = 0u64; let b = 1_000; let c = 1.5e-3; 1..4")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, vec!["0u64", "1_000", "1.5e-3", "1", "4"]);
    }

    #[test]
    fn unterminated_inputs_do_not_loop() {
        for src in ["\"unterminated", "/* open", "r#\"open", "'"] {
            let _ = lex(src); // must terminate
        }
    }
}
