//! Per-file context the rules run against: the token stream plus everything
//! that modulates rule applicability — which crate the file belongs to,
//! which lines sit inside `#[cfg(test)]` regions, and which escape
//! directives its comments carry.

use crate::lexer::{lex, Lexed};

/// An escape directive parsed from a comment:
/// `// nashdb-lint: allow(rule-id) -- justification` silences `rule-id` on
/// the directive's line and the line below it (so it works both trailing
/// and as a line of its own above the site);
/// `// nashdb-lint: allow-file(rule-id) -- justification` silences the rule
/// for the whole file (for e.g. invariant-audit modules whose entire job is
/// to panic).
///
/// The justification after `--` is mandatory: an escape without one is
/// itself reported, under rule `escape-needs-justification`.
#[derive(Debug, Clone)]
pub struct Escape {
    /// 1-based line of the comment.
    pub line: usize,
    /// The rule id being allowed.
    pub rule: String,
    /// True for `allow-file`.
    pub file_wide: bool,
    /// True when a non-empty justification follows `--`.
    pub justified: bool,
}

/// Inclusive 1-based line ranges.
#[derive(Debug, Default)]
pub struct LineRanges(Vec<(usize, usize)>);

impl LineRanges {
    /// True iff `line` falls in any range.
    pub fn contains(&self, line: usize) -> bool {
        self.0.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// Adds an inclusive range.
    pub fn push(&mut self, start: usize, end: usize) {
        self.0.push((start, end));
    }
}

/// One source file ready for rule checking.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators
    /// (`crates/core/src/routing.rs`).
    pub path: String,
    /// The crate directory name under `crates/` (`core`, `nashdb`, …).
    pub crate_name: String,
    /// True for binary targets (`src/main.rs`, `src/bin/**`) — CLI entry
    /// points may panic and are exempt from `panic-in-lib`.
    pub is_bin: bool,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Lines inside `#[cfg(test)]` items; rules skip them entirely.
    pub test_lines: LineRanges,
    /// Escape directives found in comments.
    pub escapes: Vec<Escape>,
}

impl SourceFile {
    /// Builds the context for one file.
    pub fn new(path: &str, src: &str) -> SourceFile {
        let path = path.replace('\\', "/");
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("")
            .to_owned();
        let is_bin = path.contains("/src/bin/") || path.ends_with("/src/main.rs");
        let lexed = lex(src);
        let test_lines = find_test_regions(&lexed);
        let escapes = parse_escapes(&lexed);
        SourceFile {
            path,
            crate_name,
            is_bin,
            lexed,
            test_lines,
            escapes,
        }
    }

    /// True iff `rule` is escaped at `line` (same-line or line-above
    /// directive, or a file-wide allow).
    pub fn is_escaped(&self, rule: &str, line: usize) -> bool {
        self.escapes
            .iter()
            .any(|e| e.rule == rule && (e.file_wide || e.line == line || e.line + 1 == line))
    }
}

/// Finds `#[cfg(test)]`-gated items and records the line span of each
/// (attribute line through the closing brace or semicolon of the item).
fn find_test_regions(lexed: &Lexed) -> LineRanges {
    let toks = &lexed.tokens;
    let mut ranges = LineRanges::default();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        // Scan the attribute body to its closing `]`, remembering whether it
        // is a cfg(...) mentioning the bare ident `test`.
        let mut j = i + 2;
        let mut depth = 1usize; // the `[`
        let mut is_cfg = false;
        let mut mentions_test = false;
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
            } else if t.is_ident("cfg") {
                is_cfg = true;
            } else if t.is_ident("test") {
                mentions_test = true;
            }
            j += 1;
        }
        if !(is_cfg && mentions_test) {
            i = j;
            continue;
        }
        // Skip any further attributes, then find the item's extent: the
        // matching `}` of its first brace, or a `;` before any brace.
        let mut k = j;
        while k + 1 < toks.len() && toks[k].is_punct("#") && toks[k + 1].is_punct("[") {
            let mut d = 1usize;
            k += 2;
            while k < toks.len() && d > 0 {
                if toks[k].is_punct("[") {
                    d += 1;
                } else if toks[k].is_punct("]") {
                    d -= 1;
                }
                k += 1;
            }
        }
        let mut end_line = toks.get(k).map_or(attr_line, |t| t.line);
        while k < toks.len() {
            if toks[k].is_punct(";") {
                end_line = toks[k].line;
                k += 1;
                break;
            }
            if toks[k].is_punct("{") {
                let mut d = 1usize;
                k += 1;
                while k < toks.len() && d > 0 {
                    if toks[k].is_punct("{") {
                        d += 1;
                    } else if toks[k].is_punct("}") {
                        d -= 1;
                    }
                    end_line = toks[k].line;
                    k += 1;
                }
                break;
            }
            end_line = toks[k].line;
            k += 1;
        }
        ranges.push(attr_line, end_line);
        i = k;
    }
    ranges
}

/// Parses `nashdb-lint:` directives out of the comment list.
fn parse_escapes(lexed: &Lexed) -> Vec<Escape> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = c.text.split("nashdb-lint:").nth(1) else {
            continue;
        };
        let rest = rest.trim_start();
        let file_wide = rest.starts_with("allow-file(");
        let open = if file_wide {
            rest.strip_prefix("allow-file(")
        } else {
            rest.strip_prefix("allow(")
        };
        let Some(open) = open else {
            continue;
        };
        let Some(close) = open.find(')') else {
            continue;
        };
        let rule = open[..close].trim().to_owned();
        let after = open[close + 1..].trim_start();
        let justified = after
            .strip_prefix("--")
            .is_some_and(|j| !j.trim().is_empty());
        out.push(Escape {
            line: c.line,
            rule,
            file_wide,
            justified,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_mod_tests() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(!f.test_lines.contains(1));
        assert!(f.test_lines.contains(2)); // the attribute
        assert!(f.test_lines.contains(4)); // body
        assert!(f.test_lines.contains(5)); // closing brace
        assert!(!f.test_lines.contains(6));
    }

    #[test]
    fn cfg_all_test_and_stacked_attrs_count() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nfn helper() {\n  body();\n}\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(f.test_lines.contains(4));
    }

    #[test]
    fn non_test_cfgs_do_not_match() {
        let src = "#[cfg(feature = \"test-utils\")]\nfn not_a_test() {}\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(!f.test_lines.contains(2));
    }

    #[test]
    fn escapes_parse_and_require_justification() {
        let src = "\
let a = 1; // nashdb-lint: allow(map-iter-order) -- validation-only pass
// nashdb-lint: allow(unchecked-arith)
// nashdb-lint: allow-file(panic-in-lib) -- audits exist to panic
";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert_eq!(f.escapes.len(), 3);
        assert!(f.escapes[0].justified && !f.escapes[0].file_wide);
        assert!(!f.escapes[1].justified);
        assert!(f.escapes[2].file_wide && f.escapes[2].justified);
        assert!(f.is_escaped("map-iter-order", 1));
        assert!(f.is_escaped("unchecked-arith", 3)); // line below
        assert!(f.is_escaped("panic-in-lib", 999)); // file-wide
        assert!(!f.is_escaped("map-iter-order", 3));
    }

    #[test]
    fn crate_and_bin_classification() {
        let f = SourceFile::new("crates/bench/src/bin/cli.rs", "fn main() {}");
        assert_eq!(f.crate_name, "bench");
        assert!(f.is_bin);
        let f = SourceFile::new("crates/core/src/routing.rs", "");
        assert_eq!(f.crate_name, "core");
        assert!(!f.is_bin);
    }
}
