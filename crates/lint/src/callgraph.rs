//! A workspace-wide function table with conservative call resolution.
//!
//! The semantic rules need to know, for an `ident(…)` or `.method(…)` site,
//! *which workspace function* that is — to read its return type (receiver
//! typing through getters), its `#[must_use]`/`Result` contract
//! (`error-drop`), and to propagate determinism taint caller-ward.
//!
//! Resolution is deliberately **precision over recall**: a call that cannot
//! be pinned to exactly one candidate resolves to `None` and simply grows
//! no edge. The failure mode is a lost finding, never a false one.

use std::collections::BTreeMap;

use crate::ast::{Ast, FnDef, Type};
use crate::source::SourceFile;

/// One function in the workspace table.
#[derive(Debug)]
pub struct FnNode<'a> {
    /// Index into the file list the table was built from.
    pub file: usize,
    /// The definition (signature + body).
    pub def: &'a FnDef,
    /// Enclosing `impl` type, when a method/associated fn.
    pub impl_ty: Option<&'a str>,
    /// Test-gated (`#[cfg(test)]` context or `#[test]`).
    pub in_test: bool,
    /// Carried `#[must_use]`.
    pub must_use: bool,
}

impl FnNode<'_> {
    /// True when the declared return type is `Result<…>`.
    pub fn returns_result(&self) -> bool {
        self.def
            .ret
            .as_ref()
            .is_some_and(|t| t.head() == Some("Result"))
    }
}

/// The cross-file signature table.
pub struct Workspace<'a> {
    /// The parsed files the indices below refer to.
    pub files: &'a [(SourceFile, Ast)],
    /// All functions, in file order.
    pub fns: Vec<FnNode<'a>>,
    by_name: BTreeMap<&'a str, Vec<usize>>,
    /// `(struct name, field name)` → declared type.
    fields: BTreeMap<(&'a str, &'a str), &'a Type>,
}

impl std::fmt::Debug for Workspace<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("files", &self.files.len())
            .field("fns", &self.fns.len())
            .finish_non_exhaustive()
    }
}

impl<'a> Workspace<'a> {
    /// Builds the table over every parsed file.
    pub fn build(files: &'a [(SourceFile, Ast)]) -> Workspace<'a> {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<&'a str, Vec<usize>> = BTreeMap::new();
        let mut fields = BTreeMap::new();
        for (file_idx, (_, ast)) in files.iter().enumerate() {
            for fr in ast.fns() {
                let idx = fns.len();
                fns.push(FnNode {
                    file: file_idx,
                    def: fr.def,
                    impl_ty: fr.impl_ty,
                    in_test: fr.cfg_test || fr.is_test,
                    must_use: false, // patched below via the item walk
                });
                by_name.entry(fr.def.name.as_str()).or_default().push(idx);
            }
            collect_fields(&ast.items, &mut fields);
            // `must_use` lives on the Item, which `Ast::fns` flattens away;
            // recover it by line match (fn lines are unique within a file).
            let mut must_use_lines = Vec::new();
            collect_must_use(&ast.items, &mut must_use_lines);
            for f in fns.iter_mut().filter(|f| f.file == file_idx) {
                if must_use_lines.contains(&f.def.line) {
                    f.must_use = true;
                }
            }
        }
        Workspace {
            files,
            fns,
            by_name,
            fields,
        }
    }

    /// The crate directory name a function lives in.
    pub fn crate_of(&self, fn_idx: usize) -> &str {
        &self.files[self.fns[fn_idx].file].0.crate_name
    }

    /// The workspace-relative path a function lives in.
    pub fn path_of(&self, fn_idx: usize) -> &str {
        &self.files[self.fns[fn_idx].file].0.path
    }

    /// Declared type of `struct_ty.field`, if the struct is in-workspace.
    pub fn field_type(&self, struct_ty: &str, field: &str) -> Option<&'a Type> {
        self.fields.get(&(struct_ty, field)).copied()
    }

    /// Resolves a free/associated call path (`helper`, `module::helper`,
    /// `Type::new`, `Self::go`, `nashdb_core::fragment::find_split`) from
    /// the context of `from`. Returns the unique candidate or `None`.
    pub fn resolve_call(&self, segs: &[String], from: usize) -> Option<usize> {
        let name = segs.last()?;
        let all = self.by_name.get(name.as_str())?;
        let qualifier = segs.len().checked_sub(2).map(|i| segs[i].as_str());
        let caller = &self.fns[from];
        let candidates: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| {
                let cand = &self.fns[i];
                match qualifier {
                    // `Self::new()` — same impl as the caller.
                    Some("Self") => cand.impl_ty == caller.impl_ty,
                    // `self::f()` / `crate::m::f()` — same crate.
                    Some("self") | Some("crate") => self.crate_of(i) == self.crate_of(from),
                    Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                        // `Type::assoc()`.
                        cand.impl_ty == Some(q)
                    }
                    Some(q) => {
                        // Module or crate path segment: `nashdb_core::…` /
                        // `fragment::find_split`. Match the crate name (with
                        // the `nashdb_`/`nashdb-` prefix stripped) or a path
                        // component.
                        let hint = q.strip_prefix("nashdb_").unwrap_or(q);
                        let path = self.path_of(i);
                        self.crate_of(i) == hint
                            || path.contains(&format!("/{q}/"))
                            || path.ends_with(&format!("/{q}.rs"))
                            || path.contains(&format!("/{q}/mod.rs"))
                    }
                    // Unqualified: free fns only.
                    None => cand.impl_ty.is_none(),
                }
            })
            .collect();
        self.pick(&candidates, from)
    }

    /// Resolves a `.name(…)` method call given the receiver's type head
    /// (when known). Returns the unique candidate or `None`.
    pub fn resolve_method(&self, name: &str, recv_ty: Option<&str>, from: usize) -> Option<usize> {
        let all = self.by_name.get(name)?;
        let methods: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.fns[i].def.has_self)
            .collect();
        if let Some(ty) = recv_ty {
            let typed: Vec<usize> = methods
                .iter()
                .copied()
                .filter(|&i| self.fns[i].impl_ty == Some(ty))
                .collect();
            return self.pick(&typed, from);
        }
        // Untyped receiver: only a workspace-unique method name resolves.
        if methods.len() == 1 {
            Some(methods[0])
        } else {
            None
        }
    }

    /// Uniqueness with locality tie-breaks: one candidate in the caller's
    /// file wins, else one in the caller's crate, else one overall.
    fn pick(&self, candidates: &[usize], from: usize) -> Option<usize> {
        match candidates {
            [] => None,
            [one] => Some(*one),
            many => {
                let same_file: Vec<usize> = many
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].file == self.fns[from].file)
                    .collect();
                if let [one] = same_file[..] {
                    return Some(one);
                }
                let same_crate: Vec<usize> = many
                    .iter()
                    .copied()
                    .filter(|&i| self.crate_of(i) == self.crate_of(from))
                    .collect();
                if let [one] = same_crate[..] {
                    return Some(one);
                }
                None
            }
        }
    }
}

fn collect_fields<'a>(
    items: &'a [crate::ast::Item],
    out: &mut BTreeMap<(&'a str, &'a str), &'a Type>,
) {
    use crate::ast::ItemKind;
    for item in items {
        match &item.kind {
            ItemKind::Struct { name, fields } => {
                for (fname, ty) in fields {
                    out.insert((name.as_str(), fname.as_str()), ty);
                }
            }
            ItemKind::Mod { items, .. } | ItemKind::Impl { items, .. } => {
                collect_fields(items, out);
            }
            ItemKind::Fn(_) | ItemKind::Other { .. } => {}
        }
    }
}

fn collect_must_use(items: &[crate::ast::Item], out: &mut Vec<usize>) {
    use crate::ast::ItemKind;
    for item in items {
        match &item.kind {
            ItemKind::Fn(def) => {
                if item.must_use {
                    out.push(def.line);
                }
            }
            ItemKind::Mod { items, .. } | ItemKind::Impl { items, .. } => {
                collect_must_use(items, out);
            }
            ItemKind::Struct { .. } | ItemKind::Other { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn files(srcs: &[(&str, &str)]) -> Vec<(SourceFile, Ast)> {
        srcs.iter()
            .map(|(path, src)| {
                let sf = SourceFile::new(path, src);
                let ast = parse(&sf.lexed);
                (sf, ast)
            })
            .collect()
    }

    #[test]
    fn resolves_free_method_and_cross_crate_calls() {
        let fs = files(&[
            (
                "crates/core/src/a.rs",
                "pub fn helper() -> u64 { 1 }\n\
                 pub struct Foo { map: u64 }\n\
                 impl Foo {\n\
                     pub fn map(&self) -> u64 { self.map }\n\
                     pub fn run(&self) -> u64 { helper() + self.map() }\n\
                 }\n",
            ),
            (
                "crates/baselines/src/b.rs",
                "pub fn entry() -> u64 { nashdb_core::a::helper() }\n",
            ),
        ]);
        let ws = Workspace::build(&fs);
        assert_eq!(ws.fns.len(), 4);
        let run = ws
            .fns
            .iter()
            .position(|f| f.def.name == "run")
            .expect("run exists");
        let entry = ws
            .fns
            .iter()
            .position(|f| f.def.name == "entry")
            .expect("entry exists");
        // Unqualified free call from a method.
        let helper = ws.resolve_call(&["helper".into()], run).expect("helper");
        assert_eq!(ws.fns[helper].def.name, "helper");
        // Method on a known receiver type.
        let m = ws.resolve_method("map", Some("Foo"), run).expect("method");
        assert!(ws.fns[m].def.has_self);
        // Cross-crate path with the nashdb_ prefix.
        let cross = ws
            .resolve_call(&["nashdb_core".into(), "a".into(), "helper".into()], entry)
            .expect("cross-crate");
        assert_eq!(cross, helper);
        // Field types survive.
        assert!(ws.field_type("Foo", "map").is_some());
        assert!(ws.field_type("Foo", "nope").is_none());
    }

    #[test]
    fn ambiguity_resolves_to_none() {
        let fs = files(&[
            ("crates/core/src/a.rs", "pub fn f() {}\n"),
            ("crates/sim/src/b.rs", "pub fn f() {}\n"),
            ("crates/cluster/src/c.rs", "pub fn caller() { f(); }\n"),
        ]);
        let ws = Workspace::build(&fs);
        let caller = ws
            .fns
            .iter()
            .position(|f| f.def.name == "caller")
            .expect("caller exists");
        assert_eq!(ws.resolve_call(&["f".into()], caller), None);
    }

    #[test]
    fn must_use_and_result_facts() {
        let fs = files(&[(
            "crates/core/src/a.rs",
            "#[must_use]\npub fn important() -> u64 { 1 }\n\
             pub fn fallible() -> Result<u64, String> { Ok(1) }\n",
        )]);
        let ws = Workspace::build(&fs);
        assert!(ws.fns[0].must_use);
        assert!(!ws.fns[0].returns_result());
        assert!(ws.fns[1].returns_result());
    }
}
