//! Recursive-descent parser from the token stream to the [`crate::ast`]
//! types: a Pratt expression parser plus item/statement structure.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never loop.** Every parse function consumes at least
//!    one token on any input; anything unrecognizable becomes
//!    [`Expr::Other`] and the parser resynchronizes at the next statement
//!    or item boundary.
//! 2. **Lose findings, never invent them.** Rules treat `Other` as opaque,
//!    so a construct this parser cannot shape silently degrades to the
//!    token-stream rules' coverage.
//! 3. **Dependency-free.** Like the lexer, this is hand-rolled; no syn.
//!
//! Known simplifications (acceptable for a linter, not a compiler): shift
//! operators parse as two comparisons, trait bounds and generic parameter
//! lists are skipped rather than modeled, and patterns keep only their
//! bound identifier names.

use crate::ast::{Ast, Block, Expr, FnDef, Item, ItemKind, Stmt, Type};
use crate::lexer::{Lexed, Token, TokenKind};

/// Parses a lexed file into an [`Ast`]. Infallible by construction.
pub fn parse(lexed: &Lexed) -> Ast {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
    };
    Ast {
        items: p.items(None),
    }
}

/// Item-introducing keywords (after attributes/visibility/modifiers).
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "impl",
    "mod",
    "struct",
    "enum",
    "trait",
    "use",
    "const",
    "static",
    "type",
    "union",
    "extern",
    "macro_rules",
];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Facts gathered from a run of outer attributes.
#[derive(Default)]
struct Attrs {
    cfg_test: bool,
    must_use: bool,
    is_test: bool,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + ahead)
    }

    fn at_punct(&self, text: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(text))
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(text))
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, text: &str) -> bool {
        if self.at_punct(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, text: &str) -> bool {
        if self.at_ident(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn line(&self) -> usize {
        self.peek(0).map_or(usize::MAX, |t| t.line)
    }

    // -- attributes, visibility, modifiers ---------------------------------

    /// Consumes `#[…]` / `#![…]` runs, recording the facts rules need.
    fn attrs(&mut self) -> Attrs {
        let mut out = Attrs::default();
        while self.at_punct("#") {
            let hash = self.pos;
            self.pos += 1;
            self.eat_punct("!");
            if !self.eat_punct("[") {
                self.pos = hash;
                break;
            }
            let mut depth = 1usize;
            let mut is_cfg = false;
            let mut saw_test = false;
            let mut saw_must_use = false;
            let mut first = true;
            while depth > 0 {
                let Some(t) = self.bump() else { break };
                match t.kind {
                    TokenKind::Punct if t.text == "[" => depth += 1,
                    TokenKind::Punct if t.text == "]" => depth -= 1,
                    TokenKind::Ident => {
                        if first && t.text == "cfg" {
                            is_cfg = true;
                        }
                        if t.text == "test" {
                            saw_test = true;
                        }
                        if first && t.text == "must_use" {
                            saw_must_use = true;
                        }
                        first = false;
                    }
                    _ => {}
                }
            }
            if is_cfg && saw_test {
                out.cfg_test = true;
            } else if saw_test {
                out.is_test = true;
            }
            out.must_use |= saw_must_use;
        }
        out
    }

    /// Consumes `pub` / `pub(crate)` / `pub(in path)`.
    fn visibility(&mut self) {
        if self.eat_ident("pub") && self.at_punct("(") {
            self.skip_balanced("(", ")");
        }
    }

    /// Consumes fn/impl qualifiers (`const fn`, `async`, `unsafe`,
    /// `extern "C"`, `default`).
    fn fn_qualifiers(&mut self) {
        loop {
            if (self.at_ident("const") && self.peek(1).is_some_and(|t| t.is_ident("fn")))
                || self.at_ident("async")
                || self.at_ident("default")
                || (self.at_ident("unsafe")
                    && self.peek(1).is_some_and(|t| {
                        t.is_ident("fn") || t.is_ident("impl") || t.is_ident("trait")
                    }))
            {
                self.pos += 1;
            } else if self.at_ident("extern")
                && self.peek(1).is_some_and(|t| t.kind == TokenKind::Str)
                && self.peek(2).is_some_and(|t| t.is_ident("fn"))
            {
                self.pos += 2;
            } else {
                break;
            }
        }
    }

    /// Skips from an already-peeked `open` to its matching `close`.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if !self.eat_punct(open) {
            return;
        }
        let mut depth = 1usize;
        while depth > 0 {
            let Some(t) = self.bump() else { return };
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
            }
        }
    }

    /// Skips a `<…>` generic parameter list if present. `>=` closes an
    /// angle (the lexer fuses it; the `=` belongs to a const-generic
    /// default we are skipping anyway).
    fn skip_generics(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") || t.is_punct(">=") {
                depth -= 1;
            } else if t.is_punct("->") && depth == 0 {
                break;
            }
            self.pos += 1;
            if depth <= 0 {
                break;
            }
        }
    }

    // -- items -------------------------------------------------------------

    /// Parses items until EOF (`terminator` None) or a closing `}`.
    fn items(&mut self, terminator: Option<&str>) -> Vec<Item> {
        let mut out = Vec::new();
        loop {
            let before = self.pos;
            if self.peek(0).is_none() {
                break;
            }
            if let Some(close) = terminator {
                if self.at_punct(close) {
                    self.pos += 1;
                    break;
                }
            }
            if self.eat_punct(";") {
                continue;
            }
            if let Some(item) = self.item() {
                out.push(item);
            }
            if self.pos == before {
                self.pos += 1; // unrecognized token at item position
            }
        }
        out
    }

    /// Parses one item if the cursor sits on one.
    fn item(&mut self) -> Option<Item> {
        let start = self.pos;
        let line = self.line();
        let attrs = self.attrs();
        self.visibility();
        self.fn_qualifiers();
        let Some(kw) = self.peek(0).filter(|t| t.kind == TokenKind::Ident) else {
            self.pos = start.max(self.pos);
            return None;
        };
        let kw_text = kw.text.clone();
        if !ITEM_KEYWORDS.contains(&kw_text.as_str()) {
            // Not an item; rewind so expression parsing can have the tokens.
            self.pos = start;
            return None;
        }
        self.pos += 1;
        let kind = match kw_text.as_str() {
            "fn" => ItemKind::Fn(self.fn_def(line)),
            "impl" => self.impl_block(),
            "mod" => self.mod_item(),
            "struct" => self.struct_item(),
            _ => {
                self.skip_item_rest();
                ItemKind::Other { keyword: kw_text }
            }
        };
        Some(Item {
            line,
            cfg_test: attrs.cfg_test,
            must_use: attrs.must_use,
            is_test: attrs.is_test,
            kind,
        })
    }

    /// Consumes the remainder of an unmodeled item: to the `;` before any
    /// brace, or through the first balanced `{…}`.
    fn skip_item_rest(&mut self) {
        while let Some(t) = self.peek(0) {
            if t.is_punct(";") {
                self.pos += 1;
                return;
            }
            if t.is_punct("{") {
                self.skip_balanced("{", "}");
                return;
            }
            if t.is_punct("}") {
                return; // enclosing block's close; leave it
            }
            self.pos += 1;
        }
    }

    fn fn_def(&mut self, line: usize) -> FnDef {
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !name.is_empty() {
            self.pos += 1;
        }
        self.skip_generics();
        let (params, has_self) = self.fn_params();
        let ret = if self.eat_punct("->") {
            Some(self.scan_type(&["{", ";"], &["where"]))
        } else {
            None
        };
        // where clause
        if self.at_ident("where") {
            while let Some(t) = self.peek(0) {
                if t.is_punct("{") || t.is_punct(";") {
                    break;
                }
                self.pos += 1;
            }
        }
        let body = if self.at_punct("{") {
            Some(self.block())
        } else {
            self.eat_punct(";");
            None
        };
        FnDef {
            name,
            line,
            params,
            has_self,
            ret,
            body,
        }
    }

    /// Parses `(self?, name: Ty, …)`.
    fn fn_params(&mut self) -> (Vec<(String, Type)>, bool) {
        let mut params = Vec::new();
        let mut has_self = false;
        if !self.eat_punct("(") {
            return (params, has_self);
        }
        loop {
            let before = self.pos;
            match self.peek(0) {
                None => break,
                Some(t) if t.is_punct(")") => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            // One parameter: pattern tokens to the top-level `:`, then type
            // tokens to the top-level `,` or `)`.
            self.attrs();
            let mut pat_name: Option<String> = None;
            let mut saw_colon = false;
            let mut depth = 0i32;
            while let Some(t) = self.peek(0) {
                if depth == 0 && (t.is_punct(",") || t.is_punct(")")) {
                    break;
                }
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    ":" if depth == 0 && !saw_colon => {
                        saw_colon = true;
                        self.pos += 1;
                        let ty = self.scan_type(&[",", ")"], &[]);
                        if let Some(name) = pat_name.take() {
                            params.push((name, ty));
                        }
                        continue;
                    }
                    "self" if t.kind == TokenKind::Ident => has_self = true,
                    _ if t.kind == TokenKind::Ident
                        && !saw_colon
                        && pat_name.is_none()
                        && t.text != "mut"
                        && t.text != "ref" =>
                    {
                        pat_name = Some(t.text.clone());
                    }
                    _ => {}
                }
                self.pos += 1;
            }
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        (params, has_self)
    }

    /// Collects type tokens until one of `stop_puncts` (or `stop_idents`)
    /// appears at angle/paren/bracket depth 0. The stop token is left
    /// unconsumed. `>=` while inside angles closes one level.
    fn scan_type(&mut self, stop_puncts: &[&str], stop_idents: &[&str]) -> Type {
        let mut toks = Vec::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if depth == 0 {
                if t.kind == TokenKind::Punct && stop_puncts.contains(&t.text.as_str()) {
                    break;
                }
                if t.kind == TokenKind::Ident && stop_idents.contains(&t.text.as_str()) {
                    break;
                }
            }
            match t.text.as_str() {
                "<" | "(" | "[" if t.kind == TokenKind::Punct => depth += 1,
                ">" | ")" | "]" if t.kind == TokenKind::Punct => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ">=" if t.kind == TokenKind::Punct => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    toks.push(">".to_owned());
                    self.pos += 1;
                    continue;
                }
                _ => {}
            }
            toks.push(t.text.clone());
            self.pos += 1;
        }
        Type { toks }
    }

    fn impl_block(&mut self) -> ItemKind {
        self.skip_generics();
        // Tokens to the `{`; the implementing type is after `for` when a
        // trait impl, otherwise the head of what we scanned.
        let head = self.scan_type(&["{"], &["where"]);
        if self.at_ident("where") {
            while let Some(t) = self.peek(0) {
                if t.is_punct("{") {
                    break;
                }
                self.pos += 1;
            }
        }
        let ty = {
            let after_for = head
                .toks
                .iter()
                .position(|t| t == "for")
                .map(|i| &head.toks[i + 1..]);
            let slice = after_for.unwrap_or(&head.toks[..]);
            Type {
                toks: slice.to_vec(),
            }
            .head()
            .unwrap_or("")
            .to_owned()
        };
        if self.eat_punct("{") {
            ItemKind::Impl {
                ty,
                items: self.items(Some("}")),
            }
        } else {
            ItemKind::Impl {
                ty,
                items: Vec::new(),
            }
        }
    }

    fn mod_item(&mut self) -> ItemKind {
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !name.is_empty() {
            self.pos += 1;
        }
        if self.eat_punct("{") {
            ItemKind::Mod {
                name,
                items: self.items(Some("}")),
            }
        } else {
            self.eat_punct(";");
            ItemKind::Other {
                keyword: "mod".to_owned(),
            }
        }
    }

    fn struct_item(&mut self) -> ItemKind {
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !name.is_empty() {
            self.pos += 1;
        }
        self.skip_generics();
        if self.at_ident("where") {
            while let Some(t) = self.peek(0) {
                if t.is_punct("{") || t.is_punct(";") || t.is_punct("(") {
                    break;
                }
                self.pos += 1;
            }
        }
        let mut fields = Vec::new();
        if self.eat_punct("{") {
            loop {
                let before = self.pos;
                match self.peek(0) {
                    None => break,
                    Some(t) if t.is_punct("}") => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                self.attrs();
                self.visibility();
                let fname = self
                    .peek(0)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone());
                if fname.is_some() {
                    self.pos += 1;
                }
                if self.eat_punct(":") {
                    let ty = self.scan_type(&[",", "}"], &[]);
                    if let Some(fname) = fname {
                        fields.push((fname, ty));
                    }
                }
                self.eat_punct(",");
                if self.pos == before {
                    self.pos += 1;
                }
            }
        } else if self.at_punct("(") {
            self.skip_balanced("(", ")");
            self.eat_punct(";");
        } else {
            self.eat_punct(";");
        }
        ItemKind::Struct { name, fields }
    }

    // -- statements --------------------------------------------------------

    /// Parses a `{ … }` block; the cursor must sit on the `{` (tolerated if
    /// not: returns an empty block).
    fn block(&mut self) -> Block {
        let line = self.line();
        if !self.eat_punct("{") {
            return Block {
                stmts: Vec::new(),
                line,
            };
        }
        let mut stmts = Vec::new();
        loop {
            let before = self.pos;
            match self.peek(0) {
                None => break,
                Some(t) if t.is_punct("}") => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            if self.eat_punct(";") {
                continue;
            }
            if self.at_ident("let") {
                stmts.push(self.let_stmt());
            } else if let Some(item) = self.stmt_item() {
                stmts.push(Stmt::Item(item));
            } else {
                let line = self.line();
                let expr = self.expr(1, false);
                let semi = self.eat_punct(";");
                stmts.push(Stmt::Expr { expr, line, semi });
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
        Block { stmts, line }
    }

    /// Parses an item in statement position, if one starts here.
    fn stmt_item(&mut self) -> Option<Item> {
        // Lookahead past attributes/visibility/qualifiers without consuming.
        let save = self.pos;
        self.attrs();
        self.visibility();
        self.fn_qualifiers();
        let is_item = self
            .peek(0)
            .is_some_and(|t| t.kind == TokenKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()))
            // `const` in expression position never happens, but `extern`,
            // `union`, and `macro_rules` can shadow as idents; accept the
            // mis-parse — they are vanishingly rare in statement position.
            && !self.at_ident("union");
        self.pos = save;
        if is_item {
            self.item()
        } else {
            None
        }
    }

    fn let_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.pos += 1; // `let`
                       // Pattern: tokens to the top-level `:`, `=`, `;`, or `else`.
        let mut pat_toks: Vec<&Token> = Vec::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if depth == 0
                && (t.is_punct(":") || t.is_punct("=") || t.is_punct(";") || t.is_ident("else"))
            {
                break;
            }
            match t.text.as_str() {
                "(" | "[" | "<" | "{" if t.kind == TokenKind::Punct => depth += 1,
                ")" | "]" | ">" | "}" if t.kind == TokenKind::Punct => depth -= 1,
                _ => {}
            }
            pat_toks.push(t);
            self.pos += 1;
        }
        // `_` lexes as an identifier.
        let wildcard = pat_toks.len() == 1 && pat_toks[0].is_ident("_");
        let destructures = pat_toks
            .iter()
            .any(|t| t.is_punct("(") || t.is_punct("{") || t.is_punct("::"));
        let name = if destructures || wildcard {
            None
        } else {
            pat_toks
                .iter()
                .find(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref")
                .map(|t| t.text.clone())
        };
        let ty = if self.eat_punct(":") {
            Some(self.scan_type(&["=", ";"], &["else"]))
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            Some(self.expr(1, false))
        } else {
            None
        };
        // let-else diverging tail.
        if self.eat_ident("else") {
            let _ = self.block();
        }
        self.eat_punct(";");
        Stmt::Let {
            name,
            wildcard,
            ty,
            init,
            line,
        }
    }

    // -- expressions -------------------------------------------------------

    /// Pratt parser. `min_bp` is the minimum binding power to continue;
    /// `no_struct` suppresses struct-literal parsing (condition position).
    fn expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.prefix(no_struct);
        lhs = self.postfix(lhs, no_struct);
        while let Some(t) = self.peek(0).filter(|t| t.kind == TokenKind::Punct) {
            let (bp, rbp, assign) = match t.text.as_str() {
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" => (2, 1, true),
                ".." | "..=" => (4, 5, false),
                "||" => (6, 7, false),
                "&&" => (8, 9, false),
                "==" | "!=" | "<" | ">" | "<=" | ">=" => (10, 11, false),
                "|" => (12, 13, false),
                "^" => (13, 14, false),
                "&" => (14, 15, false),
                "+" | "-" => (16, 17, false),
                "*" | "/" | "%" => (18, 19, false),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            let op = t.text.clone();
            let line = t.line;
            self.pos += 1;
            // Open ranges (`start..`): no rhs follows.
            let rhs_starts = self.peek(0).is_some_and(|t| {
                !(t.is_punct(";")
                    || t.is_punct(",")
                    || t.is_punct(")")
                    || t.is_punct("]")
                    || t.is_punct("}")
                    || t.is_punct("{") && no_struct && (op == ".." || op == "..="))
            });
            let rhs = if (op == ".." || op == "..=") && !rhs_starts {
                Expr::Other { line }
            } else {
                self.expr(rbp, no_struct)
            };
            lhs = if assign {
                Expr::Assign {
                    op,
                    target: Box::new(lhs),
                    value: Box::new(rhs),
                    line,
                }
            } else {
                Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                }
            };
        }
        lhs
    }

    /// Prefix position: literals, paths, unary operators, control flow.
    /// Always consumes at least one token.
    fn prefix(&mut self, no_struct: bool) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::Other { line: usize::MAX };
        };
        let line = t.line;
        match t.kind {
            TokenKind::Number | TokenKind::Str | TokenKind::Char => {
                let text = t.text.clone();
                self.pos += 1;
                Expr::Lit { text, line }
            }
            TokenKind::Ident => match t.text.as_str() {
                "if" => self.if_expr(),
                "while" => {
                    self.pos += 1;
                    let cond = if self.eat_ident("let") {
                        self.skip_pattern_to_eq();
                        self.expr(1, true)
                    } else {
                        self.expr(1, true)
                    };
                    let body = self.block();
                    Expr::While {
                        cond: Box::new(cond),
                        body,
                        line,
                    }
                }
                "for" => {
                    self.pos += 1;
                    let mut pat = Vec::new();
                    let mut depth = 0i32;
                    while let Some(t) = self.peek(0) {
                        if depth == 0 && t.is_ident("in") {
                            self.pos += 1;
                            break;
                        }
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            _ if t.kind == TokenKind::Ident
                                && t.text != "mut"
                                && t.text != "ref" =>
                            {
                                pat.push(t.text.clone());
                            }
                            _ => {}
                        }
                        self.pos += 1;
                    }
                    let iter = self.expr(1, true);
                    let body = self.block();
                    Expr::ForLoop {
                        pat,
                        iter: Box::new(iter),
                        body,
                        line,
                    }
                }
                "loop" => {
                    self.pos += 1;
                    Expr::Loop {
                        body: self.block(),
                        line,
                    }
                }
                "match" => self.match_expr(),
                "unsafe" => {
                    self.pos += 1;
                    Expr::BlockExpr(self.block())
                }
                "return" | "break" => {
                    let op = t.text.clone();
                    self.pos += 1;
                    let operand = if self.peek(0).is_some_and(|n| {
                        !(n.is_punct(";")
                            || n.is_punct("}")
                            || n.is_punct(")")
                            || n.is_punct(",")
                            || n.is_punct("]"))
                    }) {
                        self.expr(1, no_struct)
                    } else {
                        Expr::Other { line }
                    };
                    Expr::Unary {
                        op,
                        expr: Box::new(operand),
                        line,
                    }
                }
                "continue" => {
                    self.pos += 1;
                    Expr::Other { line }
                }
                "move" => {
                    self.pos += 1;
                    self.closure(line)
                }
                _ => self.path_expr(no_struct),
            },
            TokenKind::Punct => match t.text.as_str() {
                "-" | "!" | "*" => {
                    let op = t.text.clone();
                    self.pos += 1;
                    let operand = self.prefix(no_struct);
                    let operand = self.postfix(operand, no_struct);
                    Expr::Unary {
                        op,
                        expr: Box::new(operand),
                        line,
                    }
                }
                "&" | "&&" => {
                    // `&&x` is two nested borrows.
                    let double = t.text == "&&";
                    self.pos += 1;
                    self.eat_ident("mut");
                    let operand = self.prefix(no_struct);
                    let operand = self.postfix(operand, no_struct);
                    let inner = Expr::Unary {
                        op: "&".to_owned(),
                        expr: Box::new(operand),
                        line,
                    };
                    if double {
                        Expr::Unary {
                            op: "&".to_owned(),
                            expr: Box::new(inner),
                            line,
                        }
                    } else {
                        inner
                    }
                }
                "|" | "||" => self.closure(line),
                "{" => Expr::BlockExpr(self.block()),
                "(" => {
                    self.pos += 1;
                    let exprs = self.comma_exprs(")");
                    Expr::Seq { exprs, line }
                }
                "[" => {
                    self.pos += 1;
                    let mut exprs = Vec::new();
                    loop {
                        let before = self.pos;
                        match self.peek(0) {
                            None => break,
                            Some(t) if t.is_punct("]") => {
                                self.pos += 1;
                                break;
                            }
                            _ => {}
                        }
                        exprs.push(self.expr(1, false));
                        if !(self.eat_punct(",") || self.eat_punct(";")) && self.pos == before {
                            self.pos += 1;
                        }
                    }
                    Expr::Seq { exprs, line }
                }
                ".." | "..=" => {
                    // RangeTo / RangeFull in prefix position.
                    self.pos += 1;
                    let operand = if self.peek(0).is_some_and(|n| {
                        n.kind != TokenKind::Punct
                            || n.is_punct("(")
                            || n.is_punct("-")
                            || n.is_punct("&")
                    }) {
                        self.expr(5, no_struct)
                    } else {
                        Expr::Other { line }
                    };
                    Expr::Unary {
                        op: "..".to_owned(),
                        expr: Box::new(operand),
                        line,
                    }
                }
                _ => {
                    self.pos += 1;
                    Expr::Other { line }
                }
            },
        }
    }

    /// `|args| body` with the leading `|`/`||` (or post-`move`) at cursor.
    fn closure(&mut self, line: usize) -> Expr {
        if self.eat_punct("||") {
            // Zero-parameter closure.
        } else if self.eat_punct("|") {
            let mut depth = 0i32;
            while let Some(t) = self.peek(0) {
                if depth == 0 && (t.is_punct("|") || t.is_punct("||")) {
                    // `||` here would be a nested zero-param closure head —
                    // cannot occur in a parameter list; both close.
                    self.pos += 1;
                    break;
                }
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    _ => {}
                }
                self.pos += 1;
            }
        } else {
            return Expr::Other { line };
        }
        if self.eat_punct("->") {
            let _ = self.scan_type(&["{"], &[]);
        }
        let body = self.expr(1, false);
        Expr::Closure {
            body: Box::new(body),
            line,
        }
    }

    fn if_expr(&mut self) -> Expr {
        let line = self.line();
        self.pos += 1; // `if`
        let cond = if self.eat_ident("let") {
            self.skip_pattern_to_eq();
            self.expr(1, true)
        } else {
            self.expr(1, true)
        };
        let then = self.block();
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.if_expr()))
            } else {
                Some(Box::new(Expr::BlockExpr(self.block())))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            els,
            line,
        }
    }

    /// Skips an `if let`/`while let` pattern through its `=`.
    fn skip_pattern_to_eq(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if depth == 0 && t.is_punct("=") {
                self.pos += 1;
                return;
            }
            if depth == 0 && (t.is_punct("{") || t.is_punct(";")) {
                return; // malformed; resync
            }
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            self.pos += 1;
        }
    }

    fn match_expr(&mut self) -> Expr {
        let line = self.line();
        self.pos += 1; // `match`
        let scrutinee = self.expr(1, true);
        let mut arms = Vec::new();
        if self.eat_punct("{") {
            loop {
                let before = self.pos;
                match self.peek(0) {
                    None => break,
                    Some(t) if t.is_punct("}") => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                // Pattern (and optional guard) through `=>` at depth 0.
                let mut depth = 0i32;
                let mut found_arrow = false;
                while let Some(t) = self.peek(0) {
                    if depth == 0 && t.is_punct("=>") {
                        self.pos += 1;
                        found_arrow = true;
                        break;
                    }
                    if depth == 0 && t.is_punct("}") {
                        break;
                    }
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        _ => {}
                    }
                    self.pos += 1;
                }
                if found_arrow {
                    arms.push(self.expr(1, false));
                    self.eat_punct(",");
                }
                if self.pos == before {
                    self.pos += 1;
                }
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }

    /// A path (`a::b::c`, with turbofish skipped), then macro-call or
    /// struct-literal continuation.
    fn path_expr(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let mut segs = Vec::new();
        loop {
            match self.peek(0) {
                Some(t) if t.kind == TokenKind::Ident => {
                    segs.push(t.text.clone());
                    self.pos += 1;
                }
                _ => break,
            }
            if self.at_punct("::") {
                if self.peek(1).is_some_and(|t| t.is_punct("<")) {
                    // Path turbofish: `Foo::<Bar>::baz` — skip the angles.
                    self.pos += 1;
                    self.skip_angles();
                    if !self.at_punct("::") {
                        break;
                    }
                    self.pos += 1;
                } else if self.peek(1).is_some_and(|t| t.kind == TokenKind::Ident) {
                    self.pos += 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if segs.is_empty() {
            self.pos += 1;
            return Expr::Other { line };
        }
        // Macro call?
        if self.at_punct("!")
            && self
                .peek(1)
                .is_some_and(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
        {
            self.pos += 2; // `!` + opening delimiter
            let mut depth = 1usize;
            let mut inner_calls = Vec::new();
            let mut inner_idents = Vec::new();
            while depth > 0 {
                let Some(t) = self.bump() else { break };
                match t.kind {
                    TokenKind::Punct => match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        _ => {}
                    },
                    TokenKind::Ident => {
                        inner_idents.push(t.text.clone());
                        if self.at_punct("(") {
                            inner_calls.push((t.text.clone(), t.line));
                        }
                    }
                    _ => {}
                }
            }
            return Expr::MacroCall {
                name: segs.last().cloned().unwrap_or_default(),
                line,
                inner_calls,
                inner_idents,
            };
        }
        // Struct literal?
        if !no_struct && self.at_punct("{") && self.looks_like_struct_lit() {
            self.pos += 1; // `{`
            let mut fields = Vec::new();
            loop {
                let before = self.pos;
                match self.peek(0) {
                    None => break,
                    Some(t) if t.is_punct("}") => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                if self.eat_punct("..") {
                    fields.push(self.expr(1, false));
                } else if self.peek(0).is_some_and(|t| t.kind == TokenKind::Ident)
                    && self.peek(1).is_some_and(|t| t.is_punct(":"))
                {
                    self.pos += 2;
                    fields.push(self.expr(1, false));
                } else if self.peek(0).is_some_and(|t| t.kind == TokenKind::Ident) {
                    // Shorthand `Foo { x }`.
                    let t = self.toks[self.pos].clone();
                    fields.push(Expr::Path {
                        segs: vec![t.text],
                        line: t.line,
                    });
                    self.pos += 1;
                }
                self.eat_punct(",");
                if self.pos == before {
                    self.pos += 1;
                }
            }
            return Expr::StructLit { segs, fields, line };
        }
        Expr::Path { segs, line }
    }

    /// After a path's `{`: does the body look like struct-literal fields?
    fn looks_like_struct_lit(&self) -> bool {
        match self.peek(1) {
            Some(t) if t.is_punct("}") || t.is_punct("..") => true,
            Some(t) if t.kind == TokenKind::Ident => self
                .peek(2)
                .is_some_and(|n| n.is_punct(":") || n.is_punct(",") || n.is_punct("}")),
            _ => false,
        }
    }

    /// Skips `<…>` starting at the `<`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") || t.is_punct(">=") {
                depth -= 1;
            } else if depth == 0 {
                break;
            }
            self.pos += 1;
            if depth <= 0 {
                break;
            }
        }
    }

    /// Postfix continuations: `.method(…)`, `.field`, `(…)`, `[…]`, `?`,
    /// `as Ty`, `.await`.
    fn postfix(&mut self, mut lhs: Expr, no_struct: bool) -> Expr {
        while let Some(t) = self.peek(0) {
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, ".") => {
                    let line = t.line;
                    let Some(next) = self.peek(1) else {
                        self.pos += 1;
                        break;
                    };
                    match next.kind {
                        TokenKind::Ident => {
                            let name = next.text.clone();
                            let name_line = next.line;
                            self.pos += 2;
                            // Method turbofish: `.collect::<BTreeMap<_, _>>()`.
                            let mut turbofish = Vec::new();
                            if self.at_punct("::") && self.peek(1).is_some_and(|t| t.is_punct("<"))
                            {
                                self.pos += 1;
                                let start = self.pos;
                                self.skip_angles();
                                for t in &self.toks[start..self.pos] {
                                    if t.kind == TokenKind::Ident {
                                        turbofish.push(t.text.clone());
                                    }
                                }
                            }
                            if self.eat_punct("(") {
                                let args = self.comma_exprs(")");
                                lhs = Expr::MethodCall {
                                    recv: Box::new(lhs),
                                    name,
                                    turbofish,
                                    args,
                                    line: name_line,
                                };
                            } else {
                                lhs = Expr::Field {
                                    base: Box::new(lhs),
                                    name,
                                    line: name_line,
                                };
                            }
                        }
                        TokenKind::Number => {
                            let name = next.text.clone();
                            self.pos += 2;
                            lhs = Expr::Field {
                                base: Box::new(lhs),
                                name,
                                line,
                            };
                        }
                        _ => {
                            self.pos += 1;
                        }
                    }
                }
                (TokenKind::Punct, "(") => {
                    let line = t.line;
                    self.pos += 1;
                    let args = self.comma_exprs(")");
                    lhs = Expr::Call {
                        callee: Box::new(lhs),
                        args,
                        line,
                    };
                }
                (TokenKind::Punct, "[") => {
                    let line = t.line;
                    self.pos += 1;
                    let index = self.expr(1, false);
                    self.eat_punct("]");
                    lhs = Expr::Index {
                        base: Box::new(lhs),
                        index: Box::new(index),
                        line,
                    };
                }
                (TokenKind::Punct, "?") => {
                    let line = t.line;
                    self.pos += 1;
                    lhs = Expr::Unary {
                        op: "?".to_owned(),
                        expr: Box::new(lhs),
                        line,
                    };
                }
                (TokenKind::Ident, "as") => {
                    let line = t.line;
                    self.pos += 1;
                    let ty = self.cast_type();
                    lhs = Expr::Cast {
                        expr: Box::new(lhs),
                        ty,
                        line,
                    };
                }
                _ => break,
            }
            let _ = no_struct;
        }
        lhs
    }

    /// The type after `as`: idents, `::`, balanced angles/parens, leading
    /// pointer/reference sigils.
    fn cast_type(&mut self) -> Type {
        let mut toks = Vec::new();
        // Leading sigils: `*const T`, `*mut T`, `&T`.
        while let Some(t) = self.peek(0) {
            if t.is_punct("*") || t.is_punct("&") || t.is_ident("const") || t.is_ident("mut") {
                toks.push(t.text.clone());
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            let take = match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, _) => true,
                (TokenKind::Punct, "::") => true,
                (TokenKind::Punct, "<") | (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => {
                    depth += 1;
                    true
                }
                (TokenKind::Punct, ">") | (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                    if depth == 0 {
                        false
                    } else {
                        depth -= 1;
                        true
                    }
                }
                _ => depth > 0,
            };
            if !take {
                break;
            }
            toks.push(t.text.clone());
            self.pos += 1;
        }
        Type { toks }
    }

    /// Comma-separated expressions through the closing delimiter.
    fn comma_exprs(&mut self, close: &str) -> Vec<Expr> {
        let mut out = Vec::new();
        loop {
            let before = self.pos;
            match self.peek(0) {
                None => break,
                Some(t) if t.is_punct(close) => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            out.push(self.expr(1, false));
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Stmt};
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    #[test]
    fn fn_signature_and_body() {
        let ast = parse_src(
            "pub fn stats(frag: &Fragmentation, chunks: &[Chunk]) -> Result<Vec<u64>, Error> {\n\
                 let mut out = Vec::new();\n\
                 out.push(1);\n\
                 Ok(out)\n\
             }\n",
        );
        let fns = ast.fns();
        assert_eq!(fns.len(), 1);
        let f = fns[0].def;
        assert_eq!(f.name, "stats");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].0, "frag");
        assert!(f.params[0].1.mentions("Fragmentation"));
        assert!(f.ret.as_ref().is_some_and(|t| t.mentions("Result")));
        assert_eq!(f.body.as_ref().map(|b| b.stmts.len()), Some(3));
    }

    #[test]
    fn impls_mods_and_test_flags() {
        let ast = parse_src(
            "impl<T: Clone> Foo<T> {\n\
                 fn method(&self, x: u64) -> u64 { x }\n\
             }\n\
             impl Display for Bar { fn fmt(&self) {} }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { helper(); }\n\
             }\n",
        );
        let fns = ast.fns();
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].impl_ty, Some("Foo"));
        assert!(fns[0].def.has_self);
        assert_eq!(fns[1].impl_ty, Some("Bar"));
        assert!(fns[2].cfg_test && fns[2].is_test);
    }

    #[test]
    fn method_chains_keep_receivers() {
        let ast = parse_src("fn f(m: &HashMap<u32, u32>) -> usize { m.keys().count() }\n");
        let body = ast.fns()[0].def.body.as_ref().unwrap();
        let Stmt::Expr { expr, .. } = &body.stmts[0] else {
            panic!("expression statement expected");
        };
        let Expr::MethodCall { recv, name, .. } = expr else {
            panic!("method call expected, got {expr:?}");
        };
        assert_eq!(name, "count");
        let Expr::MethodCall { recv, name, .. } = recv.as_ref() else {
            panic!("inner method call expected");
        };
        assert_eq!(name, "keys");
        assert!(matches!(recv.as_ref(), Expr::Path { segs, .. } if segs == &["m"]));
    }

    #[test]
    fn control_flow_and_struct_literals() {
        let ast = parse_src(
            "fn f(n: u64) -> Foo {\n\
                 let mut acc = 0u64;\n\
                 for i in 0..n {\n\
                     if i % 2 == 0 { acc += i; }\n\
                 }\n\
                 while acc > 10 { acc /= 2; }\n\
                 match acc { 0 => Foo { v: 0 }, v => Foo { v } }\n\
             }\n",
        );
        let body = ast.fns()[0].def.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 4);
        assert!(matches!(
            &body.stmts[0],
            Stmt::Let { name: Some(n), .. } if n == "acc"
        ));
        let mut saw_add_assign = false;
        let mut struct_lits = 0;
        body.walk_exprs(&mut |e| match e {
            Expr::Assign { op, .. } if op == "+=" => saw_add_assign = true,
            Expr::StructLit { segs, .. } if segs == &["Foo"] => struct_lits += 1,
            _ => {}
        });
        assert!(saw_add_assign);
        assert_eq!(struct_lits, 2);
    }

    #[test]
    fn wildcard_let_and_macros() {
        let ast = parse_src(
            "fn f() {\n\
                 let _ = fallible();\n\
                 let (a, b) = pair();\n\
                 println!(\"{} {}\", helper(a), b);\n\
             }\n",
        );
        let body = ast.fns()[0].def.body.as_ref().unwrap();
        assert!(matches!(
            &body.stmts[0],
            Stmt::Let {
                wildcard: true,
                name: None,
                ..
            }
        ));
        assert!(matches!(&body.stmts[1], Stmt::Let { name: None, .. }));
        let Stmt::Expr { expr, .. } = &body.stmts[2] else {
            panic!("macro statement expected");
        };
        let Expr::MacroCall {
            name, inner_calls, ..
        } = expr
        else {
            panic!("macro call expected, got {expr:?}");
        };
        assert_eq!(name, "println");
        assert_eq!(inner_calls.len(), 1);
        assert_eq!(inner_calls[0].0, "helper");
    }

    #[test]
    fn let_else_and_turbofish() {
        let ast = parse_src(
            "fn f(v: Vec<u64>) -> BTreeMap<u64, u64> {\n\
                 let Some(x) = v.first() else { return BTreeMap::new(); };\n\
                 v.iter().map(|k| (*k, x + k)).collect::<BTreeMap<u64, u64>>()\n\
             }\n",
        );
        let body = ast.fns()[0].def.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2);
        let mut turbofish = Vec::new();
        body.walk_exprs(&mut |e| {
            if let Expr::MethodCall {
                name, turbofish: t, ..
            } = e
            {
                if name == "collect" {
                    turbofish = t.clone();
                }
            }
        });
        assert!(turbofish.contains(&"BTreeMap".to_owned()));
    }

    #[test]
    fn pathological_inputs_terminate() {
        for src in [
            "fn f( {",
            "impl {",
            "match",
            "fn f() { if }",
            "let x = ;",
            "fn f() { a.b.(; }",
            "struct S { x: }",
            "fn f() { ((((( }",
            "#[cfg(test)",
        ] {
            let _ = parse_src(src); // must not hang or panic
        }
    }

    /// The parser must accept every real workspace file without panicking
    /// and find a plausible number of functions.
    #[test]
    fn parses_the_entire_workspace() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let mut files = Vec::new();
        let crates = std::fs::read_dir(root.join("crates")).expect("crates dir");
        for entry in crates {
            let src_dir = entry.expect("dir entry").path().join("src");
            if src_dir.is_dir() {
                collect(&src_dir, &mut files);
            }
        }
        assert!(files.len() > 20, "workspace walk found too few files");
        let mut total_fns = 0usize;
        for f in &files {
            let src = std::fs::read_to_string(f).expect("readable source");
            let ast = parse_src(&src);
            total_fns += ast.fns().len();
        }
        assert!(
            total_fns > 300,
            "expected hundreds of fns across the workspace, got {total_fns}"
        );
    }

    #[cfg(test)]
    fn collect(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                collect(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
}
