//! The token-level rule engine: project-specific determinism & safety
//! rules that clippy cannot express, each born from a concrete bug class
//! (see DESIGN.md §11 for the postmortems).
//!
//! | rule id                | catches                                          |
//! |------------------------|--------------------------------------------------|
//! | `map-iter-order`       | hash-order nondeterminism leaking into outputs   |
//! | `obs-fallback-parity`  | `#[cfg(feature = "obs")]` items with no no-op twin |
//! | `obs-name-prefix`      | metric/span names outside the stage registry     |
//! | `panic-in-lib`         | `panic!`/`assert!` in non-test library paths     |
//!
//! The semantic rules (`determinism-taint`, `unchecked-arith-expr`,
//! `error-drop`) live in [`crate::taint`] and [`crate::semantic`] on top of
//! the AST/call-graph layer (DESIGN.md §14); this module keeps the
//! token-stream rules and the shared vocabulary constants they draw on.
//!
//! Token rules work on the stream from [`crate::lexer`] — heuristic by
//! design. False positives are handled by the escape contract
//! (`// nashdb-lint: allow(rule-id) -- why`), never by weakening a rule.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Every rule id the engine can emit, including the meta-rule for escapes
/// lacking a justification.
pub const RULE_IDS: &[&str] = &[
    "map-iter-order",
    "determinism-taint",
    "unchecked-arith-expr",
    "error-drop",
    "obs-fallback-parity",
    "obs-name-prefix",
    "panic-in-lib",
    "escape-needs-justification",
];

/// Maps deprecated rule ids to their current spelling. `unchecked-arith`
/// (token-stream, name-heuristic) was superseded by the expression-level
/// `unchecked-arith-expr`; old escapes and baseline entries keep working
/// through this alias.
#[must_use]
pub fn canonical_rule(id: &str) -> &str {
    match id {
        "unchecked-arith" => "unchecked-arith-expr",
        other => other,
    }
}

/// Crates whose outputs must be a deterministic function of the scan
/// window; `map-iter-order` applies only to these (crate directory names).
pub const DETERMINISTIC_CRATES: &[&str] = &["core", "nashdb", "sim", "cluster"];

/// The registered pipeline stage-name prefixes every obs metric literal
/// must carry. `nashdb-bench smoke`'s coverage gate checks the same list
/// (a `nashdb-bench` test asserts the two registries agree), so a metric
/// that passes the linter is also a metric the coverage check can see.
pub const STAGE_PREFIXES: &[&str] = &[
    "value_tree.",
    "fragment.",
    "replication.",
    "packing.",
    "transition.",
    "routing.",
    "cluster.",
    "distributor.",
    "perf.",
];

/// The registered span path segments (`nashdb_obs::span` nests these into
/// slash-joined paths like `pipeline/reconfigure/scheme`).
pub const SPAN_SEGMENTS: &[&str] = &[
    "pipeline",
    "provision",
    "reconfigure",
    "query",
    "scheme",
    "fragment",
    "replication",
    "value_chunks",
    "route",
    "place",
    "transition",
    "retry",
];

/// Crates exempt from `obs-name-prefix`: the obs crate itself (its docs and
/// internals use toy names by design) and the linter.
const OBS_NAME_EXEMPT_CRATES: &[&str] = &["obs", "lint"];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id from [`RULE_IDS`].
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation with the offending construct.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Runs every applicable rule over one file, applies the escape contract,
/// and returns the surviving findings in line order.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    if DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) {
        map_iter_order(file, &mut findings);
    }
    obs_fallback_parity(file, &mut findings);
    if !OBS_NAME_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        obs_name_prefix(file, &mut findings);
    }
    panic_in_lib(file, &mut findings);

    // Escape contract: drop findings covered by a *justified* escape; an
    // unjustified escape is itself a finding (whether or not it covers
    // anything) so "allow with no reason" can never land silently.
    findings.retain(|f| {
        !file.escapes.iter().any(|e| {
            e.justified
                && canonical_rule(&e.rule) == f.rule
                && (e.file_wide || e.line == f.line || e.line + 1 == f.line)
        })
    });
    for e in &file.escapes {
        if !e.justified {
            findings.push(Finding {
                rule: "escape-needs-justification",
                file: file.path.clone(),
                line: e.line,
                message: format!(
                    "escape for `{}` has no justification; write `-- <reason>` after the directive",
                    e.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// True for lines the rules must ignore (inside `#[cfg(test)]` items).
fn in_test(file: &SourceFile, line: usize) -> bool {
    file.test_lines.contains(line)
}

// ---------------------------------------------------------------------------
// Shared token-stream helpers
// ---------------------------------------------------------------------------

/// Collects names whose declared type mentions one of `type_names`:
/// `name: HashMap<…>`, `name: u64`, struct fields, fn params — anything of
/// the shape `name` `:` …type tokens… terminated by `=`, `,`, `;`, `)`,
/// `{`, or `>` at nesting level 0 — plus `name = TypeName::…` initializers
/// and (for numeric types) `name = 0u64`-style suffixed literals.
fn typed_names(toks: &[Token], type_names: &[&str], suffixes: &[&str]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident && i + 1 < toks.len() && toks[i + 1].is_punct(":") {
            let name = &toks[i].text;
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut hit = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    if angle == 0 {
                        break;
                    }
                    angle -= 1;
                } else if angle == 0
                    && (t.is_punct("=")
                        || t.is_punct(",")
                        || t.is_punct(";")
                        || t.is_punct(")")
                        || t.is_punct("{"))
                {
                    break;
                } else if t.kind == TokenKind::Ident && type_names.contains(&t.text.as_str()) {
                    hit = true;
                }
                j += 1;
            }
            if hit && !out.contains(name) {
                out.push(name.clone());
            }
        }
        // `let [mut] name = HashMap::new()` / `let mut acc = 0u64`.
        if toks[i].kind == TokenKind::Ident && i + 1 < toks.len() && toks[i + 1].is_punct("=") {
            let name = &toks[i].text;
            if let Some(t) = toks.get(i + 2) {
                let init_type = t.kind == TokenKind::Ident && type_names.contains(&t.text.as_str());
                let init_suffix =
                    t.kind == TokenKind::Number && suffixes.iter().any(|s| t.text.ends_with(s));
                if (init_type || init_suffix) && !out.contains(name) {
                    out.push(name.clone());
                }
            }
        }
        i += 1;
    }
    out
}

/// Scans forward from token `start` to the end of the enclosing statement
/// (a `;`, or a `{`/`}` that leaves the expression) and returns true if any
/// identifier along the way is in `sinks`.
fn statement_mentions(toks: &[Token], start: usize, sinks: &[&str]) -> bool {
    let mut depth = 0i32;
    for t in &toks[start..] {
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                ";" | "{" | "}" if depth == 0 => return false,
                _ => {}
            },
            TokenKind::Ident if sinks.contains(&t.text.as_str()) => return true,
            _ => {}
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: map-iter-order
// ---------------------------------------------------------------------------

/// Iteration methods whose order is the hash map's internal order.
pub const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Order-insensitive (or re-ordering) sinks that sanction an iteration:
/// sorting, collecting into an ordered container, or a commutative
/// reduction. (Floating-point `sum` is order-sensitive in the last bits;
/// value-critical float folds should iterate sorted inputs regardless —
/// the escape contract is the pressure valve, not a weaker rule.)
pub const SANCTIONED_SINKS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "count",
    "len",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "is_empty",
    "contains",
    "contains_key",
];

/// PR 3's `economic_config()` bug class: `HashMap`/`HashSet` iteration
/// order leaking into deterministic outputs. Flags `.iter()`-family calls
/// and `for … in` loops over hash-typed bindings unless the statement
/// immediately re-orders or order-insensitively reduces the result.
fn map_iter_order(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    let hash_named = typed_names(toks, &["HashMap", "HashSet"], &[]);
    let is_hash = |name: &str| hash_named.iter().any(|n| n == name);

    let mut i = 0;
    while i < toks.len() {
        let line = toks[i].line;
        if in_test(file, line) {
            i += 1;
            continue;
        }
        // `name.iter()` / `self.name.keys()` — receiver is the ident right
        // before the dot (possibly behind `self.`).
        if toks[i].is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokenKind::Ident
            && ITER_METHODS.contains(&toks[i + 1].text.as_str())
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            if let Some(recv) = toks[..i].last() {
                if recv.kind == TokenKind::Ident && recv.text != "self" && is_hash(&recv.text) {
                    // Start at the call's `(` so the paren depth carries the
                    // scan past it to the rest of the statement.
                    if !statement_mentions(toks, i + 2, SANCTIONED_SINKS) {
                        findings.push(Finding {
                            rule: "map-iter-order",
                            file: file.path.clone(),
                            line,
                            message: format!(
                                "iteration over hash-ordered `{}` via `.{}()`; sort the result, reduce \
                                 order-insensitively, use a BTree container, or escape with a justification",
                                recv.text, toks[i + 1].text
                            ),
                        });
                    }
                }
            }
        }
        // `for pat in [&[mut]] [self.]name {` over a hash-typed binding.
        if toks[i].is_ident("for") {
            if let Some(in_idx) = toks[i..]
                .iter()
                .take(24)
                .position(|t| t.is_ident("in"))
                .map(|off| i + off)
            {
                let mut j = in_idx + 1;
                while toks
                    .get(j)
                    .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
                {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_ident("self"))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct("."))
                {
                    j += 2;
                }
                if let (Some(name_tok), Some(open)) = (toks.get(j), toks.get(j + 1)) {
                    if name_tok.kind == TokenKind::Ident
                        && open.is_punct("{")
                        && is_hash(&name_tok.text)
                    {
                        findings.push(Finding {
                            rule: "map-iter-order",
                            file: file.path.clone(),
                            line: name_tok.line,
                            message: format!(
                                "`for` loop over hash-ordered `{}`; iterate a sorted copy or escape \
                                 with a justification if the body is order-independent",
                                name_tok.text
                            ),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Shared arithmetic vocabulary (used by `unchecked-arith-expr`)
// ---------------------------------------------------------------------------

/// Evidence in the same statement that the arithmetic is overflow-aware.
pub const CHECKED_MARKERS: &[&str] = &[
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "checked_add",
    "checked_mul",
    "checked_sub",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "checked_cast",
    "usize_from",
    "saturating_u64",
];

// ---------------------------------------------------------------------------
// Rule: obs-fallback-parity
// ---------------------------------------------------------------------------

/// Obs feature gating must be total: every `#[cfg(feature = "obs")]` item
/// needs a `#[cfg(not(feature = "obs"))]` twin providing the same names, or
/// `--no-default-features` builds break — at a distance, in whichever crate
/// first touches the missing symbol.
fn obs_fallback_parity(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    let mut gated: Vec<(bool, usize, Vec<String>)> = Vec::new(); // (negated, line, names)

    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut is_cfg = false;
        let mut negated = false;
        let mut feature_obs = false;
        let mut prev_feature = false;
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
            } else if t.is_ident("cfg") {
                is_cfg = true;
            } else if t.is_ident("not") {
                negated = true;
            } else if t.is_ident("feature") {
                prev_feature = true;
                j += 1;
                continue;
            } else if prev_feature && t.kind == TokenKind::Str && t.text == "obs" {
                feature_obs = true;
            }
            if !t.is_punct("=") {
                prev_feature = false;
            }
            j += 1;
        }
        if !(is_cfg && feature_obs) {
            i = j;
            continue;
        }
        let names = item_names(toks, j);
        gated.push((negated, attr_line, names));
        i = j;
    }

    let provided_by_not: Vec<&String> = gated
        .iter()
        .filter(|(neg, _, _)| *neg)
        .flat_map(|(_, _, names)| names)
        .collect();
    for (neg, line, names) in &gated {
        if *neg {
            continue;
        }
        for name in names {
            if !provided_by_not.contains(&name) {
                findings.push(Finding {
                    rule: "obs-fallback-parity",
                    file: file.path.clone(),
                    line: *line,
                    message: format!(
                        "`#[cfg(feature = \"obs\")]` provides `{name}` but no \
                         `#[cfg(not(feature = \"obs\"))]` twin in this file provides it; \
                         `--no-default-features` builds will miss the symbol"
                    ),
                });
            }
        }
    }
}

/// The names an item starting at token index `start` (just past the
/// attribute's `]`) introduces. For `use` declarations that's every leaf
/// (respecting `as` renames); for named items it's the single identifier
/// after the keyword.
fn item_names(toks: &[Token], start: usize) -> Vec<String> {
    let mut k = start;
    // Skip further attributes and visibility.
    loop {
        if toks.get(k).is_some_and(|t| t.is_punct("#"))
            && toks.get(k + 1).is_some_and(|t| t.is_punct("["))
        {
            let mut d = 1usize;
            k += 2;
            while k < toks.len() && d > 0 {
                if toks[k].is_punct("[") {
                    d += 1;
                } else if toks[k].is_punct("]") {
                    d -= 1;
                }
                k += 1;
            }
            continue;
        }
        if toks.get(k).is_some_and(|t| t.is_ident("pub")) {
            k += 1;
            if toks.get(k).is_some_and(|t| t.is_punct("(")) {
                let mut d = 1usize;
                k += 1;
                while k < toks.len() && d > 0 {
                    if toks[k].is_punct("(") {
                        d += 1;
                    } else if toks[k].is_punct(")") {
                        d -= 1;
                    }
                    k += 1;
                }
            }
            continue;
        }
        break;
    }
    let Some(kw) = toks.get(k) else {
        return Vec::new();
    };
    if kw.is_ident("use") {
        // Leaves of the use tree up to `;`: idents directly before `,`,
        // `}`, or `;` — except path segments (followed by `::`) — with `as`
        // renames taking precedence.
        let mut names = Vec::new();
        let mut j = k + 1;
        while j < toks.len() && !toks[j].is_punct(";") {
            let t = &toks[j];
            if t.kind == TokenKind::Ident
                && !t.is_ident("as")
                && toks
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct(",") || n.is_punct("}") || n.is_punct(";"))
                && !toks
                    .get(j.wrapping_sub(1))
                    .is_some_and(|p| p.is_ident("as"))
            {
                names.push(t.text.clone());
            }
            if t.is_ident("as") {
                if let Some(n) = toks.get(j + 1) {
                    names.push(n.text.clone());
                    j += 2;
                    continue;
                }
            }
            j += 1;
        }
        // A plain `use a::b::leaf;` ends right at `;` with leaf before it.
        if names.is_empty() {
            if let Some(t) = toks.get(j.wrapping_sub(1)) {
                if t.kind == TokenKind::Ident {
                    names.push(t.text.clone());
                }
            }
        }
        return names;
    }
    for kw_name in [
        "fn", "struct", "enum", "trait", "mod", "static", "const", "type", "union",
    ] {
        if kw.is_ident(kw_name) {
            return toks
                .get(k + 1)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| vec![t.text.clone()])
                .unwrap_or_default();
        }
    }
    if kw.is_ident("impl") {
        // Key an impl block by the type it implements for: first ident after
        // `impl` that is not a generic parameter list.
        let mut j = k + 1;
        let mut angle = 0i32;
        while let Some(t) = toks.get(j) {
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if angle == 0 && t.kind == TokenKind::Ident {
                return vec![t.text.clone()];
            } else if t.is_punct("{") {
                break;
            }
            j += 1;
        }
    }
    Vec::new()
}

// ---------------------------------------------------------------------------
// Rule: obs-name-prefix
// ---------------------------------------------------------------------------

/// Obs recording functions whose first argument is a metric name.
const METRIC_FNS: &[&str] = &["counter_add", "gauge_set", "record", "record_duration"];

/// Metric/span name literals must come from the stage registry, so the
/// bench-smoke coverage gate can actually see every stage: a metric named
/// outside the registry is invisible to `missing_stages` and would rot
/// silently.
fn obs_name_prefix(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || in_test(file, t.line) {
            continue;
        }
        let Some(lit) = toks
            .get(i + 1)
            .filter(|n| n.is_punct("("))
            .and_then(|_| toks.get(i + 2))
            .filter(|l| l.kind == TokenKind::Str)
        else {
            continue;
        };
        if METRIC_FNS.contains(&t.text.as_str()) {
            if !STAGE_PREFIXES.iter().any(|p| lit.text.starts_with(p)) {
                findings.push(Finding {
                    rule: "obs-name-prefix",
                    file: file.path.clone(),
                    line: lit.line,
                    message: format!(
                        "metric name {:?} does not start with a registered stage prefix \
                         ({}); the bench-smoke coverage gate cannot account for it",
                        lit.text,
                        STAGE_PREFIXES.join(" ")
                    ),
                });
            }
        } else if t.is_ident("span")
            && !SPAN_SEGMENTS.contains(&lit.text.as_str())
            // Snapshot lookups take full slash-joined paths; only creation
            // sites (bare segments) are registry-checked.
            && !lit.text.contains('/')
        {
            findings.push(Finding {
                rule: "obs-name-prefix",
                file: file.path.clone(),
                line: lit.line,
                message: format!(
                    "span segment {:?} is not in the registered span registry ({})",
                    lit.text,
                    SPAN_SEGMENTS.join(" ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: panic-in-lib
// ---------------------------------------------------------------------------

/// Panicking macros clippy's restriction lints miss behind `cfg` or inside
/// other macros.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Library code surfaces failures as typed errors; panics are for tests,
/// binaries, and audit modules (which escape file-wide with justification).
/// `debug_assert*` is exempt — it vanishes in release builds.
fn panic_in_lib(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.is_bin {
        return;
    }
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && !in_test(file, t.line)
        {
            findings.push(Finding {
                rule: "panic-in-lib",
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "`{}!` in non-test library code; return a typed error, or escape with a \
                     justification if this is a documented contract violation",
                    t.text
                ),
            });
        }
    }
}
