//! `nashdb-lint` — the CI entry point.
//!
//! ```text
//! nashdb-lint --workspace [--root DIR] [--baseline lint-baseline.json] [--strict-baseline]
//! nashdb-lint --workspace --write-baseline lint-baseline.json
//! ```
//!
//! Exit codes: 0 clean (modulo baseline), 1 findings (or stale baseline
//! under `--strict-baseline`), 2 usage/IO error.

use std::path::PathBuf;
use std::process::exit;

use nashdb_lint::{lint_workspace, Baseline, RULE_IDS};

const HELP: &str = "\
nashdb-lint — workspace determinism & safety linter

Token rules (per file) plus semantic rules over a workspace-wide AST and
call graph: `determinism-taint` follows hash-iteration/time/randomness
through helper calls into the deterministic crates, `unchecked-arith-expr`
flags data-dependent integer accumulation in loops, and `error-drop`
catches `let _ =` discarding a workspace `Result`. `unchecked-arith` is a
deprecated alias for `unchecked-arith-expr`; old escapes and baseline
entries keep working.

USAGE:
  nashdb-lint --workspace [OPTIONS]

OPTIONS:
  --root DIR             workspace root (default: current directory)
  --baseline FILE        ratchet file of accepted legacy findings; the run
                         fails only on findings beyond the recorded counts
  --strict-baseline      also fail (exit 1) when the baseline is stale:
                         an entry allows more findings than remain, or
                         names a file that no longer exists
  --write-baseline FILE  write the current findings as the new baseline
                         and exit 0
  --list-rules           print the rule ids and exit
  -h, --help             this text

Escape contract (preferred over baselining new code):
  // nashdb-lint: allow(rule-id) -- justification        one site
  // nashdb-lint: allow-file(rule-id) -- justification   whole file
";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nrun with --help for usage");
    exit(2)
}

fn take_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        die(&format!("{name} requires a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == name) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if take_flag(&mut args, "--help") || take_flag(&mut args, "-h") {
        print!("{HELP}");
        return;
    }
    if take_flag(&mut args, "--list-rules") {
        for rule in RULE_IDS {
            println!("{rule}");
        }
        return;
    }
    let workspace = take_flag(&mut args, "--workspace");
    let strict_baseline = take_flag(&mut args, "--strict-baseline");
    let root = take_value(&mut args, "--root").map_or_else(|| PathBuf::from("."), PathBuf::from);
    let baseline_path = take_value(&mut args, "--baseline");
    let write_baseline = take_value(&mut args, "--write-baseline");
    if !args.is_empty() {
        die(&format!("unrecognized arguments: {args:?}"));
    }
    if !workspace {
        die("nothing to do: pass --workspace");
    }
    if !root.join("Cargo.toml").is_file() {
        die(&format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => die(&format!("walking {}: {e}", root.display())),
    };

    if let Some(path) = write_baseline {
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&path, baseline.to_json_string()) {
            die(&format!("writing {path}: {e}"));
        }
        eprintln!(
            "baseline written to {path}: {} findings across {} (rule, file) groups",
            findings.len(),
            baseline.len()
        );
        return;
    }

    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(raw) => match Baseline::from_json_str(&raw) {
                Ok(b) => b,
                Err(e) => die(&format!("{path}: {e}")),
            },
            Err(e) => die(&format!("reading {path}: {e}")),
        },
        None => Baseline::default(),
    };

    let outcome = baseline.check(&findings);
    let level = if strict_baseline { "error" } else { "note" };
    for (rule, file, allowed, actual) in &outcome.stale {
        if !root.join(file).is_file() {
            eprintln!(
                "{level}: stale baseline entry: {file} [{rule}] allows {allowed} finding(s) \
                 but the file no longer exists — regenerate with --write-baseline"
            );
        } else {
            eprintln!(
                "{level}: stale baseline entry: {file} [{rule}] allows {allowed} but only \
                 {actual} remain — regenerate with --write-baseline to ratchet down"
            );
        }
    }
    if strict_baseline && !outcome.stale.is_empty() && outcome.over.is_empty() {
        eprintln!(
            "\nlint FAILED: --strict-baseline and {} stale baseline entr(y/ies); the ratchet \
             must be regenerated so fixed debt cannot silently return.",
            outcome.stale.len()
        );
        exit(1)
    }
    if outcome.over.is_empty() {
        eprintln!(
            "lint ok: {} findings, all within baseline ({} groups)",
            findings.len(),
            baseline.len()
        );
        return;
    }
    for f in &outcome.over {
        println!("{f}");
    }
    eprintln!(
        "\nlint FAILED: {} finding(s) beyond the baseline. Fix them, add a justified \
         `// nashdb-lint: allow(rule) -- why` escape, or (for pre-existing debt only) \
         regenerate the baseline.",
        outcome.over.len()
    );
    exit(1)
}
