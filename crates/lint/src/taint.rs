//! Rule `determinism-taint`: cross-function nondeterminism dataflow.
//!
//! The token-stream rule `map-iter-order` sees a hash iteration only when
//! the receiver is a plainly-named binding right before the dot. Moving the
//! map behind a one-call getter (`self.map().keys()`) or a helper in
//! another crate makes it invisible. This rule closes that hole with the
//! AST + call graph:
//!
//! * **Sources**: `.iter()`-family calls and `for` loops whose receiver is
//!   hash-typed (by parameter/let/field/return-type evidence),
//!   `RandomState`, `Instant::now`/`SystemTime::now`, and raw
//!   `thread::spawn` outside `nashdb-par`.
//! * **Sanitizers**: the same statement mentioning a sorting/ordering/
//!   order-insensitive sink sanitizes an *iteration* source; time, RNG, and
//!   spawn sources cannot be sanitized, only escaped.
//! * **Propagation**: a function containing an unsanitized source taints
//!   every caller whose call statement is not itself sanitized, transitively
//!   across files and crates.
//!
//! Findings are confined to non-test functions in the deterministic crates
//! ([`crate::rules::DETERMINISTIC_CRATES`]). A source inside those crates is
//! reported at the source line; taint flowing in from *outside* them (or
//! from test-gated code) is reported at the frontier call site with a
//! provenance chain. The escape ids `determinism-taint` and (for
//! compatibility at iteration sites) `map-iter-order` both silence a line.

use std::collections::BTreeSet;

use crate::ast::{Expr, Stmt, Type};
use crate::callgraph::Workspace;
use crate::rules::{Finding, DETERMINISTIC_CRATES, ITER_METHODS, SANCTIONED_SINKS};

/// Methods that return (a view of) their receiver unchanged for typing
/// purposes.
const IDENTITY_METHODS: &[&str] = &["clone", "as_ref", "as_mut", "borrow", "borrow_mut"];

/// One nondeterminism source found in a function body.
#[derive(Debug, Clone)]
struct Source {
    line: usize,
    desc: String,
}

/// One resolved call site.
#[derive(Debug, Clone, Copy)]
struct CallSite {
    line: usize,
    callee: usize,
    /// The call statement mentions a sanctioned sink.
    sanitized: bool,
}

#[derive(Debug, Default)]
struct FnFacts {
    sources: Vec<Source>,
    calls: Vec<CallSite>,
}

/// Why a function is tainted.
#[derive(Debug, Clone)]
enum Cause {
    /// Contains a source itself.
    Own(Source),
    /// Calls a tainted function at this line.
    Via(usize, usize),
}

/// Runs the rule over the whole parsed workspace. Escape filtering is the
/// caller's job (it is shared across the semantic rules).
pub fn determinism_taint(ws: &Workspace<'_>) -> Vec<Finding> {
    let facts: Vec<FnFacts> = (0..ws.fns.len()).map(|i| analyze_fn(ws, i)).collect();

    // Fixpoint: taint flows callee → caller through unsanitized calls.
    let mut tainted: Vec<Option<Cause>> = facts
        .iter()
        .map(|f| f.sources.first().map(|s| Cause::Own(s.clone())))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (i, f) in facts.iter().enumerate() {
            if tainted[i].is_some() {
                continue;
            }
            if let Some(c) = f
                .calls
                .iter()
                .find(|c| !c.sanitized && tainted[c.callee].is_some())
            {
                tainted[i] = Some(Cause::Via(c.line, c.callee));
                changed = true;
            }
        }
    }

    let mut findings = Vec::new();
    for (i, f) in facts.iter().enumerate() {
        let node = &ws.fns[i];
        let file = &ws.files[node.file].0;
        let in_scope = DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) && !node.in_test;
        if !in_scope {
            continue;
        }
        for s in &f.sources {
            if file.test_lines.contains(s.line) {
                continue;
            }
            findings.push(Finding {
                rule: "determinism-taint",
                file: file.path.clone(),
                line: s.line,
                message: format!(
                    "`{}` {}; sort the result, reduce order-insensitively, use a BTree \
                     container, or escape with a justification",
                    node.def.name, s.desc
                ),
            });
        }
        // Frontier: taint arriving from functions whose own report cannot
        // fire (outside the deterministic crates, or test-gated).
        for c in f.calls.iter().filter(|c| !c.sanitized) {
            let Some(_) = tainted[c.callee] else { continue };
            let callee = &ws.fns[c.callee];
            let callee_reported =
                DETERMINISTIC_CRATES.contains(&ws.crate_of(c.callee)) && !callee.in_test;
            if callee_reported || file.test_lines.contains(c.line) {
                continue;
            }
            findings.push(Finding {
                rule: "determinism-taint",
                file: file.path.clone(),
                line: c.line,
                message: format!(
                    "`{}` calls nondeterministic `{}`: {}; sanitize the result in this \
                     statement or escape with a justification",
                    node.def.name,
                    callee.def.name,
                    provenance(ws, &tainted, c.callee)
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    findings
}

/// Formats the taint chain from `start` to its source, at most 3 hops.
fn provenance(ws: &Workspace<'_>, tainted: &[Option<Cause>], start: usize) -> String {
    let mut parts = Vec::new();
    let mut cur = start;
    for hop in 0..3 {
        match &tainted[cur] {
            Some(Cause::Own(s)) => {
                parts.push(format!(
                    "`{}` {} ({}:{})",
                    ws.fns[cur].def.name,
                    s.desc,
                    ws.path_of(cur),
                    s.line
                ));
                return parts.join(", ");
            }
            Some(Cause::Via(line, next)) => {
                parts.push(format!(
                    "`{}` calls `{}` ({}:{})",
                    ws.fns[cur].def.name,
                    ws.fns[*next].def.name,
                    ws.path_of(cur),
                    line
                ));
                cur = *next;
                if hop == 2 {
                    parts.push("…".to_owned());
                }
            }
            None => break,
        }
    }
    parts.join(", ")
}

/// Per-function analysis: typing environment, sources, resolved calls.
fn analyze_fn(ws: &Workspace<'_>, idx: usize) -> FnFacts {
    let node = &ws.fns[idx];
    let Some(body) = &node.def.body else {
        return FnFacts::default();
    };
    let file = &ws.files[node.file].0;

    // Typing environment, flow-insensitive: parameter and let-binding
    // types by name. Two passes so `let m = self.map();` can use the
    // resolved return type of `map`.
    let mut env = Env {
        ws,
        from: idx,
        impl_ty: node.impl_ty,
        names: node
            .def
            .params
            .iter()
            .map(|(n, t)| (n.clone(), t.clone()))
            .collect(),
    };
    for _pass in 0..2 {
        let mut additions: Vec<(String, Type)> = Vec::new();
        body.for_each_stmt(&mut |s| {
            if let Stmt::Let {
                name: Some(n),
                ty,
                init,
                ..
            } = s
            {
                let t = match (ty, init) {
                    (Some(t), _) => Some(t.clone()),
                    (None, Some(e)) => env.type_of(e),
                    (None, None) => None,
                };
                if let Some(t) = t {
                    if !env.names.iter().any(|(en, _)| en == n) {
                        additions.push((n.clone(), t));
                    }
                }
            }
        });
        env.names.extend(additions);
    }

    let mut facts = FnFacts::default();
    body.for_each_stmt(&mut |s| {
        let (expr, let_ty): (&Expr, Option<&Type>) = match s {
            Stmt::Let {
                init: Some(e), ty, ..
            } => (e, ty.as_ref()),
            Stmt::Expr { expr, .. } => (expr, None),
            _ => return,
        };
        // Statement vocabulary for the sanitizer check.
        let mut vocab: BTreeSet<String> = BTreeSet::new();
        if let Some(t) = let_ty {
            vocab.extend(t.toks.iter().cloned());
        }
        expr.shallow_walk(&mut |e| match e {
            Expr::MethodCall {
                name, turbofish, ..
            } => {
                vocab.insert(name.clone());
                vocab.extend(turbofish.iter().cloned());
            }
            Expr::Path { segs, .. } => vocab.extend(segs.iter().cloned()),
            Expr::Cast { ty, .. } => vocab.extend(ty.toks.iter().cloned()),
            Expr::MacroCall { inner_idents, .. } => vocab.extend(inner_idents.iter().cloned()),
            _ => {}
        });
        let sanitized = vocab.iter().any(|v| SANCTIONED_SINKS.contains(&v.as_str()));

        // Escapes on the source line are honored here so an escaped source
        // does not taint callers either.
        let escaped = |line: usize| {
            file.escapes.iter().any(|e| {
                e.justified
                    && (e.rule == "determinism-taint" || e.rule == "map-iter-order")
                    && (e.file_wide || e.line == line || e.line + 1 == line)
            })
        };

        expr.shallow_walk(&mut |e| {
            match e {
                // `recv.iter()` on a hash-typed receiver.
                Expr::MethodCall {
                    recv, name, line, ..
                } if ITER_METHODS.contains(&name.as_str())
                    && env.is_hash(recv)
                    && !sanitized
                    && !escaped(*line) =>
                {
                    facts.sources.push(Source {
                        line: *line,
                        desc: format!("iterates hash-ordered {} via `.{name}()`", describe(recv)),
                    });
                }
                // `for x in hash_typed { … }`.
                Expr::ForLoop { iter, line, .. }
                    if env.is_hash(iter) && !sanitized && !escaped(*line) =>
                {
                    facts.sources.push(Source {
                        line: *line,
                        desc: format!("loops over hash-ordered {}", describe(iter)),
                    });
                }
                // RandomState, time, raw spawn.
                Expr::Path { segs, line }
                    if segs.iter().any(|s| s == "RandomState") && !escaped(*line) =>
                {
                    facts.sources.push(Source {
                        line: *line,
                        desc: "constructs a `RandomState` (per-process random hashing)".to_owned(),
                    });
                }
                Expr::Call { callee, line, .. } => {
                    if let Expr::Path { segs, .. } = callee.as_ref() {
                        let tail2 = segs.len().checked_sub(2).map(|i| &segs[i..]);
                        if let Some([ty, m]) = tail2.map(|s| [s[0].as_str(), s[1].as_str()]) {
                            if (ty == "Instant" || ty == "SystemTime") && m == "now" {
                                if !escaped(*line) {
                                    facts.sources.push(Source {
                                        line: *line,
                                        desc: format!("reads the wall clock via `{ty}::now()`"),
                                    });
                                }
                            } else if ty == "thread"
                                && m == "spawn"
                                && file.crate_name != "par"
                                && !escaped(*line)
                            {
                                facts.sources.push(Source {
                                    line: *line,
                                    desc: "spawns a raw `std::thread` (scheduling order is \
                                           nondeterministic); use the nashdb-par primitives"
                                        .to_owned(),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
            // Calls, for propagation.
            match e {
                Expr::Call { callee, line, .. } => {
                    if let Expr::Path { segs, .. } = callee.as_ref() {
                        if let Some(callee_idx) = ws.resolve_call(segs, idx) {
                            facts.calls.push(CallSite {
                                line: *line,
                                callee: callee_idx,
                                sanitized: sanitized || escaped(*line),
                            });
                        }
                    }
                }
                Expr::MethodCall {
                    recv, name, line, ..
                } => {
                    let recv_ty = env.type_head(recv);
                    if let Some(callee_idx) = ws.resolve_method(name, recv_ty.as_deref(), idx) {
                        facts.calls.push(CallSite {
                            line: *line,
                            callee: callee_idx,
                            sanitized: sanitized || escaped(*line),
                        });
                    }
                }
                Expr::MacroCall { inner_calls, .. } => {
                    for (name, line) in inner_calls {
                        if let Some(callee_idx) = ws.resolve_call(std::slice::from_ref(name), idx) {
                            facts.calls.push(CallSite {
                                line: *line,
                                callee: callee_idx,
                                sanitized: sanitized || escaped(*line),
                            });
                        }
                    }
                }
                _ => {}
            }
        });
    });
    facts
}

/// A short human description of a receiver expression.
fn describe(e: &Expr) -> String {
    match e {
        Expr::Path { segs, .. } => format!("`{}`", segs.join("::")),
        Expr::Field { base, name, .. } => {
            if matches!(base.as_ref(), Expr::Path { segs, .. } if segs == &["self"]) {
                format!("`self.{name}`")
            } else {
                format!("field `{name}`")
            }
        }
        Expr::MethodCall { name, .. } => format!("the result of `.{name}()`"),
        Expr::Call { callee, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } => format!("the result of `{}()`", segs.join("::")),
            _ => "a call result".to_owned(),
        },
        Expr::Unary { expr, .. } => describe(expr),
        _ => "a hash container".to_owned(),
    }
}

/// The per-function typing environment.
struct Env<'w, 'a> {
    ws: &'w Workspace<'a>,
    from: usize,
    impl_ty: Option<&'a str>,
    names: Vec<(String, Type)>,
}

impl Env<'_, '_> {
    fn lookup(&self, name: &str) -> Option<&Type> {
        self.names.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Best-effort declared type of an expression.
    fn type_of(&self, e: &Expr) -> Option<Type> {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => self.lookup(&segs[0]).cloned(),
            Expr::Field { base, name, .. } if matches!(base.as_ref(), Expr::Path { segs, .. } if segs == &["self"]) => {
                self.impl_ty
                    .and_then(|ty| self.ws.field_type(ty, name))
                    .cloned()
            }
            Expr::Unary { op, expr, .. } if op == "&" || op == "*" => self.type_of(expr),
            Expr::Seq { exprs, .. } if exprs.len() == 1 => self.type_of(&exprs[0]),
            Expr::Cast { ty, .. } => Some(ty.clone()),
            Expr::MethodCall { recv, name, .. } if IDENTITY_METHODS.contains(&name.as_str()) => {
                self.type_of(recv)
            }
            Expr::MethodCall { recv, name, .. } => {
                let recv_ty = self.type_head(recv);
                let callee = self
                    .ws
                    .resolve_method(name, recv_ty.as_deref(), self.from)?;
                self.ws.fns[callee].def.ret.clone()
            }
            Expr::Call { callee, .. } => {
                let Expr::Path { segs, .. } = callee.as_ref() else {
                    return None;
                };
                let callee = self.ws.resolve_call(segs, self.from)?;
                self.ws.fns[callee].def.ret.clone()
            }
            _ => None,
        }
    }

    /// The head type name of an expression, for method resolution.
    fn type_head(&self, e: &Expr) -> Option<String> {
        self.type_of(e)
            .and_then(|t| t.head().map(str::to_owned))
            // `self` receivers type as the impl type.
            .or_else(|| match e {
                Expr::Path { segs, .. } if segs == &["self"] => self.impl_ty.map(str::to_owned),
                _ => None,
            })
    }

    /// True when the expression is hash-container-typed.
    fn is_hash(&self, e: &Expr) -> bool {
        self.type_of(e)
            .is_some_and(|t| t.mentions("HashMap") || t.mentions("HashSet"))
    }
}
