//! A minimal owned AST for the semantic rules.
//!
//! The token-stream rules (`crate::rules`) stay heuristic; the semantic
//! rules (`crate::taint`, expression-level arithmetic, error-drop) need
//! structure a flat scan cannot give: which function a statement belongs
//! to, what a method call's receiver is, and what a loop body contains.
//! This AST captures exactly that — items, signatures, blocks, and
//! expressions — and deliberately nothing more (no spans beyond lines, no
//! generics model, no trait resolution). Anything the parser cannot shape
//! collapses into [`Expr::Other`]; rules treat `Other` as opaque, so a
//! parse weakness can only lose findings, never invent them.

/// A parsed source file: its top-level items in order.
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items.
    pub items: Vec<Item>,
}

/// One item with the attribute facts rules care about.
#[derive(Debug)]
pub struct Item {
    /// 1-based line of the item's first token (attributes included).
    pub line: usize,
    /// Carried a `#[cfg(test)]`/`#[cfg(all(test, …))]` attribute.
    pub cfg_test: bool,
    /// Carried `#[must_use]`.
    pub must_use: bool,
    /// Carried `#[test]`.
    pub is_test: bool,
    /// What the item is.
    pub kind: ItemKind,
}

/// Item shapes the rules distinguish.
// Variant fields are named to be self-documenting; per-field doc comments
// would only restate the names.
#[allow(missing_docs)]
#[derive(Debug)]
pub enum ItemKind {
    /// A free function or method.
    Fn(FnDef),
    /// `impl [Trait for] Ty { … }` — `ty` is the implementing type's name.
    Impl { ty: String, items: Vec<Item> },
    /// An inline `mod name { … }`.
    Mod { name: String, items: Vec<Item> },
    /// `struct Name { field: Ty, … }`; tuple/unit structs have no fields.
    Struct {
        name: String,
        fields: Vec<(String, Type)>,
    },
    /// Anything else (`use`, `enum`, `trait`, `const`, …), by keyword.
    Other { keyword: String },
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `(binding name, declared type)` per non-self parameter. Patterns
    /// that bind several names keep the first.
    pub params: Vec<(String, Type)>,
    /// Takes `self` in any form.
    pub has_self: bool,
    /// Declared return type, if any.
    pub ret: Option<Type>,
    /// Body; `None` for trait-method declarations.
    pub body: Option<Block>,
}

/// A type as the token texts it was written with (`Vec`, `<`, `u64`, `>`).
/// Enough for name-mention queries; no structure is kept.
#[derive(Debug, Clone, Default)]
pub struct Type {
    /// Token texts in source order.
    pub toks: Vec<String>,
}

/// Primitive integer type names (for `unchecked-arith-expr`).
pub const INTEGER_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

impl Type {
    /// True iff `name` appears anywhere in the type tokens.
    pub fn mentions(&self, name: &str) -> bool {
        self.toks.iter().any(|t| t == name)
    }

    /// The head identifier after references/qualifiers: `&mut Vec<u8>` →
    /// `Vec`, `HashMap<K, V>` → `HashMap`.
    pub fn head(&self) -> Option<&str> {
        self.toks
            .iter()
            .find(|t| {
                t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                    && t != &"mut"
            })
            .map(String::as_str)
    }

    /// True iff the head is a primitive integer type.
    pub fn is_integer(&self) -> bool {
        self.head().is_some_and(|h| INTEGER_TYPES.contains(&h))
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.toks.join(" "))
    }
}

/// A `{ … }` block.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace.
    pub line: usize,
}

/// A statement.
#[derive(Debug)]
// Variant fields are named to be self-documenting; per-field doc comments
// would only restate the names.
#[allow(missing_docs)]
pub enum Stmt {
    /// `let pat[: ty] [= init];`
    Let {
        /// First bound name, if the pattern binds one (`let (a, b)` keeps
        /// `a`; `let _` keeps none).
        name: Option<String>,
        /// The pattern is exactly `_`.
        wildcard: bool,
        /// Declared type annotation.
        ty: Option<Type>,
        /// Initializer.
        init: Option<Expr>,
        /// 1-based line of `let`.
        line: usize,
    },
    /// An expression statement.
    Expr {
        expr: Expr,
        line: usize,
        /// Had a trailing `;` (false for a block's tail expression).
        semi: bool,
    },
    /// A nested item (fns, consts, … declared inside a block).
    Item(Item),
}

/// An expression. Lines are on every variant so findings can anchor.
// Variant fields are named to be self-documenting; per-field doc comments
// would only restate the names.
#[allow(missing_docs)]
#[derive(Debug)]
pub enum Expr {
    /// A possibly-qualified path: `x`, `self.f` is *not* a path (that is
    /// [`Expr::Field`]), `std::thread::spawn` is `["std","thread","spawn"]`.
    Path { segs: Vec<String>, line: usize },
    /// Literal (number/string/char), text kept verbatim.
    Lit { text: String, line: usize },
    /// `callee(args…)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: usize,
    },
    /// `recv.name::<turbofish…>(args…)`.
    MethodCall {
        recv: Box<Expr>,
        name: String,
        /// Identifiers from the turbofish, if any (`collect::<BTreeMap<_,_>>`
        /// keeps `BTreeMap`).
        turbofish: Vec<String>,
        args: Vec<Expr>,
        line: usize,
    },
    /// `base.name` / `base.0`.
    Field {
        base: Box<Expr>,
        name: String,
        line: usize,
    },
    /// `base[index]`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        line: usize,
    },
    /// Prefix/postfix unary: `-`, `!`, `*`, `&`, `?`, `return`, `break`.
    Unary {
        op: String,
        expr: Box<Expr>,
        line: usize,
    },
    /// `lhs op rhs` for non-assignment binary operators (including ranges).
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: usize,
    },
    /// `target op value` for `=`, `+=`, `-=`, `*=`, `/=`, `%=`.
    Assign {
        op: String,
        target: Box<Expr>,
        value: Box<Expr>,
        line: usize,
    },
    /// `expr as ty`.
    Cast {
        expr: Box<Expr>,
        ty: Type,
        line: usize,
    },
    /// `if cond { then } [else …]`; `if let Pat = scrutinee` keeps the
    /// scrutinee as `cond`.
    If {
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
        line: usize,
    },
    /// `while cond { body }` (`while let` keeps the scrutinee as `cond`).
    While {
        cond: Box<Expr>,
        body: Block,
        line: usize,
    },
    /// `for pat in iter { body }`.
    ForLoop {
        /// Identifiers bound by the pattern.
        pat: Vec<String>,
        iter: Box<Expr>,
        body: Block,
        line: usize,
    },
    /// `loop { body }`.
    Loop { body: Block, line: usize },
    /// `match scrutinee { arms… }`; each arm keeps its body expression.
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Expr>,
        line: usize,
    },
    /// A block in expression position (incl. `unsafe { … }`).
    BlockExpr(Block),
    /// `|args| body` / `move |args| body`.
    Closure { body: Box<Expr>, line: usize },
    /// `name!(…)`; the body is kept only as identifier evidence.
    MacroCall {
        name: String,
        line: usize,
        /// `(ident, line)` for identifiers directly followed by `(` inside
        /// the macro body — potential calls.
        inner_calls: Vec<(String, usize)>,
        /// Every identifier inside the macro body.
        inner_idents: Vec<String>,
    },
    /// Tuple/array/paren-group in expression position.
    Seq { exprs: Vec<Expr>, line: usize },
    /// `Path { field: …, … }` struct literal; field initializers kept.
    StructLit {
        segs: Vec<String>,
        fields: Vec<Expr>,
        line: usize,
    },
    /// Anything the parser could not shape.
    Other { line: usize },
}

impl Expr {
    /// The expression's anchor line.
    pub fn line(&self) -> usize {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Cast { line, .. }
            | Expr::If { line, .. }
            | Expr::While { line, .. }
            | Expr::ForLoop { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Match { line, .. }
            | Expr::Closure { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::Seq { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Other { line } => *line,
            Expr::BlockExpr(b) => b.line,
        }
    }

    /// Pre-order walk over this expression and every sub-expression,
    /// including those inside nested blocks.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Call { callee, args, .. } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { base, .. } => base.walk(f),
            Expr::Index { base, index, .. } => {
                base.walk(f);
                index.walk(f);
            }
            Expr::Unary { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Closure { body: expr, .. } => {
                expr.walk(f);
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Assign { target, value, .. } => {
                target.walk(f);
                value.walk(f);
            }
            Expr::If {
                cond, then, els, ..
            } => {
                cond.walk(f);
                then.walk_exprs(f);
                if let Some(e) = els {
                    e.walk(f);
                }
            }
            Expr::While { cond, body, .. } => {
                cond.walk(f);
                body.walk_exprs(f);
            }
            Expr::ForLoop { iter, body, .. } => {
                iter.walk(f);
                body.walk_exprs(f);
            }
            Expr::Loop { body, .. } => body.walk_exprs(f),
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.walk(f);
                for a in arms {
                    a.walk(f);
                }
            }
            Expr::BlockExpr(b) => b.walk_exprs(f),
            Expr::Seq { exprs, .. } | Expr::StructLit { fields: exprs, .. } => {
                for e in exprs {
                    e.walk(f);
                }
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Other { .. } => {}
        }
    }

    /// Pre-order walk that stops at block boundaries: sub-expressions of
    /// this statement's own expression tree are visited (including closure
    /// bodies and non-block match arms), but statements inside nested `{}`
    /// blocks are not — they belong to their own statement contexts.
    pub fn shallow_walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Call { callee, args, .. } => {
                callee.shallow_walk(f);
                for a in args {
                    a.shallow_walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.shallow_walk(f);
                for a in args {
                    a.shallow_walk(f);
                }
            }
            Expr::Field { base, .. } => base.shallow_walk(f),
            Expr::Index { base, index, .. } => {
                base.shallow_walk(f);
                index.shallow_walk(f);
            }
            Expr::Unary { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Closure { body: expr, .. } => expr.shallow_walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.shallow_walk(f);
                rhs.shallow_walk(f);
            }
            Expr::Assign { target, value, .. } => {
                target.shallow_walk(f);
                value.shallow_walk(f);
            }
            Expr::If { cond, els, .. } => {
                cond.shallow_walk(f);
                if let Some(e) = els {
                    e.shallow_walk(f);
                }
            }
            Expr::While { cond, .. } => cond.shallow_walk(f),
            Expr::ForLoop { iter, .. } => iter.shallow_walk(f),
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.shallow_walk(f);
                for a in arms {
                    a.shallow_walk(f);
                }
            }
            Expr::Seq { exprs, .. } | Expr::StructLit { fields: exprs, .. } => {
                for e in exprs {
                    e.shallow_walk(f);
                }
            }
            Expr::Loop { .. }
            | Expr::BlockExpr(_)
            | Expr::Path { .. }
            | Expr::Lit { .. }
            | Expr::MacroCall { .. }
            | Expr::Other { .. } => {}
        }
    }

    /// Yields every block directly nested in this expression tree without
    /// descending *into* the yielded blocks (their interiors are reached by
    /// recursing via [`Block::for_each_stmt`]).
    pub fn nested_blocks<'a>(&'a self, f: &mut impl FnMut(&'a Block)) {
        match self {
            Expr::Call { callee, args, .. } => {
                callee.nested_blocks(f);
                for a in args {
                    a.nested_blocks(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.nested_blocks(f);
                for a in args {
                    a.nested_blocks(f);
                }
            }
            Expr::Field { base, .. } => base.nested_blocks(f),
            Expr::Index { base, index, .. } => {
                base.nested_blocks(f);
                index.nested_blocks(f);
            }
            Expr::Unary { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Closure { body: expr, .. } => expr.nested_blocks(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.nested_blocks(f);
                rhs.nested_blocks(f);
            }
            Expr::Assign { target, value, .. } => {
                target.nested_blocks(f);
                value.nested_blocks(f);
            }
            Expr::If {
                cond, then, els, ..
            } => {
                cond.nested_blocks(f);
                f(then);
                if let Some(e) = els {
                    e.nested_blocks(f);
                }
            }
            Expr::While { cond, body, .. } => {
                cond.nested_blocks(f);
                f(body);
            }
            Expr::ForLoop { iter, body, .. } => {
                iter.nested_blocks(f);
                f(body);
            }
            Expr::Loop { body, .. } => f(body),
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.nested_blocks(f);
                for a in arms {
                    a.nested_blocks(f);
                }
            }
            Expr::BlockExpr(b) => f(b),
            Expr::Seq { exprs, .. } | Expr::StructLit { fields: exprs, .. } => {
                for e in exprs {
                    e.nested_blocks(f);
                }
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Other { .. } => {}
        }
    }
}

impl Block {
    /// Pre-order walk over every expression in the block (and nested
    /// blocks), skipping nested *items* — a nested fn is its own scope.
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        for s in &self.stmts {
            match s {
                Stmt::Let { init, .. } => {
                    if let Some(e) = init {
                        e.walk(f);
                    }
                }
                Stmt::Expr { expr, .. } => expr.walk(f),
                Stmt::Item(_) => {}
            }
        }
    }

    /// Visits every statement in this block and in blocks nested inside
    /// its expressions (loop/if/match bodies), depth-first. Each statement
    /// is visited exactly once, under the block it syntactically sits in —
    /// the granularity the statement-level sanitizer check needs.
    pub fn for_each_stmt<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        for s in &self.stmts {
            f(s);
            let mut recurse = |e: &'a Expr| {
                e.nested_blocks(&mut |b| b.for_each_stmt(f));
            };
            match s {
                Stmt::Let { init: Some(e), .. } => recurse(e),
                Stmt::Expr { expr, .. } => recurse(expr),
                Stmt::Let { init: None, .. } | Stmt::Item(_) => {}
            }
        }
    }
}

/// A function found by [`Ast::fns`], with its context.
#[derive(Debug)]
pub struct FnRef<'a> {
    /// The definition.
    pub def: &'a FnDef,
    /// Enclosing `impl` type name, if the fn is a method.
    pub impl_ty: Option<&'a str>,
    /// True when the fn (or an enclosing item) is test-gated.
    pub cfg_test: bool,
    /// True for `#[test]` fns.
    pub is_test: bool,
}

impl Ast {
    /// Every fn in the file (top-level, in impls, in inline modules), with
    /// its impl/test context flattened.
    pub fn fns(&self) -> Vec<FnRef<'_>> {
        let mut out = Vec::new();
        collect_fns(&self.items, None, false, &mut out);
        out
    }
}

fn collect_fns<'a>(
    items: &'a [Item],
    impl_ty: Option<&'a str>,
    in_test: bool,
    out: &mut Vec<FnRef<'a>>,
) {
    for item in items {
        let test_ctx = in_test || item.cfg_test;
        match &item.kind {
            ItemKind::Fn(def) => {
                out.push(FnRef {
                    def,
                    impl_ty,
                    cfg_test: test_ctx,
                    is_test: item.is_test,
                });
                // Nested fns inside the body.
                if let Some(body) = &def.body {
                    collect_fns_in_block(body, impl_ty, test_ctx, out);
                }
            }
            ItemKind::Impl { ty, items } => collect_fns(items, Some(ty), test_ctx, out),
            ItemKind::Mod { items, .. } => collect_fns(items, None, test_ctx, out),
            ItemKind::Struct { .. } | ItemKind::Other { .. } => {}
        }
    }
}

fn collect_fns_in_block<'a>(
    block: &'a Block,
    impl_ty: Option<&'a str>,
    in_test: bool,
    out: &mut Vec<FnRef<'a>>,
) {
    for s in &block.stmts {
        if let Stmt::Item(item) = s {
            collect_fns(std::slice::from_ref(item), impl_ty, in_test, out);
        }
    }
}
