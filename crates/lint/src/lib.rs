//! # nashdb-lint
//!
//! A workspace-aware determinism & safety linter for the NashDB
//! reproduction. Two layers share one escape/baseline contract:
//!
//! * **Token rules** ([`rules`]): a lightweight Rust token scanner for
//!   per-file pattern rules — hash-iteration order, missing obs no-op
//!   twins, off-registry metric names, panics in library code.
//! * **Semantic rules** ([`parser`] → [`ast`] → [`callgraph`]): a
//!   dependency-free recursive-descent parser builds a minimal AST per
//!   file; a workspace function table with conservative call resolution
//!   then powers cross-function `determinism-taint` ([`taint`]),
//!   expression-level `unchecked-arith-expr`, and `error-drop`
//!   ([`semantic`]). Call resolution is precision-over-recall: an
//!   ambiguous site grows no edge, so the failure mode is a lost finding,
//!   never an invented one.
//!
//! Run it as CI does:
//!
//! ```text
//! cargo run -p nashdb-lint -- --workspace --baseline lint-baseline.json --strict-baseline
//! ```
//!
//! Pre-existing accepted sites live in the committed ratchet baseline
//! ([`Baseline`]); intentional sites carry an inline escape with a
//! mandatory justification:
//!
//! ```text
//! // nashdb-lint: allow(determinism-taint) -- validation-only pass; asserts are order-independent
//! ```

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;
pub mod source;
pub mod taint;

pub use baseline::{Baseline, BaselineError, BaselineOutcome};
pub use callgraph::Workspace;
pub use rules::{
    canonical_rule, check_file, Finding, DETERMINISTIC_CRATES, RULE_IDS, SPAN_SEGMENTS,
    STAGE_PREFIXES,
};
pub use source::SourceFile;

use std::path::{Path, PathBuf};

use ast::Ast;

/// Lints a set of in-memory source files as one workspace: token rules
/// per file, then the semantic rules over the shared call graph. Paths
/// decide rule applicability (crate, binary target) and are echoed in
/// findings; use workspace-relative paths like
/// `crates/core/src/routing.rs`.
pub fn lint_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let files: Vec<(SourceFile, Ast)> = sources
        .iter()
        .map(|(path, src)| {
            let sf = SourceFile::new(path, src);
            let ast = parser::parse(&sf.lexed);
            (sf, ast)
        })
        .collect();

    let mut findings = Vec::new();
    for (sf, _) in &files {
        findings.extend(check_file(sf));
    }

    let ws = Workspace::build(&files);
    findings.extend(semantic::unchecked_arith_expr(&ws));
    findings.extend(semantic::error_drop(&ws));

    // The taint rule sees the same hash-iteration sources map-iter-order
    // does (plus cross-function flow); where both fire on one line, keep
    // the established token finding and the taint duplicate yields.
    let token_hits: std::collections::BTreeSet<(String, usize)> = findings
        .iter()
        .filter(|f| f.rule == "map-iter-order")
        .map(|f| (f.file.clone(), f.line))
        .collect();
    findings.extend(
        taint::determinism_taint(&ws)
            .into_iter()
            .filter(|f| !token_hits.contains(&(f.file.clone(), f.line))),
    );

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Lints one in-memory source file (single-file workspace: cross-function
/// analysis still runs within the file).
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(path.to_owned(), src.to_owned())])
}

/// Walks `root/crates/*/src/**/*.rs` and lints every file. Findings are
/// sorted by path then line. Shims, vendored dependencies, and the
/// integration-test workspace member are out of scope by construction:
/// only `crates/` is walked.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let src_dir = entry?.path().join("src");
        if src_dir.is_dir() {
            collect_rs_files(&src_dir, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(file)?));
    }
    Ok(lint_sources(&sources))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_runs_end_to_end() {
        let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}
";
        let findings = lint_source("crates/core/src/demo.rs", src);
        // map-iter-order wins the line; the taint duplicate is suppressed.
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert_eq!(findings[0].rule, "map-iter-order");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn non_deterministic_crates_skip_map_iter() {
        let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}
";
        assert!(lint_source("crates/baselines/src/demo.rs", src).is_empty());
    }

    #[test]
    fn taint_crosses_files_in_one_workspace() {
        // The helper lives in a *non-deterministic* crate, so neither
        // map-iter-order nor an own-source taint finding fires there; the
        // deterministic caller gets the frontier finding.
        let helper = "\
use std::collections::HashMap;
pub fn chunk_ids(m: &HashMap<u64, u64>) -> Vec<u64> {
    m.keys().copied().collect()
}
";
        let caller = "\
pub fn plan(m: &std::collections::HashMap<u64, u64>) -> Vec<u64> {
    nashdb_baselines::helpers::chunk_ids(m)
}
";
        let findings = lint_sources(&[
            (
                "crates/baselines/src/helpers.rs".to_owned(),
                helper.to_owned(),
            ),
            ("crates/core/src/plan.rs".to_owned(), caller.to_owned()),
        ]);
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert_eq!(findings[0].rule, "determinism-taint");
        assert_eq!(findings[0].file, "crates/core/src/plan.rs");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("chunk_ids"));
    }
}
