//! # nashdb-lint
//!
//! A workspace-aware determinism & safety linter for the NashDB
//! reproduction: a lightweight Rust token scanner plus a rule engine that
//! walks every `crates/*/src` file and enforces project-specific rules
//! clippy cannot express. Each rule encodes a bug class that actually
//! shipped (PR 3's postmortems): hash-iteration-order nondeterminism,
//! unchecked accumulator arithmetic, missing obs no-op twins, off-registry
//! metric names, and panics in library code.
//!
//! Run it as CI does:
//!
//! ```text
//! cargo run -p nashdb-lint -- --workspace --baseline lint-baseline.json
//! ```
//!
//! Pre-existing accepted sites live in the committed ratchet baseline
//! ([`Baseline`]); intentional sites carry an inline escape with a
//! mandatory justification:
//!
//! ```text
//! // nashdb-lint: allow(map-iter-order) -- validation-only pass; asserts are order-independent
//! ```

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod source;

pub use baseline::{Baseline, BaselineError, BaselineOutcome};
pub use rules::{
    check_file, Finding, DETERMINISTIC_CRATES, RULE_IDS, SPAN_SEGMENTS, STAGE_PREFIXES,
};
pub use source::SourceFile;

use std::path::{Path, PathBuf};

/// Lints one in-memory source file. `path` decides rule applicability (its
/// crate, whether it is a binary target) and is echoed in findings; use
/// workspace-relative paths like `crates/core/src/routing.rs`.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    check_file(&SourceFile::new(path, src))
}

/// Walks `root/crates/*/src/**/*.rs` and lints every file. Findings are
/// sorted by path then line. Shims, vendored dependencies, and the
/// integration-test workspace member are out of scope by construction:
/// only `crates/` is walked.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let src_dir = entry?.path().join("src");
        if src_dir.is_dir() {
            collect_rs_files(&src_dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        findings.extend(lint_source(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_runs_end_to_end() {
        let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}
";
        let findings = lint_source("crates/core/src/demo.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "map-iter-order");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn non_deterministic_crates_skip_map_iter() {
        let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}
";
        assert!(lint_source("crates/baselines/src/demo.rs", src).is_empty());
    }
}
