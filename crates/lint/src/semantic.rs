//! AST-level rules: `unchecked-arith-expr` and `error-drop`.
//!
//! * `unchecked-arith-expr` supersedes the token rule `unchecked-arith`
//!   (now a deprecated alias). Instead of guessing by accumulator *names*,
//!   it flags `+=`/`*=` (and `x = x + …`/`x = x * …`) on *integer-typed*
//!   bindings inside loop bodies — the shape that actually wraps under
//!   load. A binding declared inside the loop, a while-condition that
//!   bounds the cursor (`while i < n`), or a `saturating_*`/`checked_*`/
//!   `wrapping_*` marker in the statement all sanitize.
//! * `error-drop` catches `let _ = fallible()` discarding a
//!   `Result`-returning **workspace** function's error (the one spelling
//!   rustc's `unused_must_use` never sees), plus unconsumed
//!   `#[must_use]`/`Result` returns in statement position. Unresolved calls
//!   (std, macros) never fire — precision over recall.

use std::collections::BTreeSet;

use crate::ast::{Block, Expr, Stmt, Type};
use crate::callgraph::Workspace;
use crate::rules::{Finding, CHECKED_MARKERS};

/// Runs `unchecked-arith-expr` over every parsed file.
pub fn unchecked_arith_expr(ws: &Workspace<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for (idx, node) in ws.fns.iter().enumerate() {
        let file = &ws.files[node.file].0;
        if file.path.ends_with("/num.rs") || file.path.contains("/num/") || node.in_test {
            continue;
        }
        let Some(body) = &node.def.body else { continue };
        let env = IntEnv::build(ws, idx);
        let mut loops: Vec<LoopCtx> = Vec::new();
        scan_block(body, &mut loops, &mut |stmt, loops| {
            check_stmt(
                ws,
                node.impl_ty,
                &env,
                file,
                stmt,
                loops,
                &mut |line, op, root| {
                    if file.test_lines.contains(line) {
                        return;
                    }
                    if seen.insert((file.path.clone(), line, root.to_owned())) {
                        findings.push(Finding {
                            rule: "unchecked-arith-expr",
                            file: file.path.clone(),
                            line,
                            message: format!(
                                "unchecked `{op}` on integer `{root}` inside a loop; use \
                             `saturating_*`/`checked_*` (or the `num` helpers) so a hot \
                             counter cannot wrap"
                            ),
                        });
                    }
                },
            );
        });
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// One enclosing loop's context.
struct LoopCtx {
    /// Names `let`-declared anywhere in the loop body (reset per
    /// iteration).
    declared: BTreeSet<String>,
    /// Names the loop's own header bounds (`for i in …`, `while i < n`).
    bound: BTreeSet<String>,
}

impl LoopCtx {
    fn for_loop(pat: &[String], body: &Block) -> LoopCtx {
        LoopCtx {
            declared: declared_names(body),
            bound: pat.iter().cloned().collect(),
        }
    }

    fn while_loop(cond: &Expr, body: &Block) -> LoopCtx {
        let mut bound = BTreeSet::new();
        cond.shallow_walk(&mut |e| {
            if let Expr::Binary { op, lhs, .. } = e {
                if op == "<" || op == "<=" {
                    if let Some(name) = root_name(lhs) {
                        bound.insert(name.to_owned());
                    }
                }
            }
        });
        LoopCtx {
            declared: declared_names(body),
            bound,
        }
    }

    fn bare_loop(body: &Block) -> LoopCtx {
        LoopCtx {
            declared: declared_names(body),
            bound: BTreeSet::new(),
        }
    }
}

fn declared_names(body: &Block) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    body.for_each_stmt(&mut |s| {
        if let Stmt::Let { name: Some(n), .. } = s {
            out.insert(n.clone());
        }
    });
    out
}

/// Walks a block, maintaining the enclosing-loop stack, and hands every
/// statement (with its loop context) to `f`.
fn scan_block<'a>(
    block: &'a Block,
    loops: &mut Vec<LoopCtx>,
    f: &mut impl FnMut(&'a Stmt, &[LoopCtx]),
) {
    for s in &block.stmts {
        f(s, loops);
        match s {
            Stmt::Let { init: Some(e), .. } => scan_expr(e, loops, f),
            Stmt::Expr { expr, .. } => scan_expr(expr, loops, f),
            Stmt::Let { init: None, .. } | Stmt::Item(_) => {}
        }
    }
}

fn scan_expr<'a>(e: &'a Expr, loops: &mut Vec<LoopCtx>, f: &mut impl FnMut(&'a Stmt, &[LoopCtx])) {
    match e {
        Expr::ForLoop {
            pat, iter, body, ..
        } => {
            scan_expr(iter, loops, f);
            loops.push(LoopCtx::for_loop(pat, body));
            scan_block(body, loops, f);
            loops.pop();
        }
        Expr::While { cond, body, .. } => {
            scan_expr(cond, loops, f);
            loops.push(LoopCtx::while_loop(cond, body));
            scan_block(body, loops, f);
            loops.pop();
        }
        Expr::Loop { body, .. } => {
            loops.push(LoopCtx::bare_loop(body));
            scan_block(body, loops, f);
            loops.pop();
        }
        Expr::If {
            cond, then, els, ..
        } => {
            scan_expr(cond, loops, f);
            scan_block(then, loops, f);
            if let Some(e) = els {
                scan_expr(e, loops, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            scan_expr(scrutinee, loops, f);
            for a in arms {
                scan_expr(a, loops, f);
            }
        }
        Expr::BlockExpr(b) => scan_block(b, loops, f),
        Expr::Call { callee, args, .. } => {
            scan_expr(callee, loops, f);
            for a in args {
                scan_expr(a, loops, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            scan_expr(recv, loops, f);
            for a in args {
                scan_expr(a, loops, f);
            }
        }
        Expr::Field { base, .. } => scan_expr(base, loops, f),
        Expr::Index { base, index, .. } => {
            scan_expr(base, loops, f);
            scan_expr(index, loops, f);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Closure { body: expr, .. } => {
            scan_expr(expr, loops, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, loops, f);
            scan_expr(rhs, loops, f);
        }
        Expr::Assign { target, value, .. } => {
            scan_expr(target, loops, f);
            scan_expr(value, loops, f);
        }
        Expr::Seq { exprs, .. } | Expr::StructLit { fields: exprs, .. } => {
            for x in exprs {
                scan_expr(x, loops, f);
            }
        }
        Expr::Path { .. } | Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Other { .. } => {}
    }
}

/// Checks one statement's top-level expression tree for unchecked
/// accumulating assignments, calling `report(line, op, root)` per hit.
fn check_stmt(
    ws: &Workspace<'_>,
    impl_ty: Option<&str>,
    env: &IntEnv,
    file: &crate::source::SourceFile,
    stmt: &Stmt,
    loops: &[LoopCtx],
    report: &mut impl FnMut(usize, &str, &str),
) {
    if loops.is_empty() {
        return;
    }
    let expr = match stmt {
        Stmt::Let { init: Some(e), .. } => e,
        Stmt::Expr { expr, .. } => expr,
        _ => return,
    };
    let vocab = stmt_vocab(stmt);
    if vocab.iter().any(|v| CHECKED_MARKERS.contains(&v.as_str())) {
        return;
    }
    let escaped = |line: usize| {
        file.escapes.iter().any(|e| {
            e.justified
                && crate::rules::canonical_rule(&e.rule) == "unchecked-arith-expr"
                && (e.file_wide || e.line == line || e.line + 1 == line)
        })
    };
    expr.shallow_walk(&mut |e| {
        let Expr::Assign {
            op,
            target,
            value,
            line,
        } = e
        else {
            return;
        };
        let checked_op = match op.as_str() {
            "+=" | "*=" => Some(op.as_str()),
            "=" => match value.as_ref() {
                Expr::Binary { op: bop, lhs, .. } if bop == "+" || bop == "*" => {
                    (root_name(lhs) == root_name(target)).then_some(bop.as_str())
                }
                _ => None,
            },
            _ => None,
        };
        let Some(op) = checked_op else { return };
        let Some(root) = root_name(target) else {
            return;
        };
        // A constant step (`pos += 1`, `pos += 2`) is a cursor/counter,
        // not data-dependent accumulation: it cannot plausibly wrap a
        // 64-bit type. The rule targets `total += entry_size`-shaped sums.
        if op == "+=" || op == "+" {
            let step = if op == "+=" {
                Some(value.as_ref())
            } else if let Expr::Binary { rhs, .. } = value.as_ref() {
                Some(rhs.as_ref())
            } else {
                None
            };
            if step.is_some_and(is_int_literal) {
                return;
            }
        }
        // Declared inside an enclosing loop, or bounded by a loop header:
        // resets or terminates, not an unbounded accumulator.
        if loops
            .iter()
            .any(|l| l.declared.contains(root) || l.bound.contains(root))
        {
            return;
        }
        if !env.is_integer(ws, impl_ty, target) || escaped(*line) {
            return;
        }
        report(*line, op, root);
    });
}

/// True for an integer literal (with or without a type suffix).
fn is_int_literal(e: &Expr) -> bool {
    match e {
        Expr::Lit { text, .. } => text.chars().next().is_some_and(|c| c.is_ascii_digit()),
        Expr::Seq { exprs, .. } if exprs.len() == 1 => is_int_literal(&exprs[0]),
        _ => false,
    }
}

/// The root binding a place expression assigns through: `x`, `x[i]`,
/// `self.x`, `*x` all root at `x`.
fn root_name(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(&segs[0]),
        Expr::Field { base, name, .. } => {
            if matches!(base.as_ref(), Expr::Path { segs, .. } if segs == &["self"]) {
                Some(name)
            } else {
                root_name(base)
            }
        }
        Expr::Index { base, .. } | Expr::Unary { expr: base, .. } => root_name(base),
        Expr::Seq { exprs, .. } if exprs.len() == 1 => root_name(&exprs[0]),
        _ => None,
    }
}

/// Identifier vocabulary of one statement (for the sanitizer check).
fn stmt_vocab(stmt: &Stmt) -> BTreeSet<String> {
    let mut vocab = BTreeSet::new();
    let expr = match stmt {
        Stmt::Let { init: Some(e), .. } => e,
        Stmt::Expr { expr, .. } => expr,
        _ => return vocab,
    };
    expr.shallow_walk(&mut |e| match e {
        Expr::MethodCall {
            name, turbofish, ..
        } => {
            vocab.insert(name.clone());
            vocab.extend(turbofish.iter().cloned());
        }
        Expr::Path { segs, .. } => vocab.extend(segs.iter().cloned()),
        Expr::MacroCall { inner_idents, .. } => vocab.extend(inner_idents.iter().cloned()),
        _ => {}
    });
    vocab
}

/// Integer-typing evidence for one function's bindings.
struct IntEnv {
    names: BTreeSet<String>,
}

impl IntEnv {
    fn build(ws: &Workspace<'_>, idx: usize) -> IntEnv {
        let node = &ws.fns[idx];
        let mut names: BTreeSet<String> = node
            .def
            .params
            .iter()
            .filter(|(_, t)| t.is_integer())
            .map(|(n, _)| n.clone())
            .collect();
        if let Some(body) = &node.def.body {
            body.for_each_stmt(&mut |s| {
                let Stmt::Let {
                    name: Some(n),
                    ty,
                    init,
                    ..
                } = s
                else {
                    return;
                };
                let is_int = match (ty, init) {
                    (Some(t), _) => t.is_integer(),
                    (None, Some(e)) => init_is_integer(e),
                    (None, None) => false,
                };
                if is_int {
                    names.insert(n.clone());
                }
            });
        }
        IntEnv { names }
    }

    /// True when the assignment target is integer-typed: a known local,
    /// or a `self.field` whose declared type is integral.
    fn is_integer(&self, ws: &Workspace<'_>, impl_ty: Option<&str>, target: &Expr) -> bool {
        if let Expr::Field { base, name, .. } = target {
            if matches!(base.as_ref(), Expr::Path { segs, .. } if segs == &["self"]) {
                return impl_ty
                    .and_then(|ty| ws.field_type(ty, name))
                    .is_some_and(Type::is_integer);
            }
        }
        root_name(target).is_some_and(|r| self.names.contains(r))
    }
}

/// Integer evidence from an initializer: `0u64`, `x as usize`, `.len()`.
fn init_is_integer(e: &Expr) -> bool {
    match e {
        Expr::Lit { text, .. } => crate::ast::INTEGER_TYPES
            .iter()
            .any(|t| text.ends_with(t) && text.len() > t.len()),
        Expr::Cast { ty, .. } => ty.is_integer(),
        Expr::MethodCall { name, .. } => name == "len" || name == "count",
        Expr::Seq { exprs, .. } if exprs.len() == 1 => init_is_integer(&exprs[0]),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Rule: error-drop
// ---------------------------------------------------------------------------

/// Runs `error-drop` over every parsed file.
pub fn error_drop(ws: &Workspace<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, node) in ws.fns.iter().enumerate() {
        let file = &ws.files[node.file].0;
        if file.is_bin || node.in_test {
            continue;
        }
        let Some(body) = &node.def.body else { continue };
        let escaped = |line: usize| {
            file.escapes.iter().any(|e| {
                e.justified
                    && e.rule == "error-drop"
                    && (e.file_wide || e.line == line || e.line + 1 == line)
            })
        };
        body.for_each_stmt(&mut |s| {
            match s {
                // `let _ = fallible();`
                Stmt::Let {
                    wildcard: true,
                    init: Some(init),
                    line,
                    ..
                } => {
                    let Some((callee, call_line)) = resolve_called_fn(ws, idx, init) else {
                        return;
                    };
                    let cal = &ws.fns[callee];
                    if !(cal.returns_result() || cal.must_use) {
                        return;
                    }
                    let line = (*line).max(call_line.min(*line));
                    if file.test_lines.contains(line) || escaped(line) {
                        return;
                    }
                    let what = if cal.returns_result() {
                        "`Result`"
                    } else {
                        "`#[must_use]` value"
                    };
                    findings.push(Finding {
                        rule: "error-drop",
                        file: file.path.clone(),
                        line,
                        message: format!(
                            "`let _ =` silently discards the {what} of `{}` \
                             ({}:{}); handle it, propagate with `?`, or escape with a \
                             justification",
                            cal.def.name,
                            ws.path_of(callee),
                            cal.def.line
                        ),
                    });
                }
                // `fallible();` in statement position (macro-free calls
                // rustc's unused_must_use also sees — kept for parity so
                // the fixture corpus documents the contract).
                Stmt::Expr {
                    expr,
                    line,
                    semi: true,
                } => {
                    let Some((callee, _)) = resolve_called_fn(ws, idx, expr) else {
                        return;
                    };
                    let cal = &ws.fns[callee];
                    if !cal.must_use && !cal.returns_result() {
                        return;
                    }
                    if file.test_lines.contains(*line) || escaped(*line) {
                        return;
                    }
                    findings.push(Finding {
                        rule: "error-drop",
                        file: file.path.clone(),
                        line: *line,
                        message: format!(
                            "return value of `{}` is dropped in statement position; \
                             consume it or escape with a justification",
                            cal.def.name
                        ),
                    });
                }
                _ => {}
            }
        });
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// If the expression is exactly one call that resolves to a workspace
/// function, returns it. Wrappers that *consume* the result (`?`, `.ok()`,
/// a match) intentionally do not resolve.
fn resolve_called_fn(ws: &Workspace<'_>, from: usize, e: &Expr) -> Option<(usize, usize)> {
    match e {
        Expr::Call { callee, line, .. } => {
            let Expr::Path { segs, .. } = callee.as_ref() else {
                return None;
            };
            ws.resolve_call(segs, from).map(|i| (i, *line))
        }
        Expr::MethodCall { name, line, .. } => {
            // Receiver-untyped here: only workspace-unique method names.
            ws.resolve_method(name, None, from).map(|i| (i, *line))
        }
        Expr::Seq { exprs, .. } if exprs.len() == 1 => resolve_called_fn(ws, from, &exprs[0]),
        _ => None,
    }
}
