//! The two stage-name registries — `nashdb-bench smoke`'s coverage gate
//! ([`nashdb_bench::smoke::REQUIRED_STAGES`]) and the linter's metric-name
//! allowlist ([`nashdb_lint::STAGE_PREFIXES`]) — must agree, or a metric
//! can pass the linter yet be invisible to the coverage check (and vice
//! versa). The known, documented delta is `perf.`: those gauges come from
//! the `nashdb-bench perf` harness, which is not part of the smoke
//! pipeline, so smoke coverage cannot require them.

use nashdb_bench::smoke::REQUIRED_STAGES;
use nashdb_lint::STAGE_PREFIXES;

#[test]
fn smoke_coverage_is_a_subset_of_the_lint_registry() {
    for stage in REQUIRED_STAGES {
        assert!(
            STAGE_PREFIXES.contains(stage),
            "smoke requires stage {stage:?} the linter would reject; add it to \
             nashdb_lint::STAGE_PREFIXES"
        );
    }
}

#[test]
fn lint_registry_exceeds_smoke_coverage_only_by_perf() {
    let extra: Vec<&str> = STAGE_PREFIXES
        .iter()
        .filter(|p| !REQUIRED_STAGES.contains(p))
        .copied()
        .collect();
    assert_eq!(
        extra,
        vec!["perf."],
        "a lint-registered prefix the smoke gate does not cover means one of \
         the registries rotted; either require it in REQUIRED_STAGES or \
         document it here like perf."
    );
}
