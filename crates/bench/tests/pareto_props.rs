//! Property tests for the Pareto-front marker shared by Fig. 7 and the
//! scenario matrix, plus the scenario artifact's determinism and the
//! frontier gate's behaviour against the committed baseline fixture.

// This whole file is test code, where a failed expect IS the test failure;
// clippy's allow-expect-in-tests only recognizes `#[test]` fns, not their
// helpers.
#![allow(clippy::expect_used)]

use proptest::prelude::*;

use nashdb_bench::compare::compare_scenarios;
use nashdb_bench::experiments::pareto::{pareto_front, Point};
use nashdb_bench::scenarios::{run_scenarios, ScenarioConfig};
use nashdb_obs::ScenarioArtifact;

fn dominates(p: &Point, q: &Point) -> bool {
    (p.cost <= q.cost && p.latency < q.latency) || (p.cost < q.cost && p.latency <= q.latency)
}

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(cost, latency)| Point {
                system: "x",
                param: 0.0,
                latency,
                cost,
            })
            .collect()
    })
}

proptest! {
    /// No point marked on the front is dominated by any other point.
    #[test]
    fn front_points_are_undominated(points in arb_points()) {
        let front = pareto_front(&points);
        for (i, p) in points.iter().enumerate() {
            if front[i] {
                for q in &points {
                    prop_assert!(!dominates(q, p));
                }
            }
        }
    }

    /// Every point left off the front is dominated by some front point.
    #[test]
    fn off_front_points_are_dominated_by_the_front(points in arb_points()) {
        let front = pareto_front(&points);
        prop_assert!(front.iter().any(|&f| f), "a nonempty set has a front");
        for (i, p) in points.iter().enumerate() {
            if !front[i] {
                prop_assert!(
                    points
                        .iter()
                        .zip(&front)
                        .any(|(q, &on)| on && dominates(q, p)),
                    "point {i} is off the front but no front point dominates it"
                );
            }
        }
    }

    /// Front membership is a property of the point, not of its position:
    /// permuting the input permutes the marks identically.
    #[test]
    fn front_is_permutation_invariant(points in arb_points(), seed in 0u64..u64::MAX) {
        let front = pareto_front(&points);
        // Fisher-Yates with a hand-rolled LCG (the shim has no shuffle).
        let mut order: Vec<usize> = (0..points.len()).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let shuffled: Vec<Point> = order.iter().map(|&i| points[i].clone()).collect();
        let shuffled_front = pareto_front(&shuffled);
        for (k, &i) in order.iter().enumerate() {
            prop_assert_eq!(shuffled_front[k], front[i]);
        }
    }
}

/// Two same-seed scenario sweeps serialize byte-identically (the CI
/// baseline contract).
#[test]
fn same_seed_scenario_runs_are_byte_identical() {
    let cfg = ScenarioConfig {
        quick: true,
        queries: 40,
        ..ScenarioConfig::default()
    };
    let a = run_scenarios(&cfg).unwrap().to_json_string();
    let b = run_scenarios(&cfg).unwrap().to_json_string();
    assert_eq!(a, b);
}

fn committed_baseline() -> ScenarioArtifact {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../SCENARIO_BASELINE.json");
    let raw = std::fs::read_to_string(path).expect("committed SCENARIO_BASELINE.json");
    ScenarioArtifact::from_json_str(&raw).expect("baseline passes its own schema")
}

/// The committed baseline compared against itself passes the gate.
#[test]
fn committed_baseline_self_compare_passes() {
    let baseline = committed_baseline();
    let report = compare_scenarios(&baseline, &baseline).unwrap();
    assert!(report.passed());
    assert_eq!(report.cells, baseline.cells.len());
    assert!(report.cells >= 24, "matrix must cover at least 24 cells");
}

/// Knocking nashdb off the frontier in one baseline cell fails the gate —
/// the injected-regression fixture the CI job relies on.
#[test]
fn injected_frontier_loss_fails_the_gate() {
    let baseline = committed_baseline();
    let mut broken = baseline.clone();
    // Pick a cell where another system shares the frontier, so the mutated
    // artifact still satisfies the ≥1-front-system-per-cell schema rule.
    let cell = broken
        .cells
        .iter_mut()
        .find(|c| c.systems.iter().filter(|s| s.on_front).count() >= 2)
        .expect("some baseline cell has a shared frontier");
    let key = cell.key();
    for s in &mut cell.systems {
        if s.system == "nashdb" {
            assert!(s.on_front, "nashdb shares every baseline frontier");
            s.on_front = false;
            s.dominates = 0;
        }
    }
    // The mutation must survive the schema round-trip CI performs.
    let reparsed = ScenarioArtifact::from_json_str(&broken.to_json_string()).unwrap();
    let report = compare_scenarios(&reparsed, &baseline).unwrap();
    assert!(!report.passed());
    assert_eq!(report.lost_frontier, vec![key]);
}
