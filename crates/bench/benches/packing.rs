//! Criterion bench: BFFD class-constrained bin packing (§6).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nashdb_core::economics::NodeSpec;
use nashdb_core::fragment::{FragmentRange, FragmentStats};
use nashdb_core::ids::FragmentId;
use nashdb_core::replication::{decide_replicas, pack_bffd, ClusterScheme, ReplicationPolicy};
use nashdb_sim::SimRng;

fn stats(n: usize, seed: u64) -> Vec<FragmentStats> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut pos = 0u64;
    (0..n)
        .map(|i| {
            let len = rng.uniform_u64(100_000, 2_000_000);
            let s = FragmentStats {
                id: FragmentId(i as u64),
                range: FragmentRange::new(pos, pos + len),
                value: rng.uniform_f64() * 1e-5,
                error: 0.0,
            };
            pos += len;
            s
        })
        .collect()
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication/bffd");
    let spec = NodeSpec::new(50.0, 20_000_000);
    for n in [64usize, 256, 1024] {
        let st = stats(n, 17);
        let policy = ReplicationPolicy::new(50, spec).with_max_replicas(64);
        let decisions = decide_replicas(&st, &policy);
        group.bench_with_input(BenchmarkId::new("pack", n), &n, |b, _| {
            b.iter(|| black_box(pack_bffd(&decisions, spec.disk).map(|n| n.len())));
        });
        group.bench_with_input(BenchmarkId::new("full_scheme", n), &n, |b, _| {
            b.iter(|| black_box(ClusterScheme::build(&st, policy).map(|s| s.num_nodes())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pack);
criterion_main!(benches);
