//! Criterion bench: the value estimation tree (§10.1's overhead claim).
//!
//! Compares the paper's AVL tree against the `BTreeMap` reference for scan
//! insertion (with window eviction) and full value recovery (Algorithm 1)
//! at several window sizes.

// Bench code: panicking on setup failure is the correct behavior here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nashdb_core::value::{
    AvlValueTree, BTreeValueTree, PricedScan, TupleValueEstimator, ValueTreeBackend,
};
use nashdb_sim::SimRng;

const TABLE: u64 = 100_000_000;

fn scan_stream(n: usize, seed: u64) -> Vec<PricedScan> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a = rng.uniform_u64(0, TABLE - 1);
            let len = rng.uniform_u64(1, TABLE / 4);
            PricedScan::new(a, (a + len).min(TABLE), 1.0 + rng.uniform_f64())
        })
        .collect()
}

fn bench_insert_evict(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_tree/insert_evict");
    for window in [50usize, 200, 1000] {
        let scans = scan_stream(window * 4, 1);
        group.bench_with_input(BenchmarkId::new("avl", window), &window, |b, &w| {
            b.iter(|| {
                let mut est: TupleValueEstimator<AvlValueTree> =
                    TupleValueEstimator::with_backend(w);
                for s in &scans {
                    est.observe(*s);
                }
                black_box(est.tracked_keys());
            });
        });
        group.bench_with_input(BenchmarkId::new("btree", window), &window, |b, &w| {
            b.iter(|| {
                let mut est: TupleValueEstimator<BTreeValueTree> =
                    TupleValueEstimator::with_backend(w);
                for s in &scans {
                    est.observe(*s);
                }
                black_box(est.tracked_keys());
            });
        });
    }
    group.finish();
}

fn bench_iterate(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_tree/algorithm1");
    for window in [50usize, 200, 1000] {
        let scans = scan_stream(window, 2);
        let mut avl: TupleValueEstimator<AvlValueTree> = TupleValueEstimator::with_backend(window);
        let mut bt: TupleValueEstimator<BTreeValueTree> = TupleValueEstimator::with_backend(window);
        for s in &scans {
            avl.observe(*s);
            bt.observe(*s);
        }
        group.bench_with_input(BenchmarkId::new("avl", window), &window, |b, _| {
            b.iter(|| {
                black_box(avl.chunks(TABLE).len());
            });
        });
        group.bench_with_input(BenchmarkId::new("btree", window), &window, |b, _| {
            b.iter(|| {
                black_box(bt.chunks(TABLE).len());
            });
        });
    }
    group.finish();
}

fn bench_raw_tree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_tree/raw_add_remove");
    let scans = scan_stream(512, 3);
    group.bench_function("avl", |b| {
        b.iter(|| {
            let mut t = AvlValueTree::new();
            for s in &scans {
                t.add_scan(s);
            }
            for s in &scans {
                t.remove_scan(s).unwrap();
            }
            black_box(t.is_empty());
        });
    });
    group.bench_function("btree", |b| {
        b.iter(|| {
            let mut t = BTreeValueTree::new();
            for s in &scans {
                t.add_scan(s);
            }
            for s in &scans {
                t.remove_scan(s).unwrap();
            }
            black_box(t.is_empty());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_evict,
    bench_iterate,
    bench_raw_tree_ops
);
criterion_main!(benches);
