//! Criterion bench: the Kuhn–Munkres transition matcher (§7).
//!
//! The paper reports standard implementations were "sufficiently fast even
//! for thousands of nodes"; this bench tracks our O(n³) implementation's
//! scaling, plus end-to-end transition planning on interval sets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nashdb_core::transition::{hungarian, plan_transition, IntervalSet};
use nashdb_sim::SimRng;

fn random_matrix(n: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..n).map(|_| rng.uniform_u64(0, 1_000_000)).collect())
        .collect()
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition/hungarian");
    for n in [16usize, 64, 128, 256] {
        let cost = random_matrix(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let total = hungarian(&cost).map_or(u64::MAX, |(_, total)| total);
                black_box(total)
            });
        });
    }
    group.finish();
}

fn bench_plan_transition(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition/plan");
    for n in [16usize, 64, 128] {
        let mut rng = SimRng::seed_from_u64(13);
        let mk = |rng: &mut SimRng| {
            IntervalSet::from_intervals((0..8).map(|_| {
                let a = rng.uniform_u64(0, 100_000_000);
                (a, a + rng.uniform_u64(1, 2_000_000))
            }))
        };
        let old: Vec<IntervalSet> = (0..n).map(|_| mk(&mut rng)).collect();
        let new: Vec<IntervalSet> = (0..n + n / 8).map(|_| mk(&mut rng)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(plan_transition(&old, &new).total_transfer));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hungarian, bench_plan_transition);
criterion_main!(benches);
