//! Criterion bench: fragmentation algorithms (§5).
//!
//! The exact DP is O(maxFrags · m²) in the chunk count m; the greedy
//! split/merge and DT heuristics are near-linear per round. This bench
//! quantifies the gap that motivates the greedy algorithm, plus the cost of
//! one *incremental* greedy round (the steady-state maintenance price).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nashdb_baselines::dt_fragmentation;
use nashdb_core::fragment::{optimal_fragmentation, GreedyFragmenter};
use nashdb_core::value::Chunk;
use nashdb_sim::SimRng;

fn chunk_series(m: usize, seed: u64) -> Vec<Chunk> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut chunks = Vec::with_capacity(m);
    let mut pos = 0u64;
    for _ in 0..m {
        let len = rng.uniform_u64(1_000, 1_000_000);
        chunks.push(Chunk {
            start: pos,
            end: pos + len,
            value: rng.uniform_f64() * 1e-6,
        });
        pos += len;
    }
    chunks
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fragmentation/from_scratch");
    let k = 32;
    for m in [64usize, 128, 256] {
        let chunks = chunk_series(m, 7);
        group.bench_with_input(BenchmarkId::new("optimal_dp", m), &m, |b, _| {
            b.iter(|| black_box(optimal_fragmentation(&chunks, k).map_or(0, |f| f.len())));
        });
        group.bench_with_input(BenchmarkId::new("greedy", m), &m, |b, _| {
            b.iter(|| {
                let table = chunks.last().map_or(0, |c| c.end);
                let mut g = GreedyFragmenter::new(table, k);
                g.run(&chunks, 4 * k);
                black_box(g.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("dt", m), &m, |b, _| {
            b.iter(|| black_box(dt_fragmentation(&chunks, k).len()));
        });
    }
    group.finish();
}

fn bench_incremental_round(c: &mut Criterion) {
    // The steady-state cost: one split/merge round on a converged
    // fragmentation after a small workload shift.
    let mut group = c.benchmark_group("fragmentation/incremental_round");
    for m in [64usize, 256] {
        let chunks = chunk_series(m, 9);
        let table = chunks.last().map_or(0, |c| c.end);
        let mut g = GreedyFragmenter::new(table, 32);
        g.run(&chunks, 128);
        // A shifted value function over the same table span.
        let shifted = respan(&chunk_series(m, 10), table);
        group.bench_with_input(BenchmarkId::new("step", m), &m, |b, _| {
            b.iter(|| {
                let mut g2 = g.clone();
                black_box(g2.step(&shifted))
            });
        });
    }
    group.finish();
}

/// Rescales a chunk series to span exactly `[0, table)`.
fn respan(chunks: &[Chunk], table: u64) -> Vec<Chunk> {
    let total = chunks.last().map_or(1, |c| c.end);
    let mut out = Vec::with_capacity(chunks.len());
    let mut prev = 0u64;
    for (i, c) in chunks.iter().enumerate() {
        let end = if i + 1 == chunks.len() {
            table
        } else {
            u64::try_from(c.end as u128 * table as u128 / total as u128).unwrap_or(u64::MAX)
        };
        if end > prev {
            out.push(Chunk {
                start: prev,
                end,
                value: c.value,
            });
            prev = end;
        }
    }
    out
}

criterion_group!(benches, bench_algorithms, bench_incremental_round);
criterion_main!(benches);
