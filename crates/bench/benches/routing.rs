//! Criterion bench: scan routers (§8) on synthetic queue states.
#![allow(clippy::unwrap_used)] // bench harness: panicking on a malformed problem is correct

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nashdb_baselines::{GreedySetCover, ShortestQueue};
use nashdb_core::ids::{FragmentId, NodeId};
use nashdb_core::routing::{FragmentRequest, MaxOfMins, QueueView, ScanRouter};
use nashdb_sim::SimRng;

fn problem(
    requests: usize,
    nodes: usize,
    replicas: usize,
    seed: u64,
) -> (Vec<FragmentRequest>, Vec<u64>) {
    let mut rng = SimRng::seed_from_u64(seed);
    let reqs = (0..requests)
        .map(|i| {
            let mut candidates: Vec<NodeId> = Vec::with_capacity(replicas);
            while candidates.len() < replicas.min(nodes) {
                let n = NodeId(rng.uniform_u64(0, nodes as u64));
                if !candidates.contains(&n) {
                    candidates.push(n);
                }
            }
            FragmentRequest {
                fragment: FragmentId(i as u64),
                size: rng.uniform_u64(100_000, 2_000_000),
                candidates,
            }
        })
        .collect();
    let waits = (0..nodes).map(|_| rng.uniform_u64(0, 5_000_000)).collect();
    (reqs, waits)
}

fn bench_routers(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for (requests, nodes) in [(16usize, 8usize), (64, 32), (256, 64)] {
        let (reqs, waits) = problem(requests, nodes, 3, 23);
        let id = format!("{requests}req_{nodes}n");
        group.bench_with_input(BenchmarkId::new("max_of_mins", &id), &requests, |b, _| {
            let router = MaxOfMins::new(70_000);
            b.iter(|| {
                let mut q = QueueView::from_waits(waits.clone());
                black_box(router.route(&reqs, &mut q).unwrap().len())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("shortest_queue", &id),
            &requests,
            |b, _| {
                b.iter(|| {
                    let mut q = QueueView::from_waits(waits.clone());
                    black_box(ShortestQueue.route(&reqs, &mut q).unwrap().len())
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("greedy_sc", &id), &requests, |b, _| {
            b.iter(|| {
                let mut q = QueueView::from_waits(waits.clone());
                black_box(GreedySetCover.route(&reqs, &mut q).unwrap().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routers);
criterion_main!(benches);
