//! Fig. 6c and Fig. 9a — query prioritization (paper §10.2).
//!
//! * Fig. 6c: every TPC-H query gets the same price, swept 1..16 (1/100
//!   cent); higher prices buy more replicas and nodes, lowering both the
//!   mean and the variance of latency.
//! * Fig. 9a: only template #7's price is swept while the rest stay at 1;
//!   the prioritized template speeds up several-fold while the others see
//!   only a modest spillover improvement.

use super::{fmt, row, table_header};
use crate::env::{run_system, ExpEnv, Router, System};
use crate::header;

/// Fig. 6c: uniform price sweep over the TPC-H batch.
pub fn run_uniform_price() {
    header("Fig 6c — TPC-H latency vs uniform query price");
    table_header(&[
        "price(1/100c)",
        "peak nodes",
        "mean lat (s)",
        "stdev (s)",
        "cost",
    ]);
    for price in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let w = super::tpch_static(price);
        let env = ExpEnv::for_workload(&super::tpch_static(1.0), 1.0 / 8.0).warmed(w.queries.len());
        let m = run_system(
            &w,
            System::NashDb { price_mult: 1.0 },
            Router::MaxOfMins,
            &env,
        );
        let mean = m.mean_latency_secs();
        let var = m
            .queries
            .iter()
            .map(|q| {
                let l = q.latency().as_secs_f64();
                (l - mean) * (l - mean)
            })
            .sum::<f64>()
            / m.queries.len().max(1) as f64;
        row(&[
            fmt(price),
            format!("{}", m.peak_nodes),
            fmt(mean),
            fmt(var.sqrt()),
            fmt(m.total_cost),
        ]);
    }
    println!("  expectation: mean and stdev of latency fall as price rises; cost rises.");
}

/// Fig. 9a: sweep template #7's price while all others stay at 1/100 cent.
pub fn run_template_price() {
    header("Fig 9a — per-template prioritization (TPC-H template #7)");
    table_header(&["t7 price", "t7 lat (s)", "other lat (s)", "cost"]);
    for t7_price in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let w = super::tpch_prioritized(1.0, 7, t7_price);
        let env = ExpEnv::for_workload(&super::tpch_static(1.0), 1.0 / 8.0).warmed(w.queries.len());
        let m = run_system(
            &w,
            System::NashDb { price_mult: 1.0 },
            Router::MaxOfMins,
            &env,
        );
        // Query ids are assigned in schedule order = workload order.
        let tag_of = |id: u64| w.queries[nashdb_core::num::usize_from(id)].query.tag;
        let (mut t7, mut t7n, mut other, mut on) = (0.0, 0u32, 0.0, 0u32);
        for q in &m.queries {
            let l = q.latency().as_secs_f64();
            if tag_of(q.id.get()) == 7 {
                t7 += l;
                t7n += 1;
            } else {
                other += l;
                on += 1;
            }
        }
        row(&[
            fmt(t7_price),
            fmt(t7 / t7n.max(1) as f64),
            fmt(other / on.max(1) as f64),
            fmt(m.total_cost),
        ]);
    }
    println!("  expectation: template-7 latency falls sharply (paper: ~4×),");
    println!("  other templates improve only modestly (paper: ~10%).");
}
