//! Fig. 11 — throughput over time under NashDB (paper Appendix G.2).
//!
//! The point of the figure: hourly cluster transitions barely dent
//! throughput (the paper reports <5% variation on its steadiest workload,
//! with transfer overhead orders of magnitude below read throughput).

use nashdb_workload::Workload;

use super::{fmt, row, table_header};
use crate::env::{run_system, ExpEnv, Router, System};
use crate::header;

fn one(w: &Workload, warm: bool) {
    let mut env = ExpEnv::for_workload(w, 1.0 / 8.0);
    if warm {
        env = env.warmed(w.queries.len() / 2);
    }
    let m = run_system(
        w,
        System::NashDb { price_mult: 1.0 },
        Router::MaxOfMins,
        &env,
    );

    // Bucket to ~coarse rows over the active portion of the run.
    let buckets: Vec<(f64, f64)> = m
        .read_throughput
        .buckets()
        .map(|(t, v)| (t.as_secs_f64() / 60.0, v))
        .collect();
    let active_end = buckets
        .iter()
        .rposition(|&(_, v)| v > 0.0)
        .map_or(0, |i| i + 1);
    let active = &buckets[..active_end];
    println!();
    println!(
        "  workload: {} ({} reconfigurations, {} tuples transferred total)",
        w.name,
        m.reconfigurations,
        m.total_transfer()
    );
    table_header(&["minute", "GB read"]);
    let step = (active.len() / 12).max(1);
    let mut rows_gb: Vec<f64> = Vec::new();
    for chunk in active.chunks(step) {
        let t0 = chunk[0].0;
        let total: f64 = chunk.iter().map(|&(_, v)| v).sum();
        rows_gb.push(total / 1e6);
        row(&[fmt(t0), fmt(total / 1e6)]); // 1e6 tuples = 1 GB
    }
    // Variation across the full steady-state rows (drop the final partial
    // row, where arrivals have already stopped).
    if rows_gb.len() >= 4 {
        let steady = &rows_gb[..rows_gb.len() - 1];
        let min = steady.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = steady.iter().cloned().fold(0.0f64, f64::max);
        if max > 0.0 {
            println!(
                "  steady-state variation: {:.1}%",
                100.0 * (max - min) / max
            );
        }
    }
}

/// Runs Fig. 11a–d.
pub fn run() {
    header("Fig 11 — throughput over time (NashDB)");
    one(&super::random_dynamic(), false);
    one(&super::real1_dynamic(), false);
    one(&super::real2_dynamic(), false);
    one(&super::real1_static(), true);
    println!();
    println!("  expectation: transition overhead is small relative to read throughput;");
    println!("  the static batch shows the least variation (no transitions needed).");
}
