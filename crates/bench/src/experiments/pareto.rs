//! Fig. 7 — cost vs. latency production possibilities and Pareto fronts on
//! the static workloads (paper §10.3).
//!
//! Each system is swept through its tuning knob: NashDB by query price,
//! Hypergraph by partition count, Threshold by node count. A configuration
//! is Pareto optimal if no other point (from any system) has both lower or
//! equal cost and lower or equal latency.

use nashdb_workload::Workload;

use super::{fmt, row, table_header};
use crate::env::{min_nodes, run_system, ExpEnv, Router, System};
use crate::header;

/// One swept configuration's outcome.
#[derive(Debug, Clone)]
pub struct Point {
    /// System name.
    pub system: &'static str,
    /// Knob value.
    pub param: f64,
    /// Mean query latency (s).
    pub latency: f64,
    /// Total monetary cost (1/100 cent).
    pub cost: f64,
}

/// Marks the Pareto-optimal members of a point set (min latency, min cost).
pub fn pareto_front(points: &[Point]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            !points.iter().any(|q| {
                (q.cost <= p.cost && q.latency < p.latency)
                    || (q.cost < p.cost && q.latency <= p.latency)
            })
        })
        .collect()
}

/// Sweeps all three systems over one static workload.
pub fn sweep(w: &Workload, env: &ExpEnv) -> Vec<Point> {
    let mut points = Vec::new();
    for price_mult in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let m = run_system(w, System::NashDb { price_mult }, Router::MaxOfMins, env);
        points.push(Point {
            system: "NashDB",
            param: price_mult,
            latency: m.mean_latency_secs(),
            cost: m.total_cost,
        });
    }
    let floor = min_nodes(w, env.disk);
    for mult in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0] {
        let parts = nashdb_core::num::saturating_usize(floor as f64 * mult).max(floor);
        let m = run_system(w, System::Hypergraph { parts }, Router::MaxOfMins, env);
        points.push(Point {
            system: "Hypergraph",
            param: parts as f64,
            latency: m.mean_latency_secs(),
            cost: m.total_cost,
        });
        let m = run_system(
            w,
            System::Threshold { nodes: parts },
            Router::MaxOfMins,
            env,
        );
        points.push(Point {
            system: "Threshold",
            param: parts as f64,
            latency: m.mean_latency_secs(),
            cost: m.total_cost,
        });
    }
    points
}

/// Runs the full Fig. 7 suite.
pub fn run() {
    header("Fig 7 — cost/latency production possibilities (static workloads)");
    for w in [
        super::tpch_static(1.0),
        super::bernoulli_static(1.0),
        super::real1_static(),
    ] {
        let env = ExpEnv::for_workload(&w, 1.0 / 8.0).warmed(w.queries.len() / 2);
        println!();
        println!("  workload: {}", w.name);
        table_header(&["system", "param", "mean lat (s)", "cost", "pareto"]);
        let points = sweep(&w, &env);
        let front = pareto_front(&points);
        let mut nash_on_front = 0usize;
        let mut other_on_front = 0usize;
        for (p, &on) in points.iter().zip(&front) {
            if on {
                if p.system == "NashDB" {
                    nash_on_front += 1;
                } else {
                    other_on_front += 1;
                }
            }
            row(&[
                p.system.to_string(),
                fmt(p.param),
                fmt(p.latency),
                fmt(p.cost),
                if on { "*".into() } else { "".into() },
            ]);
        }
        println!(
            "  Pareto front: {nash_on_front} NashDB point(s), {other_on_front} other point(s)"
        );
    }
    println!("  paper: the front is (almost) entirely NashDB points, one Hypergraph");
    println!("  point surviving on the real workload. reproduced: NashDB dominates");
    println!("  Hypergraph throughout and holds the high-performance end of the front;");
    println!("  our Threshold comparator holds more of the front than the paper's,");
    println!("  because (unlike E-Store) it is given NashDB's own Max-of-mins router");
    println!("  and read-block granularity — see EXPERIMENTS.md for the analysis.");
}
