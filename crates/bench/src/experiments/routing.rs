//! Fig. 8c and Fig. 9c — scan-router comparison (paper §10.4).
//!
//! NashDB's distribution pipeline is held fixed; only the router changes:
//! Max-of-mins (ϕ = 350 ms) vs. Shortest-queue vs. Greedy set cover.

use std::sync::OnceLock;

use super::{fmt, row, table_header};
use crate::env::{run_system, ExpEnv, Router, System};
use crate::header;

/// One router's outcome on one workload.
#[derive(Debug, Clone)]
pub struct RouterPoint {
    /// Workload name.
    pub workload: String,
    /// Router name.
    pub router: &'static str,
    /// Mean latency (s).
    pub latency: f64,
    /// Mean query span (nodes per query).
    pub span: f64,
    /// Total cost.
    pub cost: f64,
}

/// All router × dynamic-workload runs, computed once per process.
pub fn runs() -> &'static [RouterPoint] {
    static CACHE: OnceLock<Vec<RouterPoint>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut out = Vec::new();
        for w in [
            super::random_dynamic(),
            super::real1_dynamic(),
            super::real2_dynamic(),
        ] {
            let env = ExpEnv::for_workload(&w, 1.0 / 8.0);
            for router in [
                Router::MaxOfMins,
                Router::ShortestQueue,
                Router::GreedySetCover,
            ] {
                let m = run_system(&w, System::NashDb { price_mult: 1.0 }, router, &env);
                out.push(RouterPoint {
                    workload: w.name.clone(),
                    router: router.name(),
                    latency: m.mean_latency_secs(),
                    span: m.mean_span(),
                    cost: m.total_cost,
                });
            }
        }
        out
    })
}

/// Fig. 8c: latency by router.
pub fn run_latency() {
    header("Fig 8c — average latency by scan router (dynamic workloads)");
    table_header(&["workload", "router", "lat (s)", "cost"]);
    for p in runs() {
        row(&[
            p.workload.clone(),
            p.router.into(),
            fmt(p.latency),
            fmt(p.cost),
        ]);
    }
    println!("  expectation: Max of mins < Shortest queue < Greedy SC on latency");
    println!("  at approximately the same cost.");
}

/// Fig. 9c: average query span by router, plus the ϕ-sensitivity ablation
/// called out in DESIGN.md.
pub fn run_span() {
    header("Fig 9c — average query span by scan router");
    table_header(&["workload", "router", "avg span"]);
    for p in runs() {
        row(&[p.workload.clone(), p.router.into(), fmt(p.span)]);
    }
    println!("  paper: Greedy SC ~1.1 < Max of mins ~1.5 < Shortest queue ~3.3.");
    println!("  our queries span dozens of read blocks, so absolute spans are");
    println!("  larger; the ordering and the span/latency trade reproduce.");

    // Ablation: Max-of-mins span penalty sweep. ϕ is a *wait-equivalent*
    // (350 ms at cluster throughput by default); larger penalties trade
    // latency for narrower span.
    header("Fig 9c (ablation) — Max-of-mins ϕ sensitivity (random workload)");
    table_header(&["phi (s)", "avg span", "lat (s)"]);
    let w = super::random_dynamic();
    let env = crate::env::ExpEnv::for_workload(&w, 1.0 / 8.0);
    for phi_secs in [0.0f64, 0.35, 3.5, 35.0] {
        let phi = nashdb_core::num::saturating_u64(phi_secs * env.run.cluster.throughput_tps);
        let router = nashdb_core::routing::MaxOfMins::new(phi);
        let mut dist = nashdb::NashDbDistributor::new(&w.db, env.nash);
        let m = nashdb::run_workload(&w, &mut dist, &router, &env.run);
        row(&[
            fmt(phi_secs),
            fmt(m.mean_span()),
            fmt(m.mean_latency_secs()),
        ]);
    }
    println!("  expectation: span falls monotonically as ϕ grows; latency is flat");
    println!("  until ϕ forces queueing behind busy replicas, then rises.");
}
