//! One module per figure/table of the paper's evaluation.

pub mod ablations;
pub mod fig6;
pub mod fixed;
pub mod overhead;
pub mod pareto;
pub mod priority;
pub mod routing;
pub mod tab1;
pub mod throughput;

use nashdb_sim::SimDuration;
use nashdb_workload::bernoulli::{self, BernoulliConfig};
use nashdb_workload::random::{self, RandomConfig};
use nashdb_workload::realistic;
use nashdb_workload::tpch::{self, TpchConfig};
use nashdb_workload::Workload;

/// Fixed seed for every experiment (the harness is fully deterministic).
pub const SEED: u64 = 20180615; // SIGMOD'18, June 15

/// The TPC-H static batch. The paper ran 1 TB on up to 400 EC2 nodes; we
/// scale to 100 GB on a proportionally smaller simulated cluster (shapes,
/// not absolute numbers — see EXPERIMENTS.md).
pub fn tpch_static(price: f64) -> Workload {
    tpch::workload(&TpchConfig {
        size_gb: 100,
        rounds: 3,
        price,
        price_overrides: Vec::new(),
        spacing: SimDuration::from_secs(20),
        seed: SEED,
    })
}

/// TPC-H with one template's price overridden (Fig. 9a).
pub fn tpch_prioritized(base_price: f64, template: u32, template_price: f64) -> Workload {
    tpch::workload(&TpchConfig {
        size_gb: 100,
        rounds: 8,
        price: base_price,
        price_overrides: vec![(template, template_price)],
        spacing: SimDuration::from_secs(20),
        seed: SEED,
    })
}

/// The Bernoulli static batch (suffix-heavy time-series reads).
pub fn bernoulli_static(price: f64) -> Workload {
    bernoulli::workload(&BernoulliConfig {
        size_gb: 100,
        queries: 250,
        price,
        spacing: SimDuration::from_secs(20),
        seed: SEED,
    })
}

/// The static Real-data-1 analogue (dashboard batch).
pub fn real1_static() -> Workload {
    realistic::real1_static(SEED)
}

/// The dynamic Random workload (72 h of uniform range queries).
pub fn random_dynamic() -> Workload {
    random::workload(&RandomConfig {
        size_gb: 100,
        queries: 800,
        duration: SimDuration::from_secs(72 * 3600),
        price: 1.0,
        seed: SEED,
    })
}

/// The dynamic Real-data-1 analogue (descriptive analytics, 72 h).
pub fn real1_dynamic() -> Workload {
    realistic::real1_dynamic(SEED)
}

/// The dynamic Real-data-2 analogue (predictive analytics, 72 h).
pub fn real2_dynamic() -> Workload {
    realistic::real2_dynamic(SEED)
}

/// Formats a float compactly for table cells.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 || (x != 0.0 && x.abs() < 1e-3) {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Prints one row of an aligned table.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("  {}", line.join(" "));
}

/// Prints a header row followed by a rule.
pub fn table_header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("  {}", "-".repeat(15 * cells.len()));
}
