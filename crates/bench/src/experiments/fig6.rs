//! Fig. 6a/6b — inner-fragment variance of the fragmentation algorithms on
//! static and dynamic workloads (paper §10.1).
//!
//! * Static: run the whole workload through the tuple value estimator, then
//!   fragment once with each algorithm and report the total error (Eq. 4).
//! * Dynamic: recalculate after every query and report the *sum* of the
//!   total error over time — adaptivity matters, which is where NashDB's
//!   merge step separates it from split-only DT.

use std::collections::VecDeque;

use nashdb_baselines::{dt_fragmentation, hypergraph_fragmentation, naive_fragmentation};
use nashdb_core::fragment::{optimal_fragmentation, ChunkPrefix, GreedyFragmenter};
use nashdb_core::value::{PricedScan, TupleValueEstimator};
use nashdb_workload::Workload;

use super::{fmt, row, table_header};
use crate::env::WINDOW;
use crate::header;

/// `maxFrags` per table for the fragmentation-quality comparison.
const MAX_FRAGS: usize = 32;

/// Errors are reported with tuple values expressed per GB rather than per
/// tuple (`V` scales by 1e6, error by 1e12): same ordering, magnitudes
/// comparable to the paper's 1e3–1e7 axis.
const ERR_SCALE: f64 = 1e12;

/// Algorithm names, in the paper's legend order.
const ALGOS: [&str; 5] = ["Optimal", "NashDB", "DT", "Naive", "Hypergraph"];

struct TableTrack {
    len: u64,
    est: TupleValueEstimator,
    scans: VecDeque<(u64, u64)>,
    greedy: GreedyFragmenter,
    /// Cached per-algorithm error, refreshed when the table is touched.
    cached: [f64; 5],
}

impl TableTrack {
    fn new(len: u64) -> Self {
        TableTrack {
            len,
            est: TupleValueEstimator::new(WINDOW),
            scans: VecDeque::with_capacity(WINDOW),
            greedy: GreedyFragmenter::new(len, MAX_FRAGS),
            cached: [0.0; 5],
        }
    }

    fn observe(&mut self, start: u64, end: u64, price: f64) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        self.est.observe(PricedScan::new(start, end, price));
        if self.scans.len() == WINDOW {
            self.scans.pop_front();
        }
        self.scans.push_back((start, end));
    }

    /// Recomputes every algorithm's error for this table.
    fn refresh(&mut self, greedy_rounds: usize) {
        let chunks = self.est.chunks(self.len);
        let Ok(prefix) = ChunkPrefix::new(&chunks) else {
            return; // estimator never emits malformed chunks
        };
        let scans: Vec<(u64, u64)> = self.scans.iter().copied().collect();
        self.greedy.run(&chunks, greedy_rounds);
        self.cached = [
            // MAX_FRAGS > 0 and the chunks just validated, so this cannot
            // fail; 0.0 keeps the table printable if it ever does.
            optimal_fragmentation(&chunks, MAX_FRAGS).map_or(0.0, |f| f.total_error(&prefix)),
            self.greedy.fragmentation().total_error(&prefix),
            dt_fragmentation(&chunks, MAX_FRAGS).total_error(&prefix),
            naive_fragmentation(self.len, MAX_FRAGS).total_error(&prefix),
            hypergraph_fragmentation(&scans, self.len, MAX_FRAGS).total_error(&prefix),
        ];
    }
}

fn tracks_for(w: &Workload) -> Vec<TableTrack> {
    w.db.tables
        .iter()
        .map(|t| TableTrack::new(t.tuples))
        .collect()
}

fn observe_query(tracks: &mut [TableTrack], tq: &nashdb_workload::TimedQuery) -> Vec<usize> {
    let total: u64 = tq.query.scans.iter().map(|s| s.size()).sum();
    let mut touched = Vec::new();
    for s in &tq.query.scans {
        let price = tq.query.price * s.size() as f64 / total as f64;
        let t = nashdb_core::num::usize_from(s.table.get());
        tracks[t].observe(s.start, s.end, price);
        if !touched.contains(&t) {
            touched.push(t);
        }
    }
    touched
}

/// Fig. 6a: total fragment error after a full static workload.
pub fn run_static() {
    header("Fig 6a — total fragment error, static workloads");
    println!("  (maxFrags = {MAX_FRAGS} per table, window |W| = {WINDOW})");
    table_header(&["workload", ALGOS[0], ALGOS[1], ALGOS[2], ALGOS[3], ALGOS[4]]);
    for w in [
        super::tpch_static(1.0),
        super::bernoulli_static(1.0),
        super::real1_static(),
    ] {
        let mut tracks = tracks_for(&w);
        for tq in &w.queries {
            observe_query(&mut tracks, tq);
        }
        let mut totals = [0.0f64; 5];
        for t in &mut tracks {
            // Static case: let the greedy fragmenter converge.
            t.refresh(4 * MAX_FRAGS);
            for (tot, e) in totals.iter_mut().zip(t.cached) {
                *tot += e;
            }
        }
        let mut cells = vec![w.name.clone()];
        cells.extend(totals.iter().map(|&e| fmt(e * ERR_SCALE)));
        row(&cells);
    }
    println!("  expectation: NashDB ≤ other heuristics, within ~50% of Optimal;");
    println!("  Hypergraph collapses on Bernoulli (adversarial suffix scans).");
}

/// Fig. 6b: summed total fragment error, recalculated after each query of a
/// dynamic workload.
pub fn run_dynamic() {
    header("Fig 6b — summed fragment error over time, dynamic workloads");
    table_header(&["workload", ALGOS[0], ALGOS[1], ALGOS[2], ALGOS[3], ALGOS[4]]);
    for w in [
        super::random_dynamic(),
        super::real1_dynamic(),
        super::real2_dynamic(),
    ] {
        let mut tracks = tracks_for(&w);
        let mut sums = [0.0f64; 5];
        for tq in &w.queries {
            let touched = observe_query(&mut tracks, tq);
            for t in touched {
                // A few rounds per query: the greedy fragmenter adapts
                // incrementally, as deployed.
                tracks[t].refresh(4);
            }
            for track in &tracks {
                for (s, e) in sums.iter_mut().zip(track.cached) {
                    *s += e;
                }
            }
        }
        let mut cells = vec![w.name.clone()];
        cells.extend(sums.iter().map(|&e| fmt(e * ERR_SCALE)));
        row(&cells);
    }
    println!("  expectation: NashDB ≈ 2× better than DT (merge+split vs split-only),");
    println!("  larger Optimal-NashDB gap than the static case.");
}
