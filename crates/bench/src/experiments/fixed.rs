//! Fig. 8a/8b, Fig. 9b, Fig. 10 — dynamic-workload comparisons at matched
//! operating points (paper §10.3).
//!
//! The paper tunes each system to an identical average latency and compares
//! monetary cost (8a) and transition data transfer (9b), then fixes cost
//! and compares latency (8b) and tail latency (10). We reproduce the
//! calibration by sweeping each system's knob and selecting the
//! configuration closest to the NashDB reference point.

use std::sync::OnceLock;

use nashdb_workload::Workload;

use super::{fmt, row, table_header};
use crate::env::{min_nodes, run_system, ExpEnv, Router, System};
use crate::header;

/// Summary of one configuration's run.
#[derive(Debug, Clone)]
pub struct SysPoint {
    /// System name.
    pub system: &'static str,
    /// Knob value.
    pub param: f64,
    /// Mean latency (s).
    pub latency: f64,
    /// 95th percentile latency (s).
    pub p95: f64,
    /// 99th percentile latency (s).
    pub p99: f64,
    /// Total cost (1/100 cent).
    pub cost: f64,
    /// Mean tuples transferred per reconfiguration.
    pub transfer_per_reconfig: f64,
}

/// Sweep results for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadSweep {
    /// Workload name.
    pub name: String,
    /// All swept points, NashDB first.
    pub points: Vec<SysPoint>,
}

fn summarize(system: &'static str, param: f64, m: &nashdb_cluster::Metrics) -> SysPoint {
    let mut m95 = nashdb_sim::stats::Percentiles::new();
    for q in &m.queries {
        m95.push(q.latency().as_secs_f64());
    }
    SysPoint {
        system,
        param,
        latency: m.mean_latency_secs(),
        p95: m95.percentile(95.0).unwrap_or(0.0),
        p99: m95.percentile(99.0).unwrap_or(0.0),
        cost: m.total_cost,
        transfer_per_reconfig: m.total_transfer() as f64 / m.reconfigurations.max(1) as f64,
    }
}

fn sweep(w: &Workload) -> WorkloadSweep {
    let env = ExpEnv::for_workload(w, 1.0 / 8.0);
    let mut points = Vec::new();
    for price_mult in [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let m = run_system(w, System::NashDb { price_mult }, Router::MaxOfMins, &env);
        points.push(summarize("NashDB", price_mult, &m));
    }
    let floor = min_nodes(w, env.disk);
    for mult in [1.0, 1.5, 2.0, 3.0, 4.0] {
        let n = nashdb_core::num::saturating_usize(floor as f64 * mult).max(floor);
        let m = run_system(w, System::Hypergraph { parts: n }, Router::MaxOfMins, &env);
        points.push(summarize("Hypergraph", n as f64, &m));
        let m = run_system(w, System::Threshold { nodes: n }, Router::MaxOfMins, &env);
        points.push(summarize("Threshold", n as f64, &m));
    }
    WorkloadSweep {
        name: w.name.clone(),
        points,
    }
}

/// The three dynamic workloads' sweeps, computed once per process.
pub fn sweeps() -> &'static [WorkloadSweep] {
    static CACHE: OnceLock<Vec<WorkloadSweep>> = OnceLock::new();
    CACHE.get_or_init(|| {
        [
            super::random_dynamic(),
            super::real1_dynamic(),
            super::real2_dynamic(),
        ]
        .iter()
        .map(sweep)
        .collect()
    })
}

/// NashDB's reference point (price multiplier 1.0).
fn reference(ws: &WorkloadSweep) -> &SysPoint {
    let found = ws
        .points
        .iter()
        .find(|p| p.system == "NashDB" && (p.param - 1.0).abs() < 1e-9);
    let Some(found) = found else {
        // sweeps() always includes NashDB at price multiplier 1.0.
        unreachable!("reference point swept")
    };
    found
}

/// The configuration of `system` whose `key` is closest to `target`.
fn closest<'a>(
    ws: &'a WorkloadSweep,
    system: &str,
    target: f64,
    key: impl Fn(&SysPoint) -> f64,
) -> &'a SysPoint {
    let found = ws
        .points
        .iter()
        .filter(|p| p.system == system)
        .min_by(|a, b| (key(a) - target).abs().total_cmp(&(key(b) - target).abs()));
    let Some(found) = found else {
        // sweeps() runs every system named by the callers.
        unreachable!("system swept")
    };
    found
}

/// Fig. 8a: monetary cost after calibrating every system to NashDB's
/// average latency.
pub fn run_fixed_latency() {
    header("Fig 8a — monetary cost at (approximately) fixed average latency");
    table_header(&["workload", "system", "lat (s)", "cost"]);
    for ws in sweeps() {
        let target = reference(ws).latency;
        for sys in ["NashDB", "Hypergraph", "Threshold"] {
            let p = closest(ws, sys, target, |p| p.latency);
            row(&[ws.name.clone(), sys.into(), fmt(p.latency), fmt(p.cost)]);
        }
    }
    println!("  expectation: NashDB cheapest at matched latency (paper: ~15% under");
    println!("  Hypergraph on Real data 2).");
}

/// Fig. 8b: average latency after calibrating every system to NashDB's
/// cost.
pub fn run_fixed_cost() {
    header("Fig 8b — average latency at (approximately) fixed monetary cost");
    table_header(&["workload", "system", "cost", "lat (s)"]);
    for ws in sweeps() {
        let target = reference(ws).cost;
        for sys in ["NashDB", "Hypergraph", "Threshold"] {
            let p = closest(ws, sys, target, |p| p.cost);
            row(&[ws.name.clone(), sys.into(), fmt(p.cost), fmt(p.latency)]);
        }
    }
    println!("  expectation: NashDB 20–50% lower latency at matched cost.");
}

/// Fig. 9b: data transferred per transition at the fixed-latency operating
/// points.
pub fn run_transfer() {
    header("Fig 9b — data transfer per transition at fixed latency (KB; 1 tuple = 1 KB)");
    table_header(&["workload", "system", "transfer/reconfig"]);
    for ws in sweeps() {
        let target = reference(ws).latency;
        for sys in ["NashDB", "Hypergraph", "Threshold"] {
            let p = closest(ws, sys, target, |p| p.latency);
            row(&[ws.name.clone(), sys.into(), fmt(p.transfer_per_reconfig)]);
        }
    }
    println!("  expectation: NashDB moves the MOST data (it re-optimizes aggressively);");
    println!("  Hypergraph the least — yet NashDB still wins on cost/latency (Fig 8).");
}

/// Fig. 10: tail latency at the fixed-cost operating points.
pub fn run_tail_latency() {
    header("Fig 10 — 95th/99th percentile latency at fixed cost");
    table_header(&["workload", "system", "p95 (s)", "p99 (s)"]);
    for ws in sweeps() {
        let target = reference(ws).cost;
        for sys in ["NashDB", "Hypergraph", "Threshold"] {
            let p = closest(ws, sys, target, |p| p.cost);
            row(&[ws.name.clone(), sys.into(), fmt(p.p95), fmt(p.p99)]);
        }
    }
    println!("  expectation: NashDB's tails beat both baselines on all three workloads.");
}
