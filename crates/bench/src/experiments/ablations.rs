//! Ablations of NashDB's design choices (DESIGN.md §5):
//!
//! * `market` — closed-form equilibrium (Eq. 9) vs. Mariposa-style market
//!   simulation (paper §6's central "we compute it directly" claim).
//! * `merge2` — three-into-two merging vs. the pairwise strawman of paper
//!   Fig. 4, on the dynamic workloads.
//! * `p2c` — the footnote-3 "Power of 2" router vs. Max-of-mins.
//! * `hetero` — the §6 heterogeneous-node extension carried out: replicas
//!   flow to the cheapest storage first and spill upward.

use std::time::Instant;

use nashdb_core::fragment::{
    fragment_stats, split_oversized, ChunkPrefix, Fragmentation, GreedyFragmenter, MergePolicy,
};
use nashdb_core::replication::hetero::{decide_replicas_hetero, pack_bffd_hetero, NodeClass};
use nashdb_core::replication::market::{simulate_market, MarketConfig};
use nashdb_core::replication::{decide_replicas, ReplicationPolicy};
use nashdb_core::routing::PowerOfTwoChoices;
use nashdb_core::value::{PricedScan, TupleValueEstimator};
use nashdb_core::NodeSpec;
use nashdb_sim::SimRng;

use super::{fmt, row, table_header};
use crate::env::{run_system, ExpEnv, Router, System, WINDOW};
use crate::header;

/// `market`: how long best-response dynamics take to find what Eq. 9
/// computes in one pass.
pub fn run_market() {
    header("Ablation — closed-form equilibrium vs. Mariposa-style market simulation");
    table_header(&[
        "fragments",
        "closed (µs)",
        "market (µs)",
        "rounds",
        "actions",
        "same counts",
    ]);
    let mut rng = SimRng::seed_from_u64(super::SEED);
    for frags in [16usize, 64, 256, 1024] {
        // A plausible value profile: estimator over random scans, split to
        // roughly the requested fragment count.
        let table = 10_000_000u64;
        let mut est = TupleValueEstimator::new(WINDOW);
        for _ in 0..WINDOW * 2 {
            let a = rng.uniform_u64(0, table - 1);
            let len = rng.uniform_u64(10_000, table / 4);
            est.observe(PricedScan::new(a, (a + len).min(table), 1.0));
        }
        let chunks = est.chunks(table);
        let frag = split_oversized(&Fragmentation::single(table), (table / frags as u64).max(1));
        let stats = fragment_stats(&frag, &chunks).unwrap_or_default();
        let policy =
            ReplicationPolicy::new(WINDOW, NodeSpec::new(0.25, 1_000_000)).with_max_replicas(4_096);

        let t0 = Instant::now();
        let decisions = decide_replicas(&stats, &policy);
        let closed_us = t0.elapsed().as_secs_f64() * 1e6;

        let t0 = Instant::now();
        let outcome = simulate_market(&stats, &policy, MarketConfig::default());
        let market_us = t0.elapsed().as_secs_f64() * 1e6;

        // The market matches Ideal(f); NashDB floors worthless fragments at
        // one replica for availability, the market drops them.
        let same = decisions.iter().zip(&outcome.replicas).all(|(d, &m)| {
            if d.forced {
                m == 0
            } else {
                d.replicas == m
            }
        });
        row(&[
            format!("{}", stats.len()),
            fmt(closed_us),
            fmt(market_us),
            format!("{}", outcome.rounds),
            format!("{}", outcome.actions),
            format!("{same}"),
        ]);
        assert!(outcome.converged, "market failed to converge");
    }
    println!("  the market lands on exactly Eq. 9's counts (minus the availability");
    println!("  floor) but needs rounds proportional to the largest replica count —");
    println!("  the overhead §6 credits NashDB with avoiding.");
}

/// `merge2`: summed dynamic fragment error, triple-merge vs. pairwise.
pub fn run_merge2() {
    header("Ablation — merge three-into-two (paper Fig. 4) vs. pairwise merge");
    table_header(&["workload", "triple (NashDB)", "pairwise", "pair/triple"]);
    const MAX_FRAGS: usize = 32;
    const ERR_SCALE: f64 = 1e12;
    for w in [super::random_dynamic(), super::real1_dynamic()] {
        let mut sums = [0.0f64; 2];
        let policies = [MergePolicy::TripleToPair, MergePolicy::PairToOne];
        for (slot, policy) in policies.iter().enumerate() {
            let mut tables: Vec<(TupleValueEstimator, GreedyFragmenter, u64)> =
                w.db.tables
                    .iter()
                    .map(|t| {
                        (
                            TupleValueEstimator::new(WINDOW),
                            GreedyFragmenter::new(t.tuples, MAX_FRAGS).with_merge_policy(*policy),
                            t.tuples,
                        )
                    })
                    .collect();
            for tq in &w.queries {
                let total: u64 = tq.query.scans.iter().map(|s| s.size()).sum();
                let mut touched = Vec::new();
                for s in &tq.query.scans {
                    let t = nashdb_core::num::usize_from(s.table.get());
                    let end = s.end.min(tables[t].2);
                    if s.start < end && total > 0 {
                        let price = tq.query.price * s.size() as f64 / total as f64;
                        tables[t].0.observe(PricedScan::new(s.start, end, price));
                        if !touched.contains(&t) {
                            touched.push(t);
                        }
                    }
                }
                for &t in &touched {
                    let chunks = tables[t].0.chunks(tables[t].2);
                    tables[t].1.run(&chunks, 4);
                }
                for (est, frag, len) in &tables {
                    let chunks = est.chunks(*len);
                    let Ok(prefix) = ChunkPrefix::new(&chunks) else {
                        continue; // estimator never emits malformed chunks
                    };
                    sums[slot] += frag.fragmentation().total_error(&prefix);
                }
            }
        }
        row(&[
            w.name.clone(),
            fmt(sums[0] * ERR_SCALE),
            fmt(sums[1] * ERR_SCALE),
            fmt(sums[1] / sums[0].max(1e-30)),
        ]);
    }
    println!("  expectation: pairwise merging adapts worse (ratio > 1) — the Fig. 4");
    println!("  argument for merging triples, quantified.");
}

/// `hetero`: equilibrium replica placement across mixed node classes.
pub fn run_hetero() {
    header("Ablation — heterogeneous node classes (paper §6's deferred extension)");
    println!("  classes: cheap-HDD density 0.05/tuple (8 nodes) vs NVMe density 0.25");
    table_header(&["fragment value", "total replicas", "on cheap", "on NVMe"]);
    let classes = vec![
        NodeClass {
            spec: NodeSpec::new(250.0, 1_000),
            available: None, // NVMe: pricey but elastic
        },
        NodeClass {
            spec: NodeSpec::new(50.0, 1_000),
            available: Some(8), // HDD: cheap but only 8 boxes exist
        },
    ];
    let mut rows = Vec::new();
    for &value in &[0.1f64, 0.5, 1.0, 2.0, 5.0, 20.0] {
        let stats = [nashdb_core::fragment::FragmentStats {
            id: nashdb_core::FragmentId(0),
            range: nashdb_core::fragment::FragmentRange::new(0, 100),
            value,
            error: 0.0,
        }];
        let d = &decide_replicas_hetero(&stats, WINDOW, &classes)[0];
        let packed = pack_bffd_hetero(&stats, std::slice::from_ref(d), &classes);
        assert!(packed.is_ok(), "hetero packing failed: {packed:?}");
        let nodes = packed.unwrap_or_default();
        assert_eq!(nodes.len() as u64, d.total(), "one node per replica here");
        rows.push((value, d.total(), d.per_class[1], d.per_class[0]));
        row(&[
            fmt(value),
            format!("{}", d.total()),
            format!("{}", d.per_class[1]),
            format!("{}", d.per_class[0]),
        ]);
    }
    // The cheap tier fills before the pricey tier hosts anything.
    assert!(rows
        .iter()
        .all(|&(_, _, cheap, nvme)| nvme == 0 || cheap == 8));
    println!("  replicas occupy the cheap class first and spill to NVMe only once");
    println!("  all 8 HDD boxes hold a copy — the market's answer to tiering.");
}

/// `p2c`: the footnote-3 constant-time router against Max-of-mins.
pub fn run_p2c() {
    header("Ablation — Max-of-mins vs. Power-of-2 routing (paper footnote 3)");
    table_header(&["workload", "router", "lat (s)", "avg span"]);
    for w in [super::random_dynamic(), super::real1_dynamic()] {
        let env = ExpEnv::for_workload(&w, 1.0 / 8.0);
        let m = run_system(
            &w,
            System::NashDb { price_mult: 1.0 },
            Router::MaxOfMins,
            &env,
        );
        row(&[
            w.name.clone(),
            "Max of mins".into(),
            fmt(m.mean_latency_secs()),
            fmt(m.mean_span()),
        ]);
        let router = PowerOfTwoChoices::new(env.phi_tuples(), super::SEED);
        let mut dist = nashdb::NashDbDistributor::new(&w.db, env.nash);
        let m = nashdb::run_workload(&w, &mut dist, &router, &env.run);
        row(&[
            w.name.clone(),
            "Power of 2".into(),
            fmt(m.mean_latency_secs()),
            fmt(m.mean_span()),
        ]);
    }
    println!("  expectation: Power-of-2 stays within a small factor of Max-of-mins");
    println!("  while examining only two replicas per request.");
}
