//! Table 1 — dataset statistics (paper Appendix F).
//!
//! The real workloads are proprietary; the paper publishes only these
//! summary statistics. Our generators are matched to them — this table
//! prints ours next to the paper's targets.

use super::{fmt, row, table_header};
use crate::header;

/// Prints the statistics of every workload used in the evaluation.
pub fn run() {
    header("Table 1 — dataset statistics (ours vs. paper targets)");
    table_header(&[
        "workload",
        "DB (GB)",
        "#queries",
        "med read (GB)",
        "min read (GB)",
    ]);
    let rows: Vec<(nashdb_workload::WorkloadSummary, &str)> = vec![
        (
            super::tpch_static(1.0).summary(),
            "paper: 1000 GB (scaled to 100)",
        ),
        (
            super::bernoulli_static(1.0).summary(),
            "paper: 1000 GB (scaled to 100)",
        ),
        (
            super::real1_static().summary(),
            "paper: 800 GB, 1000 q, med 600 GB, min 5 GB",
        ),
        (super::random_dynamic().summary(), "synthetic"),
        (
            super::real1_dynamic().summary(),
            "paper: 300 GB, 1220 q, med 50 GB, min <1 GB",
        ),
        (
            super::real2_dynamic().summary(),
            "paper: 3 TB, 2500 q, med 450 GB, min 80 KB",
        ),
    ];
    for (s, target) in rows {
        row(&[
            s.name.clone(),
            fmt(s.db_gb),
            format!("{}", s.queries),
            fmt(s.median_read_gb),
            fmt(s.min_read_gb),
        ]);
        println!("      target -> {target}");
    }
}
