//! §10.1 (text) — value estimation tree overhead.
//!
//! The paper reports: at |W| = 50 the tree + buffer stays under 1 KB with
//! access times under 5 ms; at |W| = 1000 under 4 KB, still under 5 ms.
//! We measure our AVL tree's heap footprint and access times directly.

use std::time::Instant;

use nashdb_core::value::{PricedScan, TupleValueEstimator};
use nashdb_sim::SimRng;

use super::{fmt, row, table_header};
use crate::header;

fn measure(window: usize, table_len: u64) -> (usize, usize, f64, f64) {
    let mut est = TupleValueEstimator::new(window);
    let mut rng = SimRng::seed_from_u64(9);
    let scan = move |rng: &mut SimRng| {
        let a = rng.uniform_u64(0, table_len - 1);
        let len = rng.uniform_u64(1, table_len / 4);
        PricedScan::new(a, (a + len).min(table_len), 1.0)
    };
    // Warm to a full window.
    for _ in 0..window * 2 {
        est.observe(scan(&mut rng));
    }
    let bytes = est.tree().approx_bytes();
    let keys = est.tracked_keys();

    // Insert+evict cost.
    let n = 20_000;
    let t0 = Instant::now();
    for _ in 0..n {
        est.observe(scan(&mut rng));
    }
    let insert_us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;

    // Full value recovery (Algorithm 1), the access the fragmenter performs.
    let m = 2_000;
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..m {
        sink = sink.saturating_add(est.chunks(table_len).len());
    }
    let access_ms = t0.elapsed().as_secs_f64() * 1e3 / m as f64;
    assert!(sink > 0);
    (bytes, keys, insert_us, access_ms)
}

/// Runs the overhead measurement at the paper's two window sizes.
pub fn run() {
    header("§10.1 — value estimation tree overhead");
    table_header(&["|W|", "tree bytes", "keys", "insert (µs)", "iterate (ms)"]);
    for window in [50usize, 1000] {
        let (bytes, keys, insert_us, access_ms) = measure(window, 100_000_000);
        row(&[
            format!("{window}"),
            format!("{bytes}"),
            format!("{keys}"),
            fmt(insert_us),
            fmt(access_ms),
        ]);
    }
    println!("  paper: <1 KB and <5 ms at |W| = 50; <4 KB and <5 ms at |W| = 1000.");
    println!("  (our node is larger than the paper's ∆-only sketch — counts are kept");
    println!("  for exact removal — but footprint and access stay well inside bounds)");
}
