//! Bench-trajectory gate: diffs a fresh perf snapshot against the
//! committed `BENCH_BASELINE.json` so optimized-path wins cannot silently
//! erode.
//!
//! The committed baseline is a full perf snapshot (the same schema
//! `nashdb-bench perf` emits); only the optimized-path timing gauges in
//! [`TRACKED_GAUGES`] are compared — speedup *ratios* move whenever the
//! naive references change, but the optimized absolute timings are the
//! quantity the PRs that introduced them actually bought.
//!
//! ```text
//! nashdb-bench compare BENCH_PERF.json BENCH_BASELINE.json --max-regression 0.25
//! ```
//!
//! A tracked gauge more than `max_regression` (fractional, default 0.25)
//! slower than the baseline fails the gate. Large improvements are reported
//! (not failed) so the baseline can be ratcheted down.
//!
//! The sibling quality gate, [`compare_scenarios`], diffs two scenario
//! artifacts (`nashdb-bench compare --scenarios`): the build fails if
//! NashDB has *lost Pareto-frontier membership* in any matrix cell where
//! the committed `SCENARIO_BASELINE.json` has it. Dominance-count drops are
//! reported as warnings; frontier gains as ratchet candidates.

use nashdb_obs::{ObsSnapshot, ScenarioArtifact};

/// The optimized-path timing gauges under the trajectory gate, one per
/// hot path the perf harness times.
pub const TRACKED_GAUGES: &[&str] = &[
    "perf.routing.incremental_ns",
    "perf.routing.batch_ns",
    "perf.lookup.indexed_ns",
    "perf.fragment.dp_ns",
    "perf.packing.bffd_ns",
];

/// Default allowed fractional slowdown before the gate fails (25%): wide
/// enough for shared-runner noise on millisecond-scale timings, tight
/// enough that an accidental O(n) → O(n²) on any hot path cannot hide.
pub const DEFAULT_MAX_REGRESSION: f64 = 0.25;

/// One tracked gauge's movement between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeDelta {
    /// Gauge name from [`TRACKED_GAUGES`].
    pub name: &'static str,
    /// Baseline timing (ns).
    pub baseline_ns: f64,
    /// Current timing (ns).
    pub current_ns: f64,
    /// Fractional change: `current / baseline - 1` (positive = slower).
    pub change: f64,
}

/// The full diff across [`TRACKED_GAUGES`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// One delta per tracked gauge, in [`TRACKED_GAUGES`] order.
    pub deltas: Vec<GaugeDelta>,
}

impl CompareReport {
    /// Deltas slower than the allowed fractional regression.
    pub fn regressions(&self, max_regression: f64) -> Vec<&GaugeDelta> {
        self.deltas
            .iter()
            .filter(|d| d.change > max_regression)
            .collect()
    }

    /// Deltas faster than the baseline by more than the same margin —
    /// candidates for ratcheting the baseline down.
    pub fn improvements(&self, margin: f64) -> Vec<&GaugeDelta> {
        self.deltas.iter().filter(|d| d.change < -margin).collect()
    }
}

/// Why a comparison could not be made at all (as opposed to failing it).
#[derive(Debug, Clone, PartialEq)]
pub enum CompareError {
    /// A tracked gauge is absent from one of the snapshots.
    MissingGauge {
        /// `"current"` or `"baseline"`.
        which: &'static str,
        /// The absent gauge.
        name: &'static str,
    },
    /// The baseline records a non-positive timing; the ratio is undefined
    /// and the baseline file is corrupt or hand-edited.
    NonPositiveBaseline {
        /// The offending gauge.
        name: &'static str,
        /// Its recorded value.
        value: f64,
    },
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::MissingGauge { which, name } => {
                write!(f, "{which} snapshot has no gauge {name:?}")
            }
            CompareError::NonPositiveBaseline { name, value } => {
                write!(f, "baseline gauge {name:?} is non-positive ({value})")
            }
        }
    }
}

impl std::error::Error for CompareError {}

/// Diffs every tracked gauge between the two snapshots.
///
/// # Errors
/// [`CompareError`] when a tracked gauge is missing from either snapshot or
/// the baseline timing is non-positive.
pub fn compare(
    current: &ObsSnapshot,
    baseline: &ObsSnapshot,
) -> Result<CompareReport, CompareError> {
    let mut report = CompareReport::default();
    for &name in TRACKED_GAUGES {
        let cur = current.gauge(name).ok_or(CompareError::MissingGauge {
            which: "current",
            name,
        })?;
        let base = baseline.gauge(name).ok_or(CompareError::MissingGauge {
            which: "baseline",
            name,
        })?;
        if base <= 0.0 {
            return Err(CompareError::NonPositiveBaseline { name, value: base });
        }
        report.deltas.push(GaugeDelta {
            name,
            baseline_ns: base,
            current_ns: cur,
            change: cur / base - 1.0,
        });
    }
    Ok(report)
}

/// The system the scenario gate tracks.
pub const GATED_SYSTEM: &str = "nashdb";

/// One cell's dominance-count movement between baseline and current.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominanceDelta {
    /// The cell key (`workload/drift/mix/budget`).
    pub cell: String,
    /// Points NashDB dominated in the baseline.
    pub baseline: u64,
    /// Points NashDB dominates now.
    pub current: u64,
}

/// The scenario-gate diff: frontier movements of [`GATED_SYSTEM`] across
/// every baseline cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioCompareReport {
    /// Cells compared (= baseline cells).
    pub cells: usize,
    /// Cells where the baseline has NashDB on the frontier but the current
    /// artifact does not — each one fails the gate.
    pub lost_frontier: Vec<String>,
    /// Cells where NashDB newly joined the frontier (ratchet candidates).
    pub gained_frontier: Vec<String>,
    /// Cells where NashDB dominates fewer points than in the baseline
    /// (warning, not failure: frontier membership is the contract).
    pub dominance_drops: Vec<DominanceDelta>,
}

impl ScenarioCompareReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.lost_frontier.is_empty()
    }
}

/// Why two scenario artifacts could not be compared at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioCompareError {
    /// A baseline cell is absent from the current artifact — the matrix
    /// shrank, so the gate cannot certify the missing scenario.
    MissingCell {
        /// The absent cell's key.
        key: String,
    },
    /// A cell has no [`GATED_SYSTEM`] point.
    MissingSystem {
        /// The cell's key.
        key: String,
        /// `"current"` or `"baseline"`.
        which: &'static str,
    },
}

impl std::fmt::Display for ScenarioCompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioCompareError::MissingCell { key } => {
                write!(f, "current artifact has no cell {key:?}")
            }
            ScenarioCompareError::MissingSystem { key, which } => {
                write!(f, "{which} cell {key:?} has no {GATED_SYSTEM} point")
            }
        }
    }
}

impl std::error::Error for ScenarioCompareError {}

/// Diffs NashDB's frontier membership per cell between two artifacts.
///
/// Extra cells in `current` (a grown matrix) are ignored; every baseline
/// cell must be present in `current`.
///
/// # Errors
/// [`ScenarioCompareError`] when a baseline cell is absent from the current
/// artifact or either side lacks a [`GATED_SYSTEM`] point.
pub fn compare_scenarios(
    current: &ScenarioArtifact,
    baseline: &ScenarioArtifact,
) -> Result<ScenarioCompareReport, ScenarioCompareError> {
    let mut report = ScenarioCompareReport::default();
    for base_cell in &baseline.cells {
        let key = base_cell.key();
        let base_point =
            base_cell
                .system(GATED_SYSTEM)
                .ok_or_else(|| ScenarioCompareError::MissingSystem {
                    key: key.clone(),
                    which: "baseline",
                })?;
        let cur_cell = current
            .cell(&key)
            .ok_or_else(|| ScenarioCompareError::MissingCell { key: key.clone() })?;
        let cur_point =
            cur_cell
                .system(GATED_SYSTEM)
                .ok_or_else(|| ScenarioCompareError::MissingSystem {
                    key: key.clone(),
                    which: "current",
                })?;

        report.cells += 1;
        match (base_point.on_front, cur_point.on_front) {
            (true, false) => report.lost_frontier.push(key.clone()),
            (false, true) => report.gained_frontier.push(key.clone()),
            _ => {}
        }
        if cur_point.dominates < base_point.dominates {
            report.dominance_drops.push(DominanceDelta {
                cell: key,
                baseline: base_point.dominates,
                current: cur_point.dominates,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nashdb_obs::SNAPSHOT_VERSION;

    fn snapshot(gauges: &[(&str, f64)]) -> ObsSnapshot {
        ObsSnapshot {
            version: SNAPSHOT_VERSION,
            labels: vec![("kind".to_owned(), "perf".to_owned())],
            counters: Vec::new(),
            gauges: gauges.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
            histograms: Vec::new(),
            spans: Vec::new(),
        }
    }

    fn all_at(ns: f64) -> ObsSnapshot {
        snapshot(&TRACKED_GAUGES.iter().map(|&g| (g, ns)).collect::<Vec<_>>())
    }

    #[test]
    fn flat_timings_pass() {
        let report = compare(&all_at(1_000.0), &all_at(1_000.0)).unwrap();
        assert_eq!(report.deltas.len(), TRACKED_GAUGES.len());
        assert!(report.regressions(DEFAULT_MAX_REGRESSION).is_empty());
        assert!(report.improvements(DEFAULT_MAX_REGRESSION).is_empty());
    }

    #[test]
    fn quarter_slowdown_is_the_edge() {
        // Exactly 25% slower passes (strict inequality); 26% fails.
        let just_inside = compare(&all_at(1_250.0), &all_at(1_000.0)).unwrap();
        assert!(just_inside.regressions(0.25).is_empty());
        let over = compare(&all_at(1_260.0), &all_at(1_000.0)).unwrap();
        assert_eq!(over.regressions(0.25).len(), TRACKED_GAUGES.len());
        assert!((over.deltas[0].change - 0.26).abs() < 1e-9);
    }

    #[test]
    fn single_gauge_regression_is_isolated() {
        let mut gauges: Vec<(&str, f64)> = TRACKED_GAUGES.iter().map(|&g| (g, 1_000.0)).collect();
        gauges[2].1 = 2_000.0; // fragment DP doubled
        let report = compare(&snapshot(&gauges), &all_at(1_000.0)).unwrap();
        let regressions = report.regressions(DEFAULT_MAX_REGRESSION);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, TRACKED_GAUGES[2]);
        assert!((regressions[0].change - 1.0).abs() < 1e-9);
    }

    #[test]
    fn improvements_are_reported_not_failed() {
        let report = compare(&all_at(500.0), &all_at(1_000.0)).unwrap();
        assert!(report.regressions(DEFAULT_MAX_REGRESSION).is_empty());
        assert_eq!(
            report.improvements(DEFAULT_MAX_REGRESSION).len(),
            TRACKED_GAUGES.len()
        );
    }

    #[test]
    fn missing_and_corrupt_gauges_are_errors() {
        let empty = snapshot(&[]);
        assert_eq!(
            compare(&empty, &all_at(1.0)),
            Err(CompareError::MissingGauge {
                which: "current",
                name: TRACKED_GAUGES[0]
            })
        );
        assert_eq!(
            compare(&all_at(1.0), &empty),
            Err(CompareError::MissingGauge {
                which: "baseline",
                name: TRACKED_GAUGES[0]
            })
        );
        assert_eq!(
            compare(&all_at(1.0), &all_at(0.0)),
            Err(CompareError::NonPositiveBaseline {
                name: TRACKED_GAUGES[0],
                value: 0.0
            })
        );
    }

    #[test]
    fn tracked_gauges_follow_the_lint_prefix_registry() {
        // compare() and the linter must agree on names, or a renamed gauge
        // would sail through the lint registry yet break the gate.
        for g in TRACKED_GAUGES {
            assert!(g.starts_with("perf."));
        }
    }

    use nashdb_obs::{CellSnapshot, SystemPoint, SCENARIO_VERSION};

    fn scenario_point(system: &str, on_front: bool, dominates: u64) -> SystemPoint {
        SystemPoint {
            system: system.to_owned(),
            cost: 1.0,
            mean_latency_secs: 1.0,
            p99_latency_secs: 2.0,
            on_front,
            dominates,
        }
    }

    fn scenario_cell(workload: &str, nash_on_front: bool, nash_dominates: u64) -> CellSnapshot {
        CellSnapshot {
            workload: workload.to_owned(),
            drift: "steady".to_owned(),
            mix: "uniform".to_owned(),
            budget: "tight".to_owned(),
            faults: "none".to_owned(),
            systems: vec![
                scenario_point(GATED_SYSTEM, nash_on_front, nash_dominates),
                scenario_point("threshold", !nash_on_front || nash_dominates == 0, 0),
            ],
            wall_ns: 0,
        }
    }

    fn scenario_artifact(cells: Vec<CellSnapshot>) -> ScenarioArtifact {
        ScenarioArtifact {
            version: SCENARIO_VERSION,
            labels: Vec::new(),
            cells,
        }
    }

    #[test]
    fn identical_scenario_artifacts_pass() {
        let art = scenario_artifact(vec![
            scenario_cell("tpch", true, 1),
            scenario_cell("random", false, 0),
        ]);
        let report = compare_scenarios(&art, &art.clone()).unwrap();
        assert!(report.passed());
        assert_eq!(report.cells, 2);
        assert!(report.lost_frontier.is_empty());
        assert!(report.gained_frontier.is_empty());
        assert!(report.dominance_drops.is_empty());
    }

    #[test]
    fn lost_frontier_fails_the_gate() {
        let baseline = scenario_artifact(vec![scenario_cell("tpch", true, 2)]);
        let current = scenario_artifact(vec![scenario_cell("tpch", false, 0)]);
        let report = compare_scenarios(&current, &baseline).unwrap();
        assert!(!report.passed());
        assert_eq!(report.lost_frontier, vec!["tpch/steady/uniform/tight"]);
        assert_eq!(report.dominance_drops.len(), 1);
        assert_eq!(report.dominance_drops[0].baseline, 2);
        assert_eq!(report.dominance_drops[0].current, 0);
    }

    #[test]
    fn gains_and_dominance_drops_do_not_fail() {
        let baseline = scenario_artifact(vec![
            scenario_cell("tpch", false, 0),
            scenario_cell("random", true, 2),
        ]);
        let current = scenario_artifact(vec![
            scenario_cell("tpch", true, 1),
            scenario_cell("random", true, 1),
        ]);
        let report = compare_scenarios(&current, &baseline).unwrap();
        assert!(report.passed());
        assert_eq!(report.gained_frontier, vec!["tpch/steady/uniform/tight"]);
        assert_eq!(report.dominance_drops.len(), 1);
        assert_eq!(
            report.dominance_drops[0].cell,
            "random/steady/uniform/tight"
        );
    }

    #[test]
    fn missing_cell_or_system_is_an_error() {
        let baseline = scenario_artifact(vec![scenario_cell("tpch", true, 1)]);
        let empty = scenario_artifact(Vec::new());
        assert_eq!(
            compare_scenarios(&empty, &baseline),
            Err(ScenarioCompareError::MissingCell {
                key: "tpch/steady/uniform/tight".to_owned()
            })
        );
        // A grown current matrix is fine the other way round.
        let grown = scenario_artifact(vec![
            scenario_cell("tpch", true, 1),
            scenario_cell("bernoulli", true, 0),
        ]);
        assert!(compare_scenarios(&grown, &baseline).unwrap().passed());

        let mut no_nash = scenario_cell("tpch", true, 1);
        no_nash.systems.retain(|s| s.system != GATED_SYSTEM);
        assert_eq!(
            compare_scenarios(&scenario_artifact(vec![no_nash]), &baseline),
            Err(ScenarioCompareError::MissingSystem {
                key: "tpch/steady/uniform/tight".to_owned(),
                which: "current",
            })
        );
    }
}
