//! `nashdb-cli` — run any of the reproduced systems on a workload, from a
//! generator or a trace file, and print the run's metrics.
//!
//! ```text
//! nashdb-cli --generate bernoulli --size-gb 8 --queries 300
//! nashdb-cli --trace my.trace --system threshold --nodes 12
//! nashdb-cli --generate tpch --save-trace tpch.trace --dry-run
//! nashdb-cli --help
//! ```

use std::process::exit;

use nashdb::{run_workload, Distributor, NashDbDistributor, ScanRouter};
use nashdb_baselines::{
    GreedySetCover, HypergraphDistributor, ShortestQueue, ThresholdDistributor,
};
use nashdb_bench::env::{ExpEnv, WINDOW};
use nashdb_core::routing::{MaxOfMins, PowerOfTwoChoices};
use nashdb_sim::SimDuration;
use nashdb_workload::bernoulli::{self, BernoulliConfig};
use nashdb_workload::random::{self, RandomConfig};
use nashdb_workload::tpch::{self, TpchConfig};
use nashdb_workload::{realistic, trace, Workload};

const HELP: &str = "\
nashdb-cli — run a NashDB (or baseline) simulation on a workload

WORKLOAD (exactly one):
  --trace FILE            load a workload trace (see nashdb_workload::trace)
  --generate KIND         bernoulli | random | tpch | real1-static |
                          real1-dynamic | real2-dynamic

GENERATOR OPTIONS:
  --size-gb N             database size for bernoulli/random/tpch (default 8)
  --queries N             query count for bernoulli/random (default 200)
  --seed N                RNG seed (default 1)
  --price X               uniform query price (default 1.0)

SYSTEM:
  --system NAME           nashdb (default) | hypergraph | threshold
  --nodes N               partition/node count for the baselines (default 8)
  --price-mult X          scale all query prices (NashDB's knob, default 1)

ROUTER:
  --router NAME           max-of-mins (default) | shortest-queue |
                          greedy-sc | power-of-two

CLUSTER (defaults autotuned from the workload, as in the experiments):
  --disk-frac X           node disk as a fraction of the DB (default 0.125)
  --interval SECS         reconfiguration interval (default 3600)
  --warmup N              prime the system with the first N queries

OUTPUT:
  --save-trace FILE       write the workload as a trace and continue
  --dry-run               stop after generating/saving (no simulation)
  --throughput            also print the throughput-over-time series
  -h, --help              this text
";

struct Args(Vec<String>);

impl Args {
    fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.0.iter().position(|a| a == name) {
            self.0.remove(i);
            true
        } else {
            false
        }
    }

    fn value(&mut self, name: &str) -> Option<String> {
        let i = self.0.iter().position(|a| a == name)?;
        if i + 1 >= self.0.len() {
            die(&format!("{name} requires a value"));
        }
        let v = self.0.remove(i + 1);
        self.0.remove(i);
        Some(v)
    }

    fn parse<T: std::str::FromStr>(&mut self, name: &str) -> Option<T> {
        self.value(name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                die(&format!("invalid value {v:?} for {name}"));
            })
        })
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nrun with --help for usage");
    exit(2)
}

fn main() {
    let mut args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        print!("{HELP}");
        return;
    }

    // Workload.
    let size_gb: u64 = args.parse("--size-gb").unwrap_or(8);
    let queries: usize = args.parse("--queries").unwrap_or(200);
    let seed: u64 = args.parse("--seed").unwrap_or(1);
    let price: f64 = args.parse("--price").unwrap_or(1.0);
    let workload: Workload = match (args.value("--trace"), args.value("--generate")) {
        (Some(path), None) => trace::load(&path).unwrap_or_else(|e| die(&format!("{e}"))),
        (None, Some(kind)) => match kind.as_str() {
            "bernoulli" => bernoulli::workload(&BernoulliConfig {
                size_gb,
                queries,
                price,
                spacing: SimDuration::from_secs(10),
                seed,
            }),
            "random" => random::workload(&RandomConfig {
                size_gb,
                queries,
                duration: SimDuration::from_secs(24 * 3600),
                price,
                seed,
            }),
            "tpch" => tpch::workload(&TpchConfig {
                size_gb,
                rounds: (queries / 22).max(1),
                price,
                price_overrides: Vec::new(),
                spacing: SimDuration::from_secs(20),
                seed,
            }),
            "real1-static" => realistic::real1_static(seed),
            "real1-dynamic" => realistic::real1_dynamic(seed),
            "real2-dynamic" => realistic::real2_dynamic(seed),
            other => die(&format!("unknown generator {other:?}")),
        },
        (Some(_), Some(_)) => die("--trace and --generate are mutually exclusive"),
        (None, None) => die("need --trace FILE or --generate KIND"),
    };
    println!(
        "workload: {} — {} queries over {:.1} GB",
        workload.name,
        workload.queries.len(),
        workload.db.total_tuples() as f64 / 1e6
    );

    if let Some(path) = args.value("--save-trace") {
        trace::save(&workload, &path).unwrap_or_else(|e| die(&format!("saving trace: {e}")));
        println!("trace written to {path}");
    }
    if args.flag("--dry-run") {
        return;
    }

    // Environment.
    let disk_frac: f64 = args.parse("--disk-frac").unwrap_or(0.125);
    let mut env = ExpEnv::for_workload(&workload, disk_frac);
    if let Some(secs) = args.parse::<u64>("--interval") {
        env.run.reconfig_interval = SimDuration::from_secs(secs.max(1));
    }
    if let Some(n) = args.parse::<usize>("--warmup") {
        env = env.warmed(n);
    }

    // System.
    let price_mult: f64 = args.parse("--price-mult").unwrap_or(1.0);
    let nodes: usize = args.parse("--nodes").unwrap_or(8);
    let system = args.value("--system").unwrap_or_else(|| "nashdb".into());
    let mut dist: Box<dyn Distributor> = match system.as_str() {
        "nashdb" => Box::new(NashDbDistributor::new(&workload.db, env.nash)),
        "hypergraph" => Box::new(
            HypergraphDistributor::new(&workload.db, nodes, env.disk, WINDOW)
                .with_block(env.block()),
        ),
        "threshold" => Box::new(
            ThresholdDistributor::new(&workload.db, nodes, env.disk, WINDOW)
                .with_block(env.block()),
        ),
        other => die(&format!("unknown system {other:?}")),
    };

    // Router.
    let router_name = args
        .value("--router")
        .unwrap_or_else(|| "max-of-mins".into());
    let router: Box<dyn ScanRouter> = match router_name.as_str() {
        "max-of-mins" => Box::new(MaxOfMins::new(env.phi_tuples())),
        "shortest-queue" => Box::new(ShortestQueue),
        "greedy-sc" => Box::new(GreedySetCover),
        "power-of-two" => Box::new(PowerOfTwoChoices::new(env.phi_tuples(), seed)),
        other => die(&format!("unknown router {other:?}")),
    };

    let want_throughput = args.flag("--throughput");
    if !args.0.is_empty() {
        die(&format!("unrecognized arguments: {:?}", args.0));
    }

    // Apply the price multiplier by scaling the workload.
    let workload = if (price_mult - 1.0).abs() > 1e-12 {
        nashdb_bench::env::with_price_mult(&workload, price_mult)
    } else {
        workload
    };

    let metrics = run_workload(&workload, dist.as_mut(), router.as_ref(), &env.run);

    println!();
    println!("system            : {system} + {router_name}");
    println!("completed queries : {}", metrics.queries.len());
    println!("mean latency      : {:.3} s", metrics.mean_latency_secs());
    for p in [50.0, 95.0, 99.0] {
        println!(
            "p{p:<2} latency       : {:.3} s",
            metrics.latency_percentile_secs(p).unwrap_or(0.0)
        );
    }
    println!("mean query span   : {:.2} nodes", metrics.mean_span());
    println!("peak cluster size : {} nodes", metrics.peak_nodes);
    println!("reconfigurations  : {}", metrics.reconfigurations);
    println!(
        "data transferred  : {:.2} GB total ({:.2} GB/transition)",
        metrics.total_transfer() as f64 / 1e6,
        metrics.total_transfer() as f64 / 1e6 / metrics.reconfigurations.max(1) as f64
    );
    println!("total cost        : {:.1} (1/100 cent)", metrics.total_cost);

    if want_throughput {
        println!();
        println!("throughput (GB read per bucket):");
        for (t, v) in metrics.read_throughput.buckets() {
            if v > 0.0 {
                println!("  {:>10.1} min  {:>10.2}", t.as_secs_f64() / 60.0, v / 1e6);
            }
        }
    }
}
