//! `nashdb-bench` — CI bench utilities: a deterministic observability smoke
//! run and a snapshot validator.
//!
//! ```text
//! nashdb-bench smoke --seed 42 --obs-out BENCH_PR.json
//! nashdb-bench smoke --stable        # scrub wall-clock for byte-stable output
//! nashdb-bench perf --obs-out BENCH_PR.json
//! nashdb-bench scenarios --seed 42 --obs-out SCENARIO_PR.json
//! nashdb-bench validate BENCH_PR.json
//! nashdb-bench validate --scenarios SCENARIO_PR.json
//! nashdb-bench compare BENCH_PERF.json BENCH_BASELINE.json
//! nashdb-bench compare --scenarios SCENARIO_PR.json SCENARIO_BASELINE.json
//! ```
//!
//! Exit codes: 0 success, 1 validation/coverage/regression failure, 2 usage
//! error.

use std::process::exit;

use nashdb_bench::compare::{compare, compare_scenarios, DEFAULT_MAX_REGRESSION};
use nashdb_bench::perf::{perf_snapshot, PerfConfig, PERF_STAGES};
use nashdb_bench::scenarios::{run_scenarios, ScenarioConfig};
use nashdb_bench::smoke::{run_smoke, SmokeConfig, REQUIRED_STAGES};
use nashdb_obs::{ObsSnapshot, ScenarioArtifact};

const HELP: &str = "\
nashdb-bench — observability smoke/perf runs and snapshot validation

USAGE:
  nashdb-bench smoke [OPTIONS]     run the fixed-seed smoke workload and
                                   emit its observability snapshot
  nashdb-bench perf [OPTIONS]      time the routing / scheme-lookup /
                                   fragmentation / packing hot paths on a
                                   fixed-seed workload and emit the
                                   comparison as a snapshot
  nashdb-bench scenarios [OPTIONS] sweep the scenario matrix (workload ×
                                   drift × node mix × replication budget ×
                                   fault schedule), run NashDB and both
                                   baselines per cell, and emit the
                                   Pareto-marked artifact
  nashdb-bench validate FILE       parse and schema-check a snapshot file
                                   (perf snapshots are recognized by their
                                   kind=perf label and checked against the
                                   perf schema)
  nashdb-bench validate --scenarios FILE
                                   parse and schema-check a scenario
                                   artifact
  nashdb-bench compare CURRENT BASELINE
                                   diff the optimized-path timing gauges of
                                   two perf snapshots; fail if any tracked
                                   gauge regressed beyond the allowance
  nashdb-bench compare --scenarios CURRENT BASELINE
                                   diff two scenario artifacts; fail if
                                   NashDB fell off the Pareto frontier in
                                   any cell where the baseline has it on

SMOKE OPTIONS:
  --seed N          workload RNG seed (default 42)
  --queries N       query count (default 150)
  --size-gb N       database size in GB-equivalents (default 4)
  --obs-out FILE    write the JSON snapshot here (default: stdout)
  --stable          scrub wall-clock timings so same-seed runs are
                    byte-identical (sim-time metrics are kept)

PERF OPTIONS:
  --seed N          problem RNG seed (default 42)
  --fragments N     fragment requests per scan (default 64)
  --nodes N         cluster nodes (default 16)
  --scans N         scans per timing pass (default 400)
  --batch-scans N   scans per batch in the batch-routing scaling workload
                    (default 10000)
  --batch-nodes N   cluster nodes in the batch-routing scaling workload
                    (default 512; scans are zoned over 16-node zones so
                    node-disjoint shards form)
  --min-routing-speedup X
                    fail (exit 1) if the incremental router is not at
                    least X times faster than the naive reference
  --min-batch-speedup X
                    fail (exit 1) if route_batch is not at least X times
                    faster than the per-scan incremental loop on the
                    scaling workload
  --best-of N       repeat the whole suite N times, keep each gauge's
                    minimum (default 1; CI uses 3 — the minimum is the
                    stable estimator on contended shared runners)
  --obs-out FILE    write the JSON snapshot here (default: BENCH_PR.json)

SCENARIOS OPTIONS:
  --seed N          workload RNG seed shared by every cell (default 42)
  --queries N       approximate queries per cell (default 60)
  --size-gb N       database size per cell in GB-equivalents (default 24)
  --quick           sweep only a 5-cell corner of the matrix, one with a
                    crash schedule (debug runs)
  --keep-timings    keep host wall-clock per cell instead of scrubbing it
                    (scrubbing is the default so same-seed artifacts are
                    byte-identical)
  --obs-out FILE    write the JSON artifact here (default: stdout)

COMPARE OPTIONS:
  --max-regression X
                    allowed fractional slowdown per tracked gauge before
                    the gate fails (default 0.25; perf mode only)

  -h, --help        this text
";

struct Args(Vec<String>);

impl Args {
    fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.0.iter().position(|a| a == name) {
            self.0.remove(i);
            true
        } else {
            false
        }
    }

    fn value(&mut self, name: &str) -> Option<String> {
        let i = self.0.iter().position(|a| a == name)?;
        if i + 1 >= self.0.len() {
            die(&format!("{name} requires a value"));
        }
        let v = self.0.remove(i + 1);
        self.0.remove(i);
        Some(v)
    }

    fn parse<T: std::str::FromStr>(&mut self, name: &str) -> Option<T> {
        self.value(name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                die(&format!("invalid value {v:?} for {name}"));
            })
        })
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nrun with --help for usage");
    exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    exit(1)
}

fn main() {
    let mut args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        print!("{HELP}");
        return;
    }
    if args.0.is_empty() {
        die("need a subcommand: smoke | validate");
    }
    match args.0.remove(0).as_str() {
        "smoke" => smoke(args),
        "perf" => perf(args),
        "scenarios" => scenarios(args),
        "validate" => validate(args),
        "compare" => compare_cmd(args),
        other => die(&format!("unknown subcommand {other:?}")),
    }
}

fn scenarios(mut args: Args) {
    let cfg = ScenarioConfig {
        seed: args.parse("--seed").unwrap_or(42),
        queries: args.parse("--queries").unwrap_or(60),
        size_gb: args.parse("--size-gb").unwrap_or(24),
        quick: args.flag("--quick"),
        keep_timings: args.flag("--keep-timings"),
    };
    let out = args.value("--obs-out");
    if !args.0.is_empty() {
        die(&format!("unrecognized arguments: {:?}", args.0));
    }

    let artifact = match run_scenarios(&cfg) {
        Ok(artifact) => artifact,
        Err(e) => fail(&format!("scenario sweep failed: {e}")),
    };

    // The serialized artifact must round-trip through its own schema
    // validator and re-serialize byte-identically before it is published.
    let json = artifact.to_json_string();
    match ScenarioArtifact::from_json_str(&json) {
        Ok(parsed) if parsed.to_json_string() == json => {}
        Ok(_) => fail("scenario artifact did not round-trip byte-identically"),
        Err(e) => fail(&format!("scenario artifact failed its own schema: {e}")),
    }

    let on_front = artifact
        .cells
        .iter()
        .filter(|c| c.system("nashdb").is_some_and(|s| s.on_front))
        .count();
    eprintln!(
        "scenarios ok: seed {} — {} cells × {} systems, nashdb on the frontier in {}",
        cfg.seed,
        artifact.cells.len(),
        artifact.cells.first().map_or(0, |c| c.systems.len()),
        on_front
    );
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                fail(&format!("writing {path}: {e}"));
            }
            eprintln!("artifact written to {path}");
        }
        None => print!("{json}"),
    }
}

fn smoke(mut args: Args) {
    let cfg = SmokeConfig {
        seed: args.parse("--seed").unwrap_or(42),
        queries: args.parse("--queries").unwrap_or(150),
        size_gb: args.parse("--size-gb").unwrap_or(4),
        stable: args.flag("--stable"),
    };
    let out = args.value("--obs-out");
    if !args.0.is_empty() {
        die(&format!("unrecognized arguments: {:?}", args.0));
    }

    let snap = run_smoke(&cfg);

    // Stage coverage: every pipeline stage must have emitted something.
    let missing = snap.missing_stages(REQUIRED_STAGES);
    if !missing.is_empty() {
        fail(&format!("pipeline stages emitted no metrics: {missing:?}"));
    }

    // The serialized form must round-trip through the schema validator and
    // re-serialize byte-identically (no float formatting drift).
    let json = snap.to_json_string();
    match ObsSnapshot::from_json_str(&json) {
        Ok(parsed) if parsed.to_json_string() == json => {}
        Ok(_) => fail("snapshot did not round-trip byte-identically"),
        Err(e) => fail(&format!("snapshot failed its own schema: {e}")),
    }

    eprintln!(
        "smoke ok: seed {} — {} counters, {} gauges, {} histograms, {} spans",
        cfg.seed,
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
        snap.spans.len()
    );
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                fail(&format!("writing {path}: {e}"));
            }
            eprintln!("snapshot written to {path}");
        }
        None => print!("{json}"),
    }
}

fn perf(mut args: Args) {
    let cfg = PerfConfig {
        seed: args.parse("--seed").unwrap_or(42),
        fragments: args.parse("--fragments").unwrap_or(64),
        nodes: args.parse("--nodes").unwrap_or(16),
        scans: args.parse("--scans").unwrap_or(400),
        batch_scans: args.parse("--batch-scans").unwrap_or(10_000),
        batch_nodes: args.parse("--batch-nodes").unwrap_or(512),
        best_of: args.parse("--best-of").unwrap_or(1),
        ..PerfConfig::default()
    };
    if cfg.best_of == 0 {
        die("--best-of must be at least 1");
    }
    let min_speedup: Option<f64> = args.parse("--min-routing-speedup");
    let min_batch_speedup: Option<f64> = args.parse("--min-batch-speedup");
    let out = args
        .value("--obs-out")
        .unwrap_or_else(|| "BENCH_PR.json".to_owned());
    if !args.0.is_empty() {
        die(&format!("unrecognized arguments: {:?}", args.0));
    }

    let snap = perf_snapshot(&cfg);
    let missing = snap.missing_stages(PERF_STAGES);
    if !missing.is_empty() {
        fail(&format!("perf stages emitted no metrics: {missing:?}"));
    }
    let routing = snap.gauge("perf.routing.speedup").unwrap_or(0.0);
    let batch = snap.gauge("perf.routing.batch_speedup").unwrap_or(0.0);
    let pool_reuse = snap.gauge("perf.par.pool_reuse").unwrap_or(0.0);
    let lookup = snap.gauge("perf.lookup.speedup").unwrap_or(0.0);
    eprintln!(
        "perf ok: seed {} — routing {:.1}x faster than naive reference, \
         batch routing {:.1}x faster than per-scan (pool reuse {:.1} \
         chunks/thread), indexed lookups {:.1}x faster than linear scans",
        cfg.seed, routing, batch, pool_reuse, lookup
    );
    if let Some(min) = min_speedup {
        if routing < min {
            fail(&format!(
                "routing speedup {routing:.2}x is below the required {min}x"
            ));
        }
    }
    if let Some(min) = min_batch_speedup {
        if batch < min {
            fail(&format!(
                "batch routing speedup {batch:.2}x is below the required {min}x"
            ));
        }
    }
    let json = snap.to_json_string();
    if let Err(e) = std::fs::write(&out, &json) {
        fail(&format!("writing {out}: {e}"));
    }
    eprintln!("snapshot written to {out}");
}

fn load_snapshot(path: &str) -> ObsSnapshot {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => fail(&format!("reading {path}: {e}")),
    };
    match ObsSnapshot::from_json_str(&raw) {
        Ok(snap) => snap,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn load_scenarios(path: &str) -> ScenarioArtifact {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => fail(&format!("reading {path}: {e}")),
    };
    match ScenarioArtifact::from_json_str(&raw) {
        Ok(artifact) => artifact,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn compare_scenarios_cmd(mut args: Args) {
    if args.0.len() != 2 {
        die("compare --scenarios takes exactly two arguments: CURRENT BASELINE");
    }
    let current_path = args.0.remove(0);
    let baseline_path = args.0.remove(0);
    let current = load_scenarios(&current_path);
    let baseline = load_scenarios(&baseline_path);

    let report = match compare_scenarios(&current, &baseline) {
        Ok(report) => report,
        Err(e) => fail(&format!("{current_path} vs {baseline_path}: {e}")),
    };
    for cell in &report.gained_frontier {
        eprintln!(
            "note: nashdb joined the Pareto frontier in {cell} — consider refreshing {baseline_path}"
        );
    }
    for d in &report.dominance_drops {
        eprintln!(
            "warn: nashdb dominates {} system(s) in {} (baseline: {})",
            d.current, d.cell, d.baseline
        );
    }
    if !report.passed() {
        for cell in &report.lost_frontier {
            eprintln!("REGRESSION: nashdb fell off the Pareto frontier in {cell}");
        }
        fail(&format!(
            "nashdb lost Pareto-frontier membership in {} cell(s) of {}",
            report.lost_frontier.len(),
            baseline_path
        ));
    }
    eprintln!(
        "compare ok: nashdb keeps its frontier position in all {} baseline cells of {}",
        report.cells, baseline_path
    );
}

fn compare_cmd(mut args: Args) {
    if args.flag("--scenarios") {
        compare_scenarios_cmd(args);
        return;
    }
    let max_regression: f64 = args
        .parse("--max-regression")
        .unwrap_or(DEFAULT_MAX_REGRESSION);
    if args.0.len() != 2 {
        die("compare takes exactly two arguments: CURRENT BASELINE");
    }
    let current_path = args.0.remove(0);
    let baseline_path = args.0.remove(0);
    let current = load_snapshot(&current_path);
    let baseline = load_snapshot(&baseline_path);

    let report = match compare(&current, &baseline) {
        Ok(report) => report,
        Err(e) => fail(&format!("{current_path} vs {baseline_path}: {e}")),
    };
    for d in &report.deltas {
        eprintln!(
            "  {:<32} {:>12.0} ns -> {:>12.0} ns  ({:+.1}%)",
            d.name,
            d.baseline_ns,
            d.current_ns,
            d.change * 100.0
        );
    }
    for d in report.improvements(max_regression) {
        eprintln!(
            "note: {} is {:.0}% faster than the baseline — consider refreshing {}",
            d.name,
            -d.change * 100.0,
            baseline_path
        );
    }
    let regressions = report.regressions(max_regression);
    if !regressions.is_empty() {
        for d in &regressions {
            eprintln!(
                "REGRESSION: {} went from {:.0} ns to {:.0} ns ({:+.1}%, allowed {:+.0}%)",
                d.name,
                d.baseline_ns,
                d.current_ns,
                d.change * 100.0,
                max_regression * 100.0
            );
        }
        fail(&format!(
            "{} tracked gauge(s) regressed beyond {:.0}%",
            regressions.len(),
            max_regression * 100.0
        ));
    }
    eprintln!(
        "compare ok: {} tracked gauges within {:.0}% of {}",
        report.deltas.len(),
        max_regression * 100.0,
        baseline_path
    );
}

fn validate(mut args: Args) {
    if args.flag("--scenarios") {
        if args.0.len() != 1 {
            die("validate --scenarios takes exactly one FILE argument");
        }
        let path = args.0.remove(0);
        let artifact = load_scenarios(&path);
        println!(
            "{path}: valid scenario artifact (version {}) — {} cells × {} systems",
            artifact.version,
            artifact.cells.len(),
            artifact.cells.first().map_or(0, |c| c.systems.len())
        );
        return;
    }
    if args.0.len() != 1 {
        die("validate takes exactly one FILE argument");
    }
    let path = args.0.remove(0);
    let raw = match std::fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) => fail(&format!("reading {path}: {e}")),
    };
    let snap = match ObsSnapshot::from_json_str(&raw) {
        Ok(snap) => snap,
        Err(e) => fail(&format!("{path}: {e}")),
    };
    // Perf snapshots label themselves; everything else is a pipeline run
    // and must cover the full stage list.
    let is_perf = snap.labels.iter().any(|(k, v)| k == "kind" && v == "perf");
    let required = if is_perf {
        PERF_STAGES
    } else {
        REQUIRED_STAGES
    };
    let missing = snap.missing_stages(required);
    if !missing.is_empty() {
        fail(&format!(
            "{path}: pipeline stages emitted no metrics: {missing:?}"
        ));
    }
    println!(
        "{path}: valid snapshot (version {}) — {} counters, {} gauges, {} histograms, {} spans",
        snap.version,
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
        snap.spans.len()
    );
}
