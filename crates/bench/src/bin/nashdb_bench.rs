//! `nashdb-bench` — CI bench utilities: a deterministic observability smoke
//! run and a snapshot validator.
//!
//! ```text
//! nashdb-bench smoke --seed 42 --obs-out BENCH_PR.json
//! nashdb-bench smoke --stable        # scrub wall-clock for byte-stable output
//! nashdb-bench validate BENCH_PR.json
//! ```
//!
//! Exit codes: 0 success, 1 validation/coverage failure, 2 usage error.

use std::process::exit;

use nashdb_bench::smoke::{run_smoke, SmokeConfig, REQUIRED_STAGES};
use nashdb_obs::ObsSnapshot;

const HELP: &str = "\
nashdb-bench — observability smoke run and snapshot validation

USAGE:
  nashdb-bench smoke [OPTIONS]     run the fixed-seed smoke workload and
                                   emit its observability snapshot
  nashdb-bench validate FILE       parse and schema-check a snapshot file

SMOKE OPTIONS:
  --seed N          workload RNG seed (default 42)
  --queries N       query count (default 150)
  --size-gb N       database size in GB-equivalents (default 4)
  --obs-out FILE    write the JSON snapshot here (default: stdout)
  --stable          scrub wall-clock timings so same-seed runs are
                    byte-identical (sim-time metrics are kept)
  -h, --help        this text
";

struct Args(Vec<String>);

impl Args {
    fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.0.iter().position(|a| a == name) {
            self.0.remove(i);
            true
        } else {
            false
        }
    }

    fn value(&mut self, name: &str) -> Option<String> {
        let i = self.0.iter().position(|a| a == name)?;
        if i + 1 >= self.0.len() {
            die(&format!("{name} requires a value"));
        }
        let v = self.0.remove(i + 1);
        self.0.remove(i);
        Some(v)
    }

    fn parse<T: std::str::FromStr>(&mut self, name: &str) -> Option<T> {
        self.value(name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                die(&format!("invalid value {v:?} for {name}"));
            })
        })
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nrun with --help for usage");
    exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    exit(1)
}

fn main() {
    let mut args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        print!("{HELP}");
        return;
    }
    if args.0.is_empty() {
        die("need a subcommand: smoke | validate");
    }
    match args.0.remove(0).as_str() {
        "smoke" => smoke(args),
        "validate" => validate(args),
        other => die(&format!("unknown subcommand {other:?}")),
    }
}

fn smoke(mut args: Args) {
    let cfg = SmokeConfig {
        seed: args.parse("--seed").unwrap_or(42),
        queries: args.parse("--queries").unwrap_or(150),
        size_gb: args.parse("--size-gb").unwrap_or(4),
        stable: args.flag("--stable"),
    };
    let out = args.value("--obs-out");
    if !args.0.is_empty() {
        die(&format!("unrecognized arguments: {:?}", args.0));
    }

    let snap = run_smoke(&cfg);

    // Stage coverage: every pipeline stage must have emitted something.
    let missing = snap.missing_stages(REQUIRED_STAGES);
    if !missing.is_empty() {
        fail(&format!("pipeline stages emitted no metrics: {missing:?}"));
    }

    // The serialized form must round-trip through the schema validator and
    // re-serialize byte-identically (no float formatting drift).
    let json = snap.to_json_string();
    match ObsSnapshot::from_json_str(&json) {
        Ok(parsed) if parsed.to_json_string() == json => {}
        Ok(_) => fail("snapshot did not round-trip byte-identically"),
        Err(e) => fail(&format!("snapshot failed its own schema: {e}")),
    }

    eprintln!(
        "smoke ok: seed {} — {} counters, {} gauges, {} histograms, {} spans",
        cfg.seed,
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
        snap.spans.len()
    );
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                fail(&format!("writing {path}: {e}"));
            }
            eprintln!("snapshot written to {path}");
        }
        None => print!("{json}"),
    }
}

fn validate(mut args: Args) {
    if args.0.len() != 1 {
        die("validate takes exactly one FILE argument");
    }
    let path = args.0.remove(0);
    let raw = match std::fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) => fail(&format!("reading {path}: {e}")),
    };
    let snap = match ObsSnapshot::from_json_str(&raw) {
        Ok(snap) => snap,
        Err(e) => fail(&format!("{path}: {e}")),
    };
    let missing = snap.missing_stages(REQUIRED_STAGES);
    if !missing.is_empty() {
        fail(&format!(
            "{path}: pipeline stages emitted no metrics: {missing:?}"
        ));
    }
    println!(
        "{path}: valid snapshot (version {}) — {} counters, {} gauges, {} histograms, {} spans",
        snap.version,
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
        snap.spans.len()
    );
}
