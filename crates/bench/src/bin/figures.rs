//! Regenerates the paper's figures and tables.
//!
//! ```text
//! figures all            # everything, in presentation order
//! figures fig6a fig8c    # specific experiments
//! figures --list         # available ids
//! ```

use std::time::Instant;

use nashdb_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures <all | --list | ids...>");
        eprintln!("ids: {}", ALL_EXPERIMENTS.join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    // Reject bad ids before running anything — a typo after an hour-long
    // sweep should not cost the sweep.
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(id) {
            eprintln!("figures: unknown experiment id {id:?} (run with --list for the known ids)");
            std::process::exit(2);
        }
    }
    for id in ids {
        let t0 = Instant::now();
        if let Err(e) = run_experiment(id) {
            eprintln!("figures: {e}");
            std::process::exit(2);
        }
        println!("  [{id} took {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
