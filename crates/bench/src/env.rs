//! Shared experiment environments and sweep helpers.
//!
//! Every comparison experiment runs all systems on the identical simulated
//! substrate. The NashDB node economics are autotuned per workload: node
//! rent is set so that, at price 1, the hottest fragments earn on the order
//! of [`TARGET_REPLICAS`] replicas — mirroring how the paper's operators
//! would have sized `Cost/Disk` against their query prices.

use nashdb::{
    run_workload_with_faults, Distributor, NashDbConfig, NashDbDistributor, RunConfig, ScanRouter,
};
use nashdb_baselines::{
    GreedySetCover, HypergraphDistributor, ShortestQueue, ThresholdDistributor,
};
use nashdb_cluster::{ClusterConfig, Metrics};
use nashdb_core::economics::NodeSpec;
use nashdb_core::num::{saturating_u64, usize_from};
use nashdb_core::routing::MaxOfMins;
use nashdb_sim::fault::FaultSchedule;
use nashdb_sim::SimDuration;
use nashdb_workload::Workload;

/// Scan window size used throughout the experiments (paper §10: 50).
pub const WINDOW: usize = 50;

/// Replicas the hottest fragment should earn at price 1 under the autotuned
/// node rent.
pub const TARGET_REPLICAS: f64 = 16.0;

/// One experiment environment: everything needed to run any system on one
/// workload.
#[derive(Debug, Clone, Copy)]
pub struct ExpEnv {
    /// Driver/cluster parameters.
    pub run: RunConfig,
    /// NashDB configuration (economics autotuned).
    pub nash: NashDbConfig,
    /// Node disk capacity in tuples (shared by all systems).
    pub disk: u64,
}

impl ExpEnv {
    /// Builds the environment for a workload: disk sized to `disk_frac` of
    /// the database, rent autotuned to its mean scan size.
    pub fn for_workload(w: &Workload, disk_frac: f64) -> ExpEnv {
        let total = w.db.total_tuples();
        let largest = w.db.fact_table().tuples;
        // Nodes must be able to host a balanced share but not the world.
        let disk = saturating_u64(total as f64 * disk_frac)
            .max(largest / 16)
            .max(1_000);

        // Measure the workload's peak per-tuple value V̄ by replaying it
        // through the estimator (sampled), then set the rent so the hottest
        // fragment's Ideal(f) = |W| · V̄ · Disk / Cost lands on the target.
        // (A mean-based estimate badly underestimates V̄: per-tuple scan
        // weight is price/size and E[1/size] is dominated by small scans.)
        let mut estimators: Vec<nashdb_core::value::TupleValueEstimator> =
            w.db.tables
                .iter()
                .map(|_| nashdb_core::value::TupleValueEstimator::new(WINDOW))
                .collect();
        let mut pool: Vec<(u64, f64)> = Vec::new(); // (tuples, value) samples
        let sample_every = (w.queries.len() / 40).max(1);
        let steady = w.queries.len() / 2;
        // Matches the distributor's block-floored income (see
        // NashDbDistributor::observe) so calibration sees the same V.
        let replay_block = saturating_u64(200_000.0 * 10.0);
        for (i, tq) in w.queries.iter().enumerate() {
            let total: u64 = tq.query.scans.iter().map(|s| s.size()).sum();
            for s in &tq.query.scans {
                let t = usize_from(s.table.get());
                let end = s.end.min(w.db.tables[t].tuples);
                if s.start < end && total > 0 {
                    let size = end - s.start;
                    let effective = size.max(replay_block.min(w.db.tables[t].tuples));
                    let price = tq.query.price * s.size() as f64 / total as f64
                        * (size as f64 / effective as f64);
                    estimators[t].observe(nashdb_core::value::PricedScan::new(s.start, end, price));
                }
            }
            if i >= steady && (i % sample_every == 0 || i + 1 == w.queries.len()) {
                for (t, est) in estimators.iter().enumerate() {
                    for c in est.chunks(w.db.tables[t].tuples) {
                        if c.value > 0.0 {
                            pool.push((c.len(), c.value));
                        }
                    }
                }
            }
        }
        // Calibrate against the tuple-weighted 99th-percentile value rather
        // than the peak: per-tuple value is the scan's price/size, so tiny
        // scans create value spikes orders of magnitude above the bulk, and
        // pinning the *peak* to the target would starve the bulk-read
        // regions at one replica.
        pool.sort_by(|a, b| a.1.total_cmp(&b.1));
        let total_tuples: u64 = pool.iter().map(|&(n, _)| n).sum();
        let mut cum = 0u64;
        let mut v_ref = pool.last().map_or(0.0, |&(_, v)| v);
        for &(n, v) in &pool {
            cum = cum.saturating_add(n);
            if cum as f64 >= 0.99 * total_tuples as f64 {
                v_ref = v;
                break;
            }
        }
        let cost = (WINDOW as f64 * v_ref * disk as f64 / TARGET_REPLICAS).max(1e-6);

        let cluster = ClusterConfig {
            throughput_tps: 200_000.0, // ≈200 MB/s sequential scan
            node_cost_per_hour: cost,
            metrics_bucket: SimDuration::from_secs(60),
            network: None,
        };
        // Read-block cap: a single fragment read should take ~10 s of disk
        // time, as with block-sized fragments in the paper (fragments are
        // both the replica unit and the read unit).
        let block = saturating_u64(cluster.throughput_tps * 10.0);
        ExpEnv {
            run: RunConfig {
                cluster,
                reconfig_interval: SimDuration::from_secs(3600),
                phi: SimDuration::from_millis(350),
                warmup_queries: 0,
            },
            nash: NashDbConfig {
                window: WINDOW,
                spec: NodeSpec::new(cost, disk),
                max_frags_per_table: 48,
                greedy_rounds: 2,
                use_optimal_fragmentation: false,
                max_replicas: 256,
                max_fragment_tuples: block,
                refrag_sensitivity: 0.05,
            },
            disk,
        }
    }

    /// The read-block size (max fragment tuples) in force.
    pub fn block(&self) -> u64 {
        self.nash.max_fragment_tuples
    }

    /// Same environment with warmup (static batch workloads).
    pub fn warmed(mut self, queries: usize) -> Self {
        self.run.warmup_queries = queries;
        self
    }

    /// ϕ in tuples for the Max-of-mins router.
    pub fn phi_tuples(&self) -> u64 {
        self.run.phi_tuples()
    }
}

/// A system under evaluation in the sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum System {
    /// NashDB at a price multiplier (its tuning knob: query priority).
    NashDb {
        /// Factor applied to every query price.
        price_mult: f64,
    },
    /// SWORD-like hypergraph partitioning with `parts` partitions.
    Hypergraph {
        /// Partition (= primary node) count.
        parts: usize,
    },
    /// E-Store-like threshold distribution over `nodes` nodes.
    Threshold {
        /// Fixed cluster size.
        nodes: usize,
    },
}

impl System {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::NashDb { .. } => "NashDB",
            System::Hypergraph { .. } => "Hypergraph",
            System::Threshold { .. } => "Threshold",
        }
    }

    /// The tuning-knob value, for table rows.
    pub fn param(&self) -> f64 {
        match *self {
            System::NashDb { price_mult } => price_mult,
            System::Hypergraph { parts } => parts as f64,
            System::Threshold { nodes } => nodes as f64,
        }
    }
}

/// A router choice for the sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Router {
    /// NashDB's Max-of-mins (Eq. 11).
    MaxOfMins,
    /// Shortest-queue load balancing.
    ShortestQueue,
    /// Greedy set-cover span minimization.
    GreedySetCover,
}

impl Router {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Router::MaxOfMins => "Max of mins",
            Router::ShortestQueue => "Shortest queue",
            Router::GreedySetCover => "Greedy SC",
        }
    }
}

/// Scales every query price by `mult` (NashDB's tuning knob).
pub fn with_price_mult(w: &Workload, mult: f64) -> Workload {
    let mut w = w.clone();
    for q in &mut w.queries {
        q.query.price *= mult;
    }
    w
}

/// Runs `system` × `router` on `workload` under `env`, returning metrics.
pub fn run_system(workload: &Workload, system: System, router: Router, env: &ExpEnv) -> Metrics {
    run_system_with_faults(workload, system, router, env, &FaultSchedule::none())
}

/// [`run_system`] with a seeded fault schedule injected into the cluster
/// sim — every system faces the identical crashes and stragglers, so the
/// availability comparison is apples to apples.
pub fn run_system_with_faults(
    workload: &Workload,
    system: System,
    router: Router,
    env: &ExpEnv,
    faults: &FaultSchedule,
) -> Metrics {
    let routed: Box<dyn ScanRouter> = match router {
        Router::MaxOfMins => Box::new(MaxOfMins::new(env.phi_tuples())),
        Router::ShortestQueue => Box::new(ShortestQueue),
        Router::GreedySetCover => Box::new(GreedySetCover),
    };
    match system {
        System::NashDb { price_mult } => {
            let w = if (price_mult - 1.0).abs() < 1e-12 {
                workload.clone()
            } else {
                with_price_mult(workload, price_mult)
            };
            let mut dist = NashDbDistributor::new(&w.db, env.nash);
            run_workload_with_faults(&w, &mut dist, routed.as_ref(), &env.run, faults)
        }
        System::Hypergraph { parts } => {
            let mut dist = HypergraphDistributor::new(&workload.db, parts, env.disk, WINDOW)
                .with_block(env.block());
            run_workload_with_faults(workload, &mut dist, routed.as_ref(), &env.run, faults)
        }
        System::Threshold { nodes } => {
            let mut dist = ThresholdDistributor::new(&workload.db, nodes, env.disk, WINDOW)
                .with_block(env.block());
            run_workload_with_faults(workload, &mut dist, routed.as_ref(), &env.run, faults)
        }
    }
}

/// Warms a distributor with `n` leading queries of the workload — used when
/// a system is evaluated on a static batch (driver-side warmup only applies
/// within [`nashdb::run_workload`], which handles it via `RunConfig`).
pub fn observe_all(dist: &mut dyn Distributor, w: &Workload) {
    for tq in &w.queries {
        dist.observe(&tq.query);
    }
}

/// Minimum node count that can hold one copy of the database on
/// `disk`-tuple nodes (Threshold's feasibility floor).
pub fn min_nodes(w: &Workload, disk: u64) -> usize {
    usize_from(w.db.total_tuples().div_ceil(disk)) + 1
}
