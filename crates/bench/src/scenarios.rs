//! The scenario-matrix runner behind `nashdb-bench scenarios`.
//!
//! Sweeps a declarative matrix — workload generator × drift level ×
//! node-class mix × replication budget — running every cell against NashDB
//! and both baseline allocators (Threshold, Hypergraph) on the identical
//! simulated substrate, and reduces each run to its cost-vs-latency point.
//! Frontier membership per cell is computed with the same
//! [`pareto_front`] the Fig. 7 experiment uses. The result is a
//! [`ScenarioArtifact`]: versioned, schema-validated, and (after the
//! default timing scrub) byte-identical across same-seed runs, which is
//! what lets CI diff it against the committed `SCENARIO_BASELINE.json`.

use nashdb_cluster::NetConfig;
use nashdb_core::replication::hetero::MixPreset;
use nashdb_obs::{CellSnapshot, ScenarioArtifact, SystemPoint, SCENARIO_VERSION};
use nashdb_sim::fault::{FaultSchedule, FaultScheduleConfig};
use nashdb_sim::SimDuration;
use nashdb_workload::matrix::{
    DriftLevel, FaultLevel, GeneratorKind, MatrixError, MatrixWorkloadSpec,
};
use nashdb_workload::Workload;

use crate::env::{min_nodes, run_system_with_faults, ExpEnv, Router, System};
use crate::experiments::pareto::{pareto_front, Point};

/// Stable system names, in the order each cell reports them.
pub const SYSTEM_NAMES: [&str; 3] = ["nashdb", "hypergraph", "threshold"];

/// The replication-budget axis of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetLevel {
    /// Replication throttled: NashDB capped at 2 replicas per fragment, the
    /// baselines held at their feasibility-floor node count.
    Tight,
    /// Replication unthrottled: NashDB at its default cap, the baselines at
    /// twice their floor.
    Ample,
}

impl BudgetLevel {
    /// Both levels, in sweep order.
    pub const ALL: [BudgetLevel; 2] = [BudgetLevel::Tight, BudgetLevel::Ample];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BudgetLevel::Tight => "tight",
            BudgetLevel::Ample => "ample",
        }
    }
}

/// The node-class mixes the default matrix sweeps (a subset of
/// [`MixPreset::ALL`] to keep the cell count × runtime in budget).
pub const MATRIX_MIXES: [MixPreset; 2] = [MixPreset::Uniform, MixPreset::BudgetHdd];

/// One cell of the scenario matrix, before it is run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioCell {
    /// Workload generator family.
    pub generator: GeneratorKind,
    /// Drift level.
    pub drift: DriftLevel,
    /// Node-class mix preset.
    pub mix: MixPreset,
    /// Replication budget.
    pub budget: BudgetLevel,
    /// Fault-schedule level ([`FaultLevel::None`] for the legacy
    /// failure-free matrix; fault cells also turn on the shared-link network
    /// model so crashes interact with transfer traffic).
    pub faults: FaultLevel,
}

/// Runner parameters. The defaults are what CI runs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// RNG seed shared by every cell's workload generator.
    pub seed: u64,
    /// Database size per cell, GB.
    pub size_gb: u64,
    /// Approximate queries per cell.
    pub queries: usize,
    /// Sweep only a 5-cell corner of the matrix, one cell with a crash
    /// schedule (debug-mode tests; CI runs the full matrix in release).
    pub quick: bool,
    /// Keep host wall-clock timings instead of scrubbing them (scrubbing is
    /// the default so same-seed artifacts are byte-identical).
    pub keep_timings: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            // Must keep disk (total/8) above the fixed 2M-tuple read block,
            // or the fixed-cluster baselines have blocks no node can host.
            size_gb: 24,
            queries: 60,
            quick: false,
            keep_timings: false,
        }
    }
}

/// Why a scenario sweep failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A matrix cell's workload failed to build.
    Workload {
        /// The cell's `generator/drift` prefix.
        cell: String,
        /// The underlying build error.
        source: MatrixError,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Workload { cell, source } => {
                write!(f, "cell {cell}: {source}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Workload { source, .. } => Some(source),
        }
    }
}

/// Enumerates the matrix the config asks for, in sweep order.
pub fn matrix_cells(cfg: &ScenarioConfig) -> Vec<ScenarioCell> {
    let (generators, drifts, mixes): (&[GeneratorKind], &[DriftLevel], &[MixPreset]) = if cfg.quick
    {
        (
            &[GeneratorKind::Bernoulli, GeneratorKind::Random],
            &[DriftLevel::Steady],
            &[MixPreset::Uniform],
        )
    } else {
        (&GeneratorKind::ALL, &DriftLevel::ALL, &MATRIX_MIXES)
    };
    let mut cells = Vec::new();
    for &generator in generators {
        for &drift in drifts {
            for &mix in mixes {
                for budget in BudgetLevel::ALL {
                    cells.push(ScenarioCell {
                        generator,
                        drift,
                        mix,
                        budget,
                        faults: FaultLevel::None,
                    });
                }
            }
        }
    }
    // The failure axis: a one-dimensional extension (steady drift, uniform
    // mix, ample budget) rather than a full cross product, which keeps the
    // cell count in budget while still asking the motivating question — does
    // value-proportional replication degrade more gracefully when replicas
    // vanish? New cells are warn-only under the baseline gate until the
    // baseline is regenerated to include them.
    let fault_levels: &[FaultLevel] = if cfg.quick {
        &[FaultLevel::Crash]
    } else {
        &[FaultLevel::Crash, FaultLevel::Chaos]
    };
    let fault_generators: &[GeneratorKind] = if cfg.quick {
        &[GeneratorKind::Bernoulli]
    } else {
        &GeneratorKind::ALL
    };
    for &generator in fault_generators {
        for &faults in fault_levels {
            cells.push(ScenarioCell {
                generator,
                drift: DriftLevel::Steady,
                mix: MixPreset::Uniform,
                budget: BudgetLevel::Ample,
                faults,
            });
        }
    }
    cells
}

/// The seeded fault schedule for a cell, sized to the run: faults land in
/// the middle 80% of the workload's span (arrivals plus an estimated drain
/// tail for batch workloads, which arrive all at once).
fn cell_faults(level: FaultLevel, w: &Workload, env: &ExpEnv, seed: u64) -> FaultSchedule {
    if level == FaultLevel::None {
        return FaultSchedule::none();
    }
    let last_arrival = w.queries.last().map_or(SimDuration::ZERO, |q| {
        q.at.saturating_since(nashdb_sim::SimTime::ZERO)
    });
    let drain_est =
        SimDuration::from_secs_f64(w.total_read() as f64 / (env.run.cluster.throughput_tps * 4.0));
    let horizon = (last_arrival + drain_est).max(SimDuration::from_secs(60));
    let tenth = SimDuration::from_secs_f64(horizon.as_secs_f64() / 10.0);
    let base = FaultScheduleConfig {
        seed,
        horizon,
        nodes: 4,
        down_for: tenth,
        slowdown: 4.0,
        straggle_for: tenth,
        ..FaultScheduleConfig::default()
    };
    match level {
        FaultLevel::None => FaultSchedule::none(),
        FaultLevel::Crash => FaultSchedule::generate(&FaultScheduleConfig {
            crashes: 0,
            restarts: 1,
            stragglers: 0,
            ..base
        }),
        FaultLevel::Chaos => FaultSchedule::generate(&FaultScheduleConfig {
            crashes: 1,
            restarts: 1,
            stragglers: 2,
            ..base
        }),
    }
}

/// Runs one cell: builds the workload, applies the mix and budget to the
/// shared environment, runs all three systems, and marks the frontier.
fn run_cell(cell: &ScenarioCell, cfg: &ScenarioConfig) -> Result<CellSnapshot, ScenarioError> {
    let started = std::time::Instant::now();
    let spec = MatrixWorkloadSpec {
        generator: cell.generator,
        drift: cell.drift,
        size_gb: cfg.size_gb,
        queries: cfg.queries,
        seed: cfg.seed,
    };
    let w = spec.build().map_err(|source| ScenarioError::Workload {
        cell: format!("{}/{}", cell.generator.name(), cell.drift.name()),
        source,
    })?;

    let mut env = ExpEnv::for_workload(&w, 1.0 / 8.0);
    if cell.generator.is_batch() {
        env = env.warmed(w.queries.len() / 2);
    }

    // The mix rescales the hardware market: the homogeneous cluster sim
    // runs at the preset's marginal (cheapest unbounded) class.
    let effective = cell.mix.effective_spec(&env.nash.spec);
    env.nash.spec = effective;
    env.disk = effective.disk;
    env.run.cluster.node_cost_per_hour = effective.cost;

    // Keep the shared read block well under the node disk: the fixed-cluster
    // baselines range-partition at block granularity, and blocks comparable
    // to a whole disk make near-floor packings infeasible.
    env.nash.max_fragment_tuples = env.nash.max_fragment_tuples.min((env.disk / 8).max(1));

    // Fault cells run with the network model on (NIC at 5×, core at 10× the
    // disk rate: mild contention) so crashes interact with transfer traffic;
    // failure-free cells keep the legacy free network and are byte-identical
    // to the committed baseline.
    let faults = cell_faults(cell.faults, &w, &env, cfg.seed);
    if cell.faults != FaultLevel::None {
        env.run.cluster.network = Some(NetConfig {
            nic_tps: 1_000_000,
            core_tps: 2_000_000,
        });
    }

    // Threshold's range-partitioned base layer needs slack above the raw
    // feasibility floor when block sizes are skewed, so "tight" still grants
    // 25% headroom; "ample" doubles the floor.
    let floor = min_nodes(&w, env.disk);
    let baseline_nodes = match cell.budget {
        BudgetLevel::Tight => {
            env.nash.max_replicas = 2;
            (floor * 5).div_ceil(4)
        }
        BudgetLevel::Ample => floor * 2,
    };

    let runs = [
        (
            SYSTEM_NAMES[0],
            run_system_with_faults(
                &w,
                System::NashDb { price_mult: 1.0 },
                Router::MaxOfMins,
                &env,
                &faults,
            ),
        ),
        (
            SYSTEM_NAMES[1],
            run_system_with_faults(
                &w,
                System::Hypergraph {
                    parts: baseline_nodes,
                },
                Router::MaxOfMins,
                &env,
                &faults,
            ),
        ),
        (
            SYSTEM_NAMES[2],
            run_system_with_faults(
                &w,
                System::Threshold {
                    nodes: baseline_nodes,
                },
                Router::MaxOfMins,
                &env,
                &faults,
            ),
        ),
    ];

    let points: Vec<Point> = runs
        .iter()
        .map(|(name, m)| {
            let cl = m.cost_latency();
            Point {
                system: name,
                param: 0.0,
                latency: cl.mean_latency_secs,
                cost: cl.cost,
            }
        })
        .collect();
    let front = pareto_front(&points);
    let dominates = |p: &Point, q: &Point| {
        (p.cost <= q.cost && p.latency < q.latency) || (p.cost < q.cost && p.latency <= q.latency)
    };

    let systems = runs
        .iter()
        .zip(points.iter().zip(&front))
        .map(|((name, m), (p, &on_front))| {
            let cl = m.cost_latency();
            SystemPoint {
                system: (*name).to_owned(),
                cost: cl.cost,
                mean_latency_secs: cl.mean_latency_secs,
                p99_latency_secs: cl.p99_latency_secs,
                on_front,
                dominates: points.iter().filter(|q| dominates(p, q)).count() as u64,
            }
        })
        .collect();

    Ok(CellSnapshot {
        workload: cell.generator.name().to_owned(),
        drift: cell.drift.name().to_owned(),
        mix: cell.mix.name().to_owned(),
        budget: cell.budget.name().to_owned(),
        faults: cell.faults.name().to_owned(),
        systems,
        wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    })
}

/// Runs the whole matrix and assembles the artifact.
///
/// Deterministic: two runs with the same config produce equal artifacts
/// (byte-identical once serialized), unless `keep_timings` is set.
///
/// # Errors
/// [`ScenarioError`] if any cell's workload fails to build.
pub fn run_scenarios(cfg: &ScenarioConfig) -> Result<ScenarioArtifact, ScenarioError> {
    let cells = matrix_cells(cfg);
    let mut snapshots = Vec::with_capacity(cells.len());
    for cell in &cells {
        snapshots.push(run_cell(cell, cfg)?);
    }
    let mut artifact = ScenarioArtifact {
        version: SCENARIO_VERSION,
        labels: vec![
            ("kind".to_owned(), "scenarios".to_owned()),
            ("seed".to_owned(), cfg.seed.to_string()),
            (
                "scale".to_owned(),
                if cfg.quick { "quick" } else { "full" }.to_owned(),
            ),
            ("size_gb".to_owned(), cfg.size_gb.to_string()),
            ("queries".to_owned(), cfg.queries.to_string()),
        ],
        cells: snapshots,
    };
    if !cfg.keep_timings {
        artifact.scrub_timings();
    }
    Ok(artifact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_covers_the_required_cells() {
        let cells = matrix_cells(&ScenarioConfig::default());
        assert!(cells.len() >= 24, "only {} cells", cells.len());
        // 5 generators × 2 drifts × 2 mixes × 2 budgets failure-free cells,
        // plus the failure axis: 5 generators × 2 fault levels.
        assert_eq!(cells.len(), 50);
        assert_eq!(
            cells
                .iter()
                .filter(|c| c.faults == FaultLevel::None)
                .count(),
            40,
            "legacy failure-free cells must be preserved exactly"
        );
        // Keys are unique.
        let mut keys: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{}/{}/{}/{}/{}",
                    c.generator.name(),
                    c.drift.name(),
                    c.mix.name(),
                    c.budget.name(),
                    c.faults.name()
                )
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len());
    }

    #[test]
    fn quick_matrix_is_a_small_corner() {
        let cells = matrix_cells(&ScenarioConfig {
            quick: true,
            ..ScenarioConfig::default()
        });
        assert_eq!(cells.len(), 5);
        assert_eq!(
            cells
                .iter()
                .filter(|c| c.faults != FaultLevel::None)
                .count(),
            1
        );
    }

    #[test]
    fn quick_run_produces_a_valid_artifact() {
        let cfg = ScenarioConfig {
            quick: true,
            queries: 40,
            ..ScenarioConfig::default()
        };
        let art = run_scenarios(&cfg).unwrap();
        assert_eq!(art.cells.len(), 5);
        for cell in &art.cells {
            assert_eq!(cell.systems.len(), SYSTEM_NAMES.len());
            assert_eq!(cell.wall_ns, 0, "timings must be scrubbed by default");
            assert!(cell.systems.iter().any(|s| s.on_front));
        }
        // The fault cell is keyed with the fifth segment and every system
        // still completed a comparable run in it.
        let fault_cell = art
            .cell("bernoulli/steady/uniform/ample/crash")
            .expect("fault cell missing");
        assert_eq!(fault_cell.systems.len(), SYSTEM_NAMES.len());
        // Round-trips through the schema validator byte-identically.
        let text = art.to_json_string();
        let parsed = ScenarioArtifact::from_json_str(&text).unwrap();
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn keep_timings_keeps_the_wall_clock() {
        let cfg = ScenarioConfig {
            quick: true,
            queries: 40,
            keep_timings: true,
            ..ScenarioConfig::default()
        };
        let art = run_scenarios(&cfg).unwrap();
        assert!(art.cells.iter().any(|c| c.wall_ns > 0));
    }
}
