//! Hot-path performance comparison for CI (`nashdb-bench perf`).
//!
//! Times the pipeline's three hot stages on a fixed-seed workload and emits
//! the results as an [`ObsSnapshot`] labelled `kind=perf`:
//!
//! * **Routing** — the incremental Max-of-mins router against the retained
//!   naive reference loop ([`nashdb_core::routing::reference`]), on the
//!   acceptance workload of 64 fragment requests over 16 nodes. The two are
//!   asserted to produce identical assignments before timing; the
//!   `perf.routing.speedup` gauge is the headline number.
//! * **Batch routing** — [`ScanRouter::route_batch`] against the per-scan
//!   incremental loop it amortizes, on the scaling workload (10k scans over
//!   512 nodes by default, zoned so node-disjoint shards form). Asserted to
//!   produce identical assignments *and* final queue waits before timing;
//!   `perf.routing.batch_speedup` is the gate and `perf.par.pool_reuse`
//!   (pool chunks executed per thread ever spawned) proves the router's
//!   workers are long-lived rather than per-call.
//! * **Scheme lookups** — the O(1) indexed [`ClusterScheme`] lookups
//!   (`range_of`, `node_used`) against the linear decision scans they
//!   replaced, again asserted equal first.
//! * **Fragmentation & packing** — wall-clock for the DP fragmenter (on a
//!   chunk count wide enough to exercise its parallel layers) and for BFFD
//!   packing, as plain stage timings.
//!
//! Timings are wall-clock, so perf snapshots are *not* byte-reproducible
//! (unlike `--stable` smoke snapshots); the schema and the `perf.` metric
//! prefix are what CI validates.

use std::time::Instant;

use nashdb_core::fragment::{optimal_fragmentation, FragmentRange, FragmentStats};
use nashdb_core::ids::{FragmentId, NodeId};
use nashdb_core::replication::{pack_bffd, ClusterScheme, ReplicationPolicy};
use nashdb_core::routing::{reference, FragmentRequest, MaxOfMins, QueueView, ScanRouter};
use nashdb_core::value::Chunk;
use nashdb_obs::{ObsSession, ObsSnapshot};
use nashdb_sim::SimRng;

/// Metric-name prefixes a `kind=perf` snapshot must populate.
pub const PERF_STAGES: &[&str] = &["perf."];

/// Perf-run parameters. The defaults are the ISSUE acceptance workload:
/// 64 fragment requests over 16 nodes.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// RNG seed for the synthetic problems.
    pub seed: u64,
    /// Fragment requests per scan (and fragments in the packing problem).
    pub fragments: usize,
    /// Cluster nodes.
    pub nodes: usize,
    /// Replicas per fragment (candidate list length).
    pub replicas: usize,
    /// Scans routed per timing pass; also scales the lookup pass.
    pub scans: usize,
    /// Scans per batch in the batch-routing scaling workload.
    pub batch_scans: usize,
    /// Cluster nodes in the batch-routing scaling workload. Scans are zoned
    /// over 16-node zones so the batch decomposes into node-disjoint shards.
    pub batch_nodes: usize,
    /// Value chunks in the DP fragmentation problem. The default is wide
    /// enough (`>` the fragmenter's parallel-layer threshold) that the DP's
    /// fan-out path is what gets timed.
    pub dp_chunks: usize,
    /// Whole-suite repetitions; the report keeps each gauge's minimum.
    /// The minimum is the stable estimator on contended runners — noise is
    /// one-sided (co-tenants only ever make a pass *slower*) — and the
    /// `compare` trajectory gate needs run-to-run stability well inside its
    /// 25% allowance, so CI runs with `--best-of 3`.
    pub best_of: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            seed: 42,
            fragments: 64,
            nodes: 16,
            replicas: 4,
            scans: 400,
            batch_scans: 10_000,
            batch_nodes: 512,
            dp_chunks: 1_200,
            best_of: 1,
        }
    }
}

/// One before/after stage measurement, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Naive/linear implementation.
    pub reference_ns: f64,
    /// Optimized implementation.
    pub optimized_ns: f64,
}

impl Comparison {
    /// reference / optimized; how many times faster the optimized path is.
    pub fn speedup(&self) -> f64 {
        if self.optimized_ns > 0.0 {
            self.reference_ns / self.optimized_ns
        } else {
            f64::INFINITY
        }
    }
}

/// All measurements of one perf run.
#[derive(Debug, Clone, Copy)]
pub struct PerfReport {
    /// Incremental vs naive Max-of-mins, per routed scan.
    pub routing: Comparison,
    /// `route_batch` vs the per-scan incremental loop, per whole batch.
    pub batch: Comparison,
    /// Persistent-pool chunks executed per thread ever spawned (cumulative
    /// over the process); >> 1 proves workers are reused, not per-call.
    pub pool_reuse: f64,
    /// Indexed vs linear-scan `ClusterScheme` lookups, per lookup sweep.
    pub lookup: Comparison,
    /// DP fragmentation, per run.
    pub fragment_dp_ns: f64,
    /// BFFD packing, per run.
    pub packing_bffd_ns: f64,
}

/// Best-of-3 wall-clock timing of batched runs of `f`, reported as
/// nanoseconds per iteration. `f`'s result is fed to [`std::hint::black_box`]
/// so the measured work cannot be optimized away.
///
/// `iters` is only the *starting* batch size: the batch grows until one
/// timed pass lasts at least [`MIN_PASS_NS`], because per-iteration figures
/// taken from a 25 µs pass are timer granularity and scheduler noise — and
/// `nashdb-bench compare` diffs these numbers across CI runs, so they must
/// be stable to well under the gate's 25% allowance.
const MIN_PASS_NS: u128 = 2_000_000;

fn time_per_iter<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    std::hint::black_box(f()); // warmup
    let mut iters = iters;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= MIN_PASS_NS {
            let mut best = elapsed as f64 / iters as f64;
            for _ in 0..2 {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
            }
            return best;
        }
        // Grow toward the target in one step (capped so a mis-measured
        // first pass cannot explode the batch).
        let factor = (MIN_PASS_NS / elapsed.max(1)).clamp(2, 1024) as usize;
        iters = iters.saturating_mul(factor);
    }
}

/// The fixed-seed routing problem: `fragments` requests with `replicas`
/// candidates each over `nodes` nodes, plus preloaded queue waits.
fn routing_problem(cfg: &PerfConfig) -> (Vec<FragmentRequest>, Vec<u64>) {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let reqs = (0..cfg.fragments)
        .map(|i| {
            let mut candidates: Vec<NodeId> = Vec::with_capacity(cfg.replicas);
            while candidates.len() < cfg.replicas.min(cfg.nodes) {
                let n = NodeId(rng.uniform_u64(0, cfg.nodes as u64));
                if !candidates.contains(&n) {
                    candidates.push(n);
                }
            }
            FragmentRequest {
                fragment: FragmentId(i as u64),
                size: rng.uniform_u64(100_000, 2_000_000),
                candidates,
            }
        })
        .collect();
    let waits = (0..cfg.nodes)
        .map(|_| rng.uniform_u64(0, 5_000_000))
        .collect();
    (reqs, waits)
}

/// Fragments hosted per node in the batch-routing problem's synthetic
/// scheme; the fragment universe is `FRAGS_PER_NODE * batch_nodes`.
const FRAGS_PER_NODE: usize = 8;
/// Fragment requests per scan in the batch-routing problem. Kept small —
/// the regime the paper's footnote 3 calls out — so the comparison stresses
/// per-arrival setup (what batching amortizes) rather than placement work
/// (identical on both sides).
const REQS_PER_SCAN: usize = 2;

/// The fixed-seed batch-routing problem: `batch_scans` scans of
/// [`REQS_PER_SCAN`] requests each over `batch_nodes` nodes, plus preloaded
/// queue waits. The fragment universe is a synthetic scheme —
/// [`FRAGS_PER_NODE`] fragments per node, each with a fixed size and a fixed
/// 3-replica candidate list inside a 16-node zone — and scan `i` reads from
/// zone `i mod zones`, so the batch decomposes into node-disjoint shards:
/// the shape coincident arrivals take when replica placement is
/// locality-aware.
fn batch_problem(cfg: &PerfConfig) -> (Vec<Vec<FragmentRequest>>, Vec<u64>, usize) {
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0xBA7C);
    let zone = 16.min(cfg.batch_nodes.max(1));
    let zones = (cfg.batch_nodes / zone).max(1);
    let replicas = 3.min(zone);
    // The scheme: per-fragment size and replica set, fixed across scans.
    let universe = FRAGS_PER_NODE * zones * zone;
    let frags_per_zone = FRAGS_PER_NODE * zone;
    let sizes: Vec<u64> = (0..universe)
        .map(|_| rng.uniform_u64(100_000, 2_000_000))
        .collect();
    let candidates: Vec<Vec<NodeId>> = (0..universe)
        .map(|f| {
            let base = ((f / frags_per_zone) * zone) as u64;
            let start = rng.uniform_u64(0, zone as u64);
            (0..replicas as u64)
                .map(|j| NodeId(base + (start + j) % zone as u64))
                .collect()
        })
        .collect();
    let scans = (0..cfg.batch_scans)
        .map(|i| {
            let zone_first = (i % zones) * frags_per_zone;
            let mut picked = Vec::with_capacity(REQS_PER_SCAN);
            while picked.len() < REQS_PER_SCAN.min(frags_per_zone) {
                let offset = usize::try_from(rng.uniform_u64(0, frags_per_zone as u64))
                    .unwrap_or(frags_per_zone - 1);
                let f = zone_first + offset;
                if !picked.contains(&f) {
                    picked.push(f);
                }
            }
            picked
                .into_iter()
                .map(|f| FragmentRequest {
                    fragment: FragmentId(f as u64),
                    size: sizes[f],
                    candidates: candidates[f].clone(),
                })
                .collect()
        })
        .collect();
    let waits = (0..cfg.batch_nodes)
        .map(|_| rng.uniform_u64(0, 5_000_000))
        .collect();
    (scans, waits, universe)
}

fn measure_batch_routing(cfg: &PerfConfig) -> Comparison {
    let phi = 70_000;
    let (scans, waits, universe) = batch_problem(cfg);
    let router = MaxOfMins::new(phi);

    // Correctness before speed: the batch path must reproduce per-scan
    // routing exactly — same assignments *and* same final queue waits — on
    // the very problem being timed.
    let mut q_batch = QueueView::from_waits(waits.clone());
    let batched = router.route_batch(scans.clone(), &mut q_batch);
    let mut q_seq = QueueView::from_waits(waits.clone());
    let sequential: Result<Vec<_>, _> = scans.iter().map(|s| router.route(s, &mut q_seq)).collect();
    // nashdb-lint: allow(panic-in-lib) -- perf gate: timing a diverging batch router would report a meaningless speedup, so the bench aborts loudly
    assert!(
        batched == sequential,
        "batch router diverged from per-scan routing on the perf problem"
    );
    let mut q_old = QueueView::from_waits(waits.clone());
    let per_scan_reference: Result<Vec<_>, _> = scans
        .iter()
        .map(|s| reference::incremental_per_scan(phi, s, &mut q_old))
        .collect();
    // nashdb-lint: allow(panic-in-lib) -- perf gate: the timed reference must be semantically identical to the batch path or the comparison is invalid
    assert!(
        batched == per_scan_reference,
        "batch router diverged from the pre-batching per-scan reference"
    );
    // nashdb-lint: allow(panic-in-lib) -- perf gate: final queue state must agree before the timing comparison means anything
    assert!(
        (0..cfg.batch_nodes).all(|n| {
            let n = NodeId(n as u64);
            q_batch.wait(n) == q_seq.wait(n)
        }),
        "batch router left different final queue waits than per-scan routing"
    );

    // Both loops replay their *driver* path end to end, so each side is
    // charged exactly what the driver pays. The reference is the historical
    // per-arrival loop — `reference::incremental_per_scan`, the pre-batching
    // router with per-call scratch allocation — plus the per-query setup the
    // driver used to repeat: build the requests (the clone), zero a
    // scheme-wide fragment-size table, snapshot the cluster's queue waits
    // into a fresh view, route, and apply the enqueues. The optimized loop
    // is the batched driver path: requests, size table, and snapshot built
    // once per batch, then one `route_batch` call over persistent scratch.
    let reference_ns = time_per_iter(1, || {
        let mut live = waits.clone();
        let mut routed = 0usize;
        for scan in &scans {
            let scan = scan.clone();
            let mut sizes = vec![0u64; universe];
            for r in &scan {
                sizes[r.fragment.index()] = r.size;
            }
            let mut q = QueueView::from_waits(live.clone());
            let assignments = reference::incremental_per_scan(phi, &scan, &mut q);
            for a in assignments.iter().flatten() {
                live[a.node.index()] =
                    live[a.node.index()].saturating_add(sizes[a.fragment.index()]);
            }
            routed = routed.saturating_add(assignments.map_or(0, |a| a.len()));
        }
        (live, routed)
    });
    let optimized_ns = time_per_iter(1, || {
        let scans = scans.clone();
        let mut sizes = vec![0u64; universe];
        for r in scans.iter().flatten() {
            sizes[r.fragment.index()] = r.size;
        }
        let mut live = waits.clone();
        let mut q = QueueView::from_waits(std::mem::take(&mut live));
        let batched = router.route_batch(scans, &mut q);
        let mut routed = 0usize;
        let live: Vec<u64> = (0..cfg.batch_nodes)
            .map(|n| q.wait(NodeId(n as u64)))
            .collect();
        for a in batched.iter().flatten().flatten() {
            routed = routed.saturating_add(usize::from(sizes[a.fragment.index()] > 0));
        }
        (live, routed)
    });
    Comparison {
        reference_ns,
        optimized_ns,
    }
}

/// Fixed-seed fragment statistics for the packing/lookup problems.
fn fragment_problem(cfg: &PerfConfig) -> Vec<FragmentStats> {
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0xBEEF);
    let mut start = 0u64;
    (0..cfg.fragments)
        .map(|i| {
            let len = rng.uniform_u64(50_000, 500_000);
            let s = FragmentStats {
                id: FragmentId(i as u64),
                range: FragmentRange::new(start, start + len),
                value: rng.uniform_f64() * 4.0,
                error: 0.0,
            };
            start += len;
            s
        })
        .collect()
}

fn measure_routing(cfg: &PerfConfig) -> Comparison {
    let phi = 70_000;
    let (reqs, waits) = routing_problem(cfg);
    let router = MaxOfMins::new(phi);

    // Correctness before speed: the incremental router must agree with the
    // reference on the very problem being timed.
    let mut q_fast = QueueView::from_waits(waits.clone());
    let mut q_ref = QueueView::from_waits(waits.clone());
    let fast = router.route(&reqs, &mut q_fast);
    let naive = reference::max_of_mins(phi, &reqs, &mut q_ref);
    assert!(
        fast == naive,
        "incremental router diverged from the reference on the perf problem"
    );

    let reference_ns = time_per_iter(cfg.scans, || {
        let mut q = QueueView::from_waits(waits.clone());
        reference::max_of_mins(phi, &reqs, &mut q)
    });
    let optimized_ns = time_per_iter(cfg.scans, || {
        let mut q = QueueView::from_waits(waits.clone());
        router.route(&reqs, &mut q)
    });
    Comparison {
        reference_ns,
        optimized_ns,
    }
}

fn measure_lookup(cfg: &PerfConfig, scheme: &ClusterScheme) -> Comparison {
    let probes: Vec<FragmentId> = (0..cfg.fragments).map(|i| FragmentId(i as u64)).collect();
    // One sweep: every fragment's range plus every node's stored total,
    // folded into a checksum so nothing is optimized away.
    let indexed = || {
        let mut acc = 0u64;
        for &f in &probes {
            acc = acc.wrapping_add(scheme.range_of(f).map_or(0, |r| r.size()));
        }
        for n in 0..scheme.num_nodes() {
            acc = acc.wrapping_add(scheme.node_used(NodeId(n as u64)));
        }
        acc
    };
    // The pre-index formulation: linear scans of `decisions`.
    let linear = || {
        let mut acc = 0u64;
        for &f in &probes {
            let r = scheme
                .decisions
                .iter()
                .find(|d| d.id == f)
                .map_or(0, |d| d.range.size());
            acc = acc.wrapping_add(r);
        }
        for node in &scheme.nodes {
            let used: u64 = node
                .iter()
                .map(|f| {
                    scheme
                        .decisions
                        .iter()
                        .find(|d| d.id == *f)
                        .map_or(0, |d| d.range.size())
                })
                .sum();
            acc = acc.wrapping_add(used);
        }
        acc
    };
    assert!(
        indexed() == linear(),
        "indexed scheme lookups diverged from the linear reference"
    );
    let sweeps = cfg.scans.max(1);
    Comparison {
        reference_ns: time_per_iter(sweeps, linear),
        optimized_ns: time_per_iter(sweeps, indexed),
    }
}

fn fragmentation_chunks(cfg: &PerfConfig) -> Vec<Chunk> {
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0xF0F0);
    let mut pos = 0u64;
    (0..cfg.dp_chunks)
        .map(|_| {
            let len = rng.uniform_u64(1_000, 20_000);
            let c = Chunk {
                start: pos,
                end: pos + len,
                value: rng.uniform_f64() * 8.0,
            };
            pos += len;
            c
        })
        .collect()
}

/// Runs every measurement. Call *outside* an [`ObsSession`] so the obs
/// hooks inside the measured code are inert no-ops. With `cfg.best_of > 1`
/// the whole suite repeats and each gauge keeps its minimum.
pub fn run_perf(cfg: &PerfConfig) -> PerfReport {
    let mut best = run_perf_once(cfg);
    for _ in 1..cfg.best_of {
        let next = run_perf_once(cfg);
        best = PerfReport {
            routing: min_comparison(best.routing, next.routing),
            batch: min_comparison(best.batch, next.batch),
            // Cumulative over the process, so the latest reading is the
            // most informative one.
            pool_reuse: next.pool_reuse,
            lookup: min_comparison(best.lookup, next.lookup),
            fragment_dp_ns: best.fragment_dp_ns.min(next.fragment_dp_ns),
            packing_bffd_ns: best.packing_bffd_ns.min(next.packing_bffd_ns),
        };
    }
    best
}

fn min_comparison(a: Comparison, b: Comparison) -> Comparison {
    Comparison {
        reference_ns: a.reference_ns.min(b.reference_ns),
        optimized_ns: a.optimized_ns.min(b.optimized_ns),
    }
}

fn run_perf_once(cfg: &PerfConfig) -> PerfReport {
    let routing = measure_routing(cfg);
    let batch = measure_batch_routing(cfg);
    let pool = nashdb_par::pool_stats();
    let pool_reuse = pool.chunks_executed as f64 / (pool.threads_spawned.max(1)) as f64;

    let stats = fragment_problem(cfg);
    let policy =
        ReplicationPolicy::new(50, nashdb_core::economics::NodeSpec::new(100.0, 2_000_000))
            .with_max_replicas(cfg.nodes as u64);
    let scheme = ClusterScheme::build(&stats, policy)
        .unwrap_or_else(|e| unreachable!("perf fragments are all smaller than the node disk: {e}"));
    let lookup = measure_lookup(cfg, &scheme);

    let chunks = fragmentation_chunks(cfg);
    let fragment_dp_ns = time_per_iter(3, || optimal_fragmentation(&chunks, 12));
    let packing_bffd_ns = time_per_iter(10, || pack_bffd(&scheme.decisions, policy.spec.disk));

    PerfReport {
        routing,
        batch,
        pool_reuse,
        lookup,
        fragment_dp_ns,
        packing_bffd_ns,
    }
}

/// Runs the measurements and captures them as a `kind=perf` snapshot.
pub fn perf_snapshot(cfg: &PerfConfig) -> ObsSnapshot {
    let report = run_perf(cfg);
    let mut session = ObsSession::start();
    session.label("kind", "perf");
    session.label("seed", &cfg.seed.to_string());
    session.label(
        "workload",
        &format!(
            "{}frag_{}node_{}rep",
            cfg.fragments, cfg.nodes, cfg.replicas
        ),
    );
    session.label(
        "batch_workload",
        &format!("{}scan_{}node", cfg.batch_scans, cfg.batch_nodes),
    );
    nashdb_obs::gauge_set("perf.routing.reference_ns", report.routing.reference_ns);
    nashdb_obs::gauge_set("perf.routing.incremental_ns", report.routing.optimized_ns);
    nashdb_obs::gauge_set("perf.routing.speedup", report.routing.speedup());
    nashdb_obs::gauge_set("perf.routing.batch_reference_ns", report.batch.reference_ns);
    nashdb_obs::gauge_set("perf.routing.batch_ns", report.batch.optimized_ns);
    nashdb_obs::gauge_set("perf.routing.batch_speedup", report.batch.speedup());
    nashdb_obs::gauge_set("perf.par.pool_reuse", report.pool_reuse);
    nashdb_obs::gauge_set("perf.lookup.linear_ns", report.lookup.reference_ns);
    nashdb_obs::gauge_set("perf.lookup.indexed_ns", report.lookup.optimized_ns);
    nashdb_obs::gauge_set("perf.lookup.speedup", report.lookup.speedup());
    nashdb_obs::gauge_set("perf.fragment.dp_ns", report.fragment_dp_ns);
    nashdb_obs::gauge_set("perf.packing.bffd_ns", report.packing_bffd_ns);
    nashdb_obs::counter_add("perf.routing.scans", cfg.scans as u64);
    nashdb_obs::counter_add("perf.routing.requests", (cfg.fragments * cfg.scans) as u64);
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PerfConfig {
        PerfConfig {
            scans: 8,
            batch_scans: 128,
            batch_nodes: 64,
            dp_chunks: 48,
            ..PerfConfig::default()
        }
    }

    #[test]
    fn perf_snapshot_has_perf_metrics_and_label() {
        let snap = perf_snapshot(&quick());
        assert!(snap.missing_stages(PERF_STAGES).is_empty());
        assert!(snap.labels.iter().any(|(k, v)| k == "kind" && v == "perf"));
        for g in [
            "perf.routing.reference_ns",
            "perf.routing.incremental_ns",
            "perf.routing.speedup",
            "perf.routing.batch_reference_ns",
            "perf.routing.batch_ns",
            "perf.routing.batch_speedup",
            "perf.lookup.linear_ns",
            "perf.lookup.indexed_ns",
            "perf.lookup.speedup",
            "perf.fragment.dp_ns",
            "perf.packing.bffd_ns",
        ] {
            let v = snap.gauge(g).unwrap_or_else(|| panic!("gauge {g} missing"));
            assert!(v > 0.0, "gauge {g} not positive: {v}");
        }
        // Pool reuse is legitimately zero on single-core hosts, where
        // `route_batch` prefers the serial path and never wakes the pool.
        let reuse = snap
            .gauge("perf.par.pool_reuse")
            .expect("gauge perf.par.pool_reuse missing");
        assert!(reuse >= 0.0, "pool reuse negative: {reuse}");
        // The snapshot round-trips through its own schema.
        let json = snap.to_json_string();
        let parsed = ObsSnapshot::from_json_str(&json).unwrap();
        assert_eq!(parsed.to_json_string(), json);
    }

    #[test]
    fn routing_comparison_agrees_and_reports_sane_numbers() {
        let report = run_perf(&quick());
        // Agreement is asserted inside; here just sanity on the numbers.
        assert!(report.routing.reference_ns > 0.0);
        assert!(report.routing.optimized_ns > 0.0);
        assert!(report.routing.speedup() > 0.0);
        assert!(report.lookup.speedup() > 0.0);
    }
}
