//! Deterministic observability smoke run for CI.
//!
//! Runs a small fixed-seed Bernoulli workload through the full NashDB
//! pipeline under an [`ObsSession`] and returns the captured
//! [`ObsSnapshot`]. CI serializes the snapshot to `BENCH_PR.json`,
//! validates it round-trips through the schema, and fails the build if any
//! pipeline stage stopped emitting metrics (see [`REQUIRED_STAGES`]).

use nashdb::{run_workload, NashDbConfig, NashDbDistributor, RunConfig};
use nashdb_cluster::ClusterConfig;
use nashdb_core::economics::NodeSpec;
use nashdb_core::routing::MaxOfMins;
use nashdb_obs::{ObsSession, ObsSnapshot};
use nashdb_sim::SimDuration;
use nashdb_workload::bernoulli::{workload as bernoulli, BernoulliConfig};

/// Metric-name prefixes that every healthy smoke run must populate — one
/// per pipeline stage. [`ObsSnapshot::missing_stages`] reports the gaps.
pub const REQUIRED_STAGES: &[&str] = &[
    "value_tree.",
    "fragment.",
    "replication.",
    "packing.",
    "transition.",
    "routing.",
    "cluster.",
    "distributor.",
];

/// Smoke-run parameters. The defaults are what CI runs.
#[derive(Debug, Clone, Copy)]
pub struct SmokeConfig {
    /// Workload RNG seed.
    pub seed: u64,
    /// Query count.
    pub queries: usize,
    /// Database size in GB-equivalents (millions of tuples).
    pub size_gb: u64,
    /// Scrub wall-clock timings from the snapshot
    /// ([`ObsSnapshot::scrub_timings`]) so same-seed runs serialize
    /// byte-identically.
    pub stable: bool,
}

impl Default for SmokeConfig {
    fn default() -> Self {
        SmokeConfig {
            seed: 42,
            queries: 150,
            size_gb: 4,
            stable: false,
        }
    }
}

/// Runs the smoke workload and captures its observability snapshot.
///
/// Everything that feeds the snapshot's counters, gauges, and non-timing
/// histograms is simulation state, so two runs with the same config produce
/// identical values; with [`SmokeConfig::stable`] set the wall-clock
/// timings are scrubbed too and the whole snapshot is byte-reproducible.
pub fn run_smoke(cfg: &SmokeConfig) -> ObsSnapshot {
    let w = bernoulli(&BernoulliConfig {
        size_gb: cfg.size_gb,
        queries: cfg.queries,
        seed: cfg.seed,
        // Spread arrivals past several reconfiguration intervals, and price
        // queries high enough that replication buys real replicas.
        spacing: SimDuration::from_secs(10),
        price: 8.0,
    });
    let run = RunConfig {
        cluster: ClusterConfig {
            throughput_tps: 1_000_000.0,
            node_cost_per_hour: 100.0,
            metrics_bucket: SimDuration::from_secs(600),
            network: None,
        },
        // Short interval so the run exercises reconfiguration transitions,
        // not just the initial provision.
        reconfig_interval: SimDuration::from_secs(300),
        ..RunConfig::default()
    };
    let nash = NashDbConfig {
        spec: NodeSpec::new(100.0, 2_000_000),
        max_frags_per_table: 16,
        ..NashDbConfig::default()
    };

    let mut session = ObsSession::start();
    session.label("workload", "bernoulli");
    session.label("seed", &cfg.seed.to_string());
    session.label("queries", &cfg.queries.to_string());

    let mut dist = NashDbDistributor::new(&w.db, nash);
    let router = MaxOfMins::new(run.phi_tuples());
    let metrics = run_workload(&w, &mut dist, &router, &run);
    session.label("completed", &metrics.queries.len().to_string());

    let mut snap = session.finish();
    if cfg.stable {
        snap.scrub_timings();
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SmokeConfig {
        SmokeConfig {
            queries: 60,
            size_gb: 2,
            ..SmokeConfig::default()
        }
    }

    #[test]
    fn smoke_covers_every_stage() {
        let snap = run_smoke(&quick());
        let missing = snap.missing_stages(REQUIRED_STAGES);
        assert!(missing.is_empty(), "stages without metrics: {missing:?}");
        // The driver's span hierarchy is present and nested.
        assert!(snap.span("pipeline").is_some());
        assert!(snap.span("pipeline/query").is_some());
        assert!(snap.span("pipeline/provision/scheme/fragment").is_some());
        // The run is long enough to exercise periodic reconfiguration.
        assert!(snap.span("pipeline/reconfigure/scheme").is_some());
    }

    #[test]
    fn stable_runs_serialize_byte_identically() {
        let cfg = SmokeConfig {
            stable: true,
            ..quick()
        };
        let a = run_smoke(&cfg).to_json_string();
        let b = run_smoke(&cfg).to_json_string();
        assert_eq!(a, b);
        // And the stable form still round-trips through the parser.
        let parsed = ObsSnapshot::from_json_str(&a).unwrap();
        assert_eq!(parsed.to_json_string(), a);
    }
}
