//! # nashdb-bench
//!
//! The experiment harness: one module per figure/table of the paper's
//! evaluation (§10 + appendices), all runnable through the `figures` binary:
//!
//! ```text
//! cargo run -p nashdb-bench --release --bin figures -- all
//! cargo run -p nashdb-bench --release --bin figures -- fig6a fig8c
//! ```
//!
//! Shared infrastructure lives in [`mod@env`]: per-workload experiment
//! environments (cluster parameters, NashDB economics autotuned to the
//! workload's scan sizes) and the system/router sweep helpers every
//! comparison experiment uses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compare;
pub mod env;
pub mod experiments;
pub mod perf;
pub mod scenarios;
pub mod smoke;

/// All experiment ids, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "tab1", "fig6a", "fig6b", "fig6c", "fig9a", "fig7", "fig8a", "fig8b", "fig9b", "fig8c",
    "fig9c", "fig10", "fig11", "overhead", "market", "merge2", "p2c", "hetero",
];

/// An experiment id not listed in [`ALL_EXPERIMENTS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownExperiment {
    /// The unrecognized id.
    pub id: String,
}

impl std::fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown experiment id {:?} (known: {})",
            self.id,
            ALL_EXPERIMENTS.join(", ")
        )
    }
}

impl std::error::Error for UnknownExperiment {}

/// Runs one experiment by id, printing its table(s) to stdout.
///
/// # Errors
/// Returns [`UnknownExperiment`] for an id not in [`ALL_EXPERIMENTS`].
pub fn run_experiment(id: &str) -> Result<(), UnknownExperiment> {
    use experiments::*;
    match id {
        "tab1" => tab1::run(),
        "fig6a" => fig6::run_static(),
        "fig6b" => fig6::run_dynamic(),
        "fig6c" => priority::run_uniform_price(),
        "fig9a" => priority::run_template_price(),
        "fig7" => pareto::run(),
        "fig8a" => fixed::run_fixed_latency(),
        "fig8b" => fixed::run_fixed_cost(),
        "fig9b" => fixed::run_transfer(),
        "fig8c" => routing::run_latency(),
        "fig9c" => routing::run_span(),
        "fig10" => fixed::run_tail_latency(),
        "fig11" => throughput::run(),
        "overhead" => overhead::run(),
        "market" => ablations::run_market(),
        "merge2" => ablations::run_merge2(),
        "p2c" => ablations::run_p2c(),
        "hetero" => ablations::run_hetero(),
        other => {
            return Err(UnknownExperiment {
                id: other.to_owned(),
            })
        }
    }
    Ok(())
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}
