//! Stable JSON snapshot of a finished observability session.
//!
//! The snapshot is the CI artifact contract: `nashdb-bench smoke` emits it,
//! the `bench-smoke` job re-parses and validates it, and perf PRs diff two
//! of them. The format therefore versions itself (`version` field), sorts
//! every collection, and round-trips floats exactly.

use crate::histogram::{Histogram, NUM_BUCKETS};
use crate::json::{self, JsonError, JsonValue};
use crate::registry::MetricsRegistry;

/// Current snapshot schema version; bump on breaking layout changes.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Serialized form of one histogram: summary statistics plus the populated
/// log buckets as `(bucket_index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name (e.g. `cluster.query_latency_ns`).
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Estimated 50th percentile (0 if empty).
    pub p50: u64,
    /// Estimated 95th percentile (0 if empty).
    pub p95: u64,
    /// Estimated 99th percentile (0 if empty).
    pub p99: u64,
    /// Populated `(bucket_index, count)` pairs in ascending bucket order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    fn from_histogram(name: &str, h: &Histogram) -> Self {
        HistogramSnapshot {
            name: name.to_owned(),
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            p50: h.quantile(50.0).unwrap_or(0),
            p95: h.quantile(95.0).unwrap_or(0),
            p99: h.quantile(99.0).unwrap_or(0),
            buckets: h.nonzero_buckets().map(|(i, c)| (i as u64, c)).collect(),
        }
    }
}

/// Serialized form of one span path's accumulated wall-clock statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Slash-separated span path (e.g. `pipeline/reconfigure/scheme`).
    pub path: String,
    /// Times the span closed.
    pub count: u64,
    /// Total nanoseconds inside the span, children included.
    pub total_ns: u64,
    /// Nanoseconds spent in directly nested child spans.
    pub child_ns: u64,
}

/// A complete, self-describing dump of one observability session.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Schema version (`SNAPSHOT_VERSION` when produced by this crate).
    pub version: u64,
    /// Free-form run metadata (workload name, seed, …) in insertion order.
    pub labels: Vec<(String, String)>,
    /// Counters in sorted name order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in sorted name order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms in sorted name order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Spans in sorted path order.
    pub spans: Vec<SpanSnapshot>,
}

/// Why a snapshot failed to load or validate.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The input was not well-formed JSON.
    Json(JsonError),
    /// The JSON parsed but violated the snapshot schema.
    Schema {
        /// Dotted path to the offending element (e.g. `histograms[2].buckets`).
        at: String,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "snapshot is not valid JSON: {e}"),
            SnapshotError::Schema { at, message } => {
                write!(f, "snapshot schema violation at {at}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> Self {
        SnapshotError::Json(e)
    }
}

fn schema_err<T>(at: &str, message: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError::Schema {
        at: at.to_owned(),
        message: message.into(),
    })
}

impl ObsSnapshot {
    /// Captures a registry into snapshot form with the given labels.
    pub fn capture(registry: &MetricsRegistry, labels: Vec<(String, String)>) -> Self {
        ObsSnapshot {
            version: SNAPSHOT_VERSION,
            labels,
            counters: registry
                .counters()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            gauges: registry.gauges().map(|(k, v)| (k.to_owned(), v)).collect(),
            histograms: registry
                .histograms()
                .map(|(k, h)| HistogramSnapshot::from_histogram(k, h))
                .collect(),
            spans: registry
                .spans()
                .map(|(path, s)| SpanSnapshot {
                    path: path.to_owned(),
                    count: s.count,
                    total_ns: s.total_ns,
                    child_ns: s.child_ns,
                })
                .collect(),
        }
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a span snapshot by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Which of the given metric-name prefixes have **no** counter,
    /// histogram, or gauge starting with them. Empty means full coverage —
    /// the driver-level acceptance check for "every stage emitted a metric".
    pub fn missing_stages<'p>(&self, prefixes: &[&'p str]) -> Vec<&'p str> {
        prefixes
            .iter()
            .filter(|p| {
                !self.counters.iter().any(|(k, _)| k.starts_with(**p))
                    && !self.histograms.iter().any(|h| h.name.starts_with(**p))
                    && !self.gauges.iter().any(|(k, _)| k.starts_with(**p))
            })
            .copied()
            .collect()
    }

    /// Zeroes every wall-clock measurement while keeping structure and
    /// counts: span `total_ns`/`child_ns` become 0 and histograms whose
    /// name ends in `_ns` lose their samples (count is preserved, the
    /// buckets collapse into bucket 0). Sim-time metrics — everything
    /// under `cluster.`, whose nanoseconds come from the deterministic
    /// simulation clock rather than the host — are untouched.
    ///
    /// Two same-seed runs scrubbed this way are byte-identical, which is
    /// what lets CI diff artifacts across machines of different speeds.
    pub fn scrub_timings(&mut self) {
        for span in &mut self.spans {
            span.total_ns = 0;
            span.child_ns = 0;
        }
        for h in &mut self.histograms {
            if h.name.ends_with("_ns") && !h.name.starts_with("cluster.") {
                h.sum = 0;
                h.max = 0;
                h.p50 = 0;
                h.p95 = 0;
                h.p99 = 0;
                h.buckets = if h.count > 0 {
                    vec![(0, h.count)]
                } else {
                    Vec::new()
                };
            }
        }
    }

    /// Serializes to deterministic pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        let labels = JsonValue::Object(
            self.labels
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                .collect(),
        );
        let counters = JsonValue::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::UInt(*v)))
                .collect(),
        );
        let gauges = JsonValue::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Float(*v)))
                .collect(),
        );
        let histograms = JsonValue::Array(
            self.histograms
                .iter()
                .map(|h| {
                    JsonValue::Object(vec![
                        ("name".to_owned(), JsonValue::Str(h.name.clone())),
                        ("count".to_owned(), JsonValue::UInt(h.count)),
                        ("sum".to_owned(), JsonValue::UInt(h.sum)),
                        ("max".to_owned(), JsonValue::UInt(h.max)),
                        ("p50".to_owned(), JsonValue::UInt(h.p50)),
                        ("p95".to_owned(), JsonValue::UInt(h.p95)),
                        ("p99".to_owned(), JsonValue::UInt(h.p99)),
                        (
                            "buckets".to_owned(),
                            JsonValue::Array(
                                h.buckets
                                    .iter()
                                    .map(|&(i, c)| {
                                        JsonValue::Array(vec![
                                            JsonValue::UInt(i),
                                            JsonValue::UInt(c),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let spans = JsonValue::Array(
            self.spans
                .iter()
                .map(|s| {
                    JsonValue::Object(vec![
                        ("path".to_owned(), JsonValue::Str(s.path.clone())),
                        ("count".to_owned(), JsonValue::UInt(s.count)),
                        ("total_ns".to_owned(), JsonValue::UInt(s.total_ns)),
                        ("child_ns".to_owned(), JsonValue::UInt(s.child_ns)),
                    ])
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("version".to_owned(), JsonValue::UInt(self.version)),
            ("labels".to_owned(), labels),
            ("counters".to_owned(), counters),
            ("gauges".to_owned(), gauges),
            ("histograms".to_owned(), histograms),
            ("spans".to_owned(), spans),
        ])
        .to_pretty_string()
    }

    /// Parses and schema-validates a snapshot produced by
    /// [`ObsSnapshot::to_json_string`].
    pub fn from_json_str(input: &str) -> Result<Self, SnapshotError> {
        let root = json::parse(input)?;

        let Some(version) = root.get("version").and_then(JsonValue::as_u64) else {
            return schema_err("version", "missing or not an unsigned integer");
        };
        if version != SNAPSHOT_VERSION {
            return schema_err(
                "version",
                format!("unsupported version {version}, expected {SNAPSHOT_VERSION}"),
            );
        }

        let labels = match root.get("labels") {
            Some(JsonValue::Object(fields)) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, v) in fields {
                    match v.as_str() {
                        Some(s) => out.push((k.clone(), s.to_owned())),
                        None => {
                            return schema_err(&format!("labels.{k}"), "label must be a string")
                        }
                    }
                }
                out
            }
            _ => return schema_err("labels", "missing or not an object"),
        };

        let counters = match root.get("counters") {
            Some(JsonValue::Object(fields)) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, v) in fields {
                    match v.as_u64() {
                        Some(c) => out.push((k.clone(), c)),
                        None => {
                            return schema_err(
                                &format!("counters.{k}"),
                                "counter must be an unsigned integer",
                            )
                        }
                    }
                }
                out
            }
            _ => return schema_err("counters", "missing or not an object"),
        };

        let gauges = match root.get("gauges") {
            Some(JsonValue::Object(fields)) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, v) in fields {
                    match v.as_f64() {
                        Some(g) if g.is_finite() => out.push((k.clone(), g)),
                        _ => {
                            return schema_err(
                                &format!("gauges.{k}"),
                                "gauge must be a finite number",
                            )
                        }
                    }
                }
                out
            }
            _ => return schema_err("gauges", "missing or not an object"),
        };

        let histograms = match root.get("histograms").and_then(JsonValue::as_array) {
            Some(items) => {
                let mut out = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    out.push(parse_histogram(item, i)?);
                }
                out
            }
            None => return schema_err("histograms", "missing or not an array"),
        };

        let spans = match root.get("spans").and_then(JsonValue::as_array) {
            Some(items) => {
                let mut out = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    out.push(parse_span(item, i)?);
                }
                out
            }
            None => return schema_err("spans", "missing or not an array"),
        };

        Ok(ObsSnapshot {
            version,
            labels,
            counters,
            gauges,
            histograms,
            spans,
        })
    }
}

fn field_u64(item: &JsonValue, at: &str, key: &str) -> Result<u64, SnapshotError> {
    match item.get(key).and_then(JsonValue::as_u64) {
        Some(v) => Ok(v),
        None => schema_err(&format!("{at}.{key}"), "missing or not an unsigned integer"),
    }
}

fn parse_histogram(item: &JsonValue, index: usize) -> Result<HistogramSnapshot, SnapshotError> {
    let at = format!("histograms[{index}]");
    let name = match item.get("name").and_then(JsonValue::as_str) {
        Some(s) if !s.is_empty() => s.to_owned(),
        _ => return schema_err(&format!("{at}.name"), "missing or empty name"),
    };
    let count = field_u64(item, &at, "count")?;
    let sum = field_u64(item, &at, "sum")?;
    let max = field_u64(item, &at, "max")?;
    let p50 = field_u64(item, &at, "p50")?;
    let p95 = field_u64(item, &at, "p95")?;
    let p99 = field_u64(item, &at, "p99")?;

    let Some(raw_buckets) = item.get("buckets").and_then(JsonValue::as_array) else {
        return schema_err(&format!("{at}.buckets"), "missing or not an array");
    };
    let mut buckets = Vec::with_capacity(raw_buckets.len());
    let mut bucket_total = 0u64;
    let mut prev_index: Option<u64> = None;
    for (j, pair) in raw_buckets.iter().enumerate() {
        let bat = format!("{at}.buckets[{j}]");
        let pair = match pair.as_array() {
            Some(p) if p.len() == 2 => p,
            _ => return schema_err(&bat, "bucket must be a [index, count] pair"),
        };
        let (Some(bi), Some(bc)) = (pair[0].as_u64(), pair[1].as_u64()) else {
            return schema_err(&bat, "bucket index/count must be unsigned integers");
        };
        if bi >= NUM_BUCKETS as u64 {
            return schema_err(&bat, format!("bucket index {bi} out of range"));
        }
        if bc == 0 {
            return schema_err(&bat, "empty buckets must be omitted");
        }
        if let Some(prev) = prev_index {
            if bi <= prev {
                return schema_err(&bat, "bucket indices must be strictly ascending");
            }
        }
        prev_index = Some(bi);
        bucket_total = bucket_total.saturating_add(bc);
        buckets.push((bi, bc));
    }
    if bucket_total != count {
        return schema_err(
            &format!("{at}.buckets"),
            format!("bucket counts sum to {bucket_total} but count is {count}"),
        );
    }
    if max > 0 && count == 0 {
        return schema_err(&format!("{at}.max"), "max is nonzero but count is zero");
    }

    Ok(HistogramSnapshot {
        name,
        count,
        sum,
        max,
        p50,
        p95,
        p99,
        buckets,
    })
}

fn parse_span(item: &JsonValue, index: usize) -> Result<SpanSnapshot, SnapshotError> {
    let at = format!("spans[{index}]");
    let path = match item.get("path").and_then(JsonValue::as_str) {
        Some(s) if !s.is_empty() => s.to_owned(),
        _ => return schema_err(&format!("{at}.path"), "missing or empty path"),
    };
    let count = field_u64(item, &at, "count")?;
    let total_ns = field_u64(item, &at, "total_ns")?;
    let child_ns = field_u64(item, &at, "child_ns")?;
    if count == 0 {
        return schema_err(&format!("{at}.count"), "span count must be nonzero");
    }
    if child_ns > total_ns {
        return schema_err(
            &format!("{at}.child_ns"),
            format!("child time {child_ns}ns exceeds total {total_ns}ns"),
        );
    }
    Ok(SpanSnapshot {
        path,
        count,
        total_ns,
        child_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ObsSnapshot {
        let mut r = MetricsRegistry::new();
        r.counter_add("value_tree.inserts", 120);
        r.counter_add("routing.scans_routed", 7);
        r.gauge_set("replication.nash_surplus", 0.1 + 0.2);
        r.gauge_set("cluster.total_cost", -1e-12);
        r.record("cluster.query_latency_ns", 1_500);
        r.record("cluster.query_latency_ns", 3_000);
        r.record("fragment.greedy_ns", 900);
        r.span_add("pipeline", 10_000, 6_000);
        r.span_add("pipeline/provision", 6_000, 0);
        ObsSnapshot::capture(
            &r,
            vec![
                ("workload".to_owned(), "bernoulli".to_owned()),
                ("seed".to_owned(), "42".to_owned()),
            ],
        )
    }

    #[test]
    fn round_trip_is_lossless() {
        let snap = sample_snapshot();
        let text = snap.to_json_string();
        let parsed = ObsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(parsed, snap);
        // Emitting again yields byte-identical output: no float drift.
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn awkward_floats_round_trip_exactly() {
        let mut r = MetricsRegistry::new();
        for (name, v) in [
            ("a", 0.1_f64 + 0.2),
            ("b", 1e-12),
            ("c", -0.0),
            ("d", f64::MAX),
            ("e", f64::MIN_POSITIVE),
            ("f", 1.0 / 3.0),
        ] {
            r.gauge_set(name, v);
        }
        let snap = ObsSnapshot::capture(&r, Vec::new());
        let parsed = ObsSnapshot::from_json_str(&snap.to_json_string()).unwrap();
        for ((_, orig), (_, back)) in snap.gauges.iter().zip(&parsed.gauges) {
            assert_eq!(orig.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("value_tree.inserts"), Some(120));
        assert_eq!(snap.counter("missing"), None);
        assert!(snap.gauge("replication.nash_surplus").is_some());
        assert_eq!(
            snap.histogram("cluster.query_latency_ns").map(|h| h.count),
            Some(2)
        );
        assert_eq!(snap.span("pipeline").map(|s| s.count), Some(1));
    }

    #[test]
    fn missing_stages_reports_uncovered_prefixes() {
        let snap = sample_snapshot();
        let missing = snap.missing_stages(&[
            "value_tree.",
            "fragment.",
            "replication.",
            "routing.",
            "cluster.",
            "transition.",
            "packing.",
        ]);
        assert_eq!(missing, vec!["transition.", "packing."]);
    }

    #[test]
    fn scrub_zeroes_wall_clock_but_keeps_sim_time() {
        let mut snap = sample_snapshot();
        snap.scrub_timings();
        for s in &snap.spans {
            assert_eq!(s.total_ns, 0);
            assert_eq!(s.child_ns, 0);
            assert!(s.count > 0);
        }
        // Wall-clock histogram collapsed, count preserved.
        let g = snap.histogram("fragment.greedy_ns").unwrap();
        assert_eq!(g.count, 1);
        assert_eq!(g.max, 0);
        assert_eq!(g.buckets, vec![(0, 1)]);
        // Sim-time latency histogram untouched.
        let lat = snap.histogram("cluster.query_latency_ns").unwrap();
        assert_eq!(lat.sum, 4_500);
        // Scrubbed snapshots still pass validation and stay deterministic.
        let text = snap.to_json_string();
        let parsed = ObsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn validation_rejects_schema_violations() {
        let good = sample_snapshot().to_json_string();
        let cases: Vec<(String, &str)> = vec![
            (good.replace("\"version\": 1", "\"version\": 99"), "version"),
            (
                good.replace("\"total_ns\": 10000", "\"total_ns\": 100"),
                "child_ns exceeds total",
            ),
            (
                good.replace("\"counters\": {", "\"counters\": {\n    \"bad\": -1,"),
                "negative counter",
            ),
            (good.replace("\"spans\"", "\"zpans\""), "missing spans"),
        ];
        for (text, why) in cases {
            assert!(
                ObsSnapshot::from_json_str(&text).is_err(),
                "should reject: {why}"
            );
        }
        assert!(matches!(
            ObsSnapshot::from_json_str("not json"),
            Err(SnapshotError::Json(_))
        ));
    }

    #[test]
    fn validation_rejects_bucket_mismatch() {
        let mut snap = sample_snapshot();
        snap.histograms[0].count += 1;
        let err = ObsSnapshot::from_json_str(&snap.to_json_string()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema { .. }), "{err}");
    }
}
