//! A minimal JSON value model, emitter, and parser.
//!
//! The observability crate keeps the workspace rule that `nashdb-core` and
//! its neighbours take no external dependencies, so snapshot serialization
//! is hand-rolled here. The emitter is deliberately deterministic:
//!
//! - object keys are emitted in the order they were inserted (callers build
//!   objects from `BTreeMap` iteration, so the order is sorted and stable),
//! - `u64` metrics are emitted as plain integers, never floats,
//! - `f64` values use Rust's shortest round-trip formatting (`{:?}`), which
//!   always includes a `.` or an exponent and parses back to the identical
//!   bit pattern — two snapshots of the same run diff byte-for-byte clean.

use std::fmt::Write as _;

/// A parsed or to-be-emitted JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits in `u64` (the common case for
    /// counters, bucket counts, and nanosecond totals).
    UInt(u64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list (emission preserves order).
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::UInt(v) => Some(v as f64),
            JsonValue::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => write_f64(out, *v),
            JsonValue::Str(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_json_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Writes a float in shortest round-trip form, normalised so it is always a
/// valid JSON number (`NaN`/infinite inputs become `null`, which the
/// snapshot layer filters out before emission).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` on f64 is the shortest string that parses back exactly and
        // always carries a '.' or exponent, so it cannot collide with the
        // integer formatting used for UInt.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Recursion guard: snapshots nest a handful of levels; anything deeper is
/// a malformed input, not a legitimate document.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_literal("true") {
                    Ok(JsonValue::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped on ASCII
                // delimiters, so this slice lies on char boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: decode \uD8xx\uDCxx sequences.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // This slice is all ASCII so the conversion cannot fail.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Float(v)),
            _ => Err(JsonError {
                offset: start,
                message: format!("invalid number '{text}'"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_then_parse_round_trips() {
        let value = JsonValue::Object(vec![
            ("name".to_owned(), JsonValue::Str("smoke".to_owned())),
            ("count".to_owned(), JsonValue::UInt(42)),
            ("big".to_owned(), JsonValue::UInt(u64::MAX)),
            ("ratio".to_owned(), JsonValue::Float(0.1 + 0.2)),
            ("tiny".to_owned(), JsonValue::Float(1e-12)),
            ("neg".to_owned(), JsonValue::Float(-3.5)),
            ("flag".to_owned(), JsonValue::Bool(true)),
            ("nothing".to_owned(), JsonValue::Null),
            (
                "items".to_owned(),
                JsonValue::Array(vec![
                    JsonValue::UInt(1),
                    JsonValue::Str("a\n\"b\"".to_owned()),
                ]),
            ),
            ("empty_obj".to_owned(), JsonValue::Object(vec![])),
            ("empty_arr".to_owned(), JsonValue::Array(vec![])),
        ]);
        let text = value.to_pretty_string();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn emission_is_deterministic() {
        let value = JsonValue::Object(vec![
            ("x".to_owned(), JsonValue::Float(1.0 / 3.0)),
            ("y".to_owned(), JsonValue::UInt(7)),
        ]);
        assert_eq!(value.to_pretty_string(), value.to_pretty_string());
    }

    #[test]
    fn floats_never_collide_with_ints() {
        // A float that happens to be integral still prints with a dot, so
        // parsing recovers the same variant that was emitted.
        let mut out = String::new();
        write_f64(&mut out, 5.0);
        assert_eq!(out, "5.0");
        assert_eq!(parse("5.0").unwrap(), JsonValue::Float(5.0));
        assert_eq!(parse("5").unwrap(), JsonValue::UInt(5));
    }

    #[test]
    fn u64_max_survives_round_trip() {
        let text = JsonValue::UInt(u64::MAX).to_pretty_string();
        assert_eq!(parse(&text).unwrap(), JsonValue::UInt(u64::MAX));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = parse(r#""a\tbé😀""#).unwrap();
        assert_eq!(parsed, JsonValue::Str("a\tb\u{e9}\u{1F600}".to_owned()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "01x", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"a": 1, "b": "s", "c": [2.5]}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("s"));
        let arr = v.get("c").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(2.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("a"), None);
    }
}
