//! Log-bucketed histograms of unsigned samples.
//!
//! Buckets are powers of two: bucket 0 holds the value 0 and bucket `b ≥ 1`
//! holds `2^(b-1) ..= 2^b - 1` (the values whose bit length is `b`), so a
//! `u64` sample always lands in one of 65 buckets. Recording is O(1) with no
//! allocation, merging is element-wise addition, and quantiles are estimated
//! from the cumulative bucket counts (exact for the maximum, within one
//! power of two otherwise) — the same scheme HdrHistogram-style recorders
//! use for latency tracking, reduced to what the pipeline needs.

/// Number of buckets: one for zero plus one per possible bit length.
pub const NUM_BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (see the module docs for the
/// bucket layout).
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("nonzero_buckets", &self.nonzero_buckets().count())
            .finish()
    }
}

/// The bucket a value falls in: 0 for the value 0, else its bit length.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `(low, high)` value range of bucket `index`.
///
/// # Panics
/// Panics if `index >= NUM_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket {index} out of range");
    if index == 0 {
        (0, 0)
    } else if index == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (index - 1), (1 << index) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample (0 if empty). Exact unless `sum` saturated.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one. Equivalent to having recorded
    /// both sample streams into a single histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `(bucket_index, sample_count)` pairs of every populated bucket,
    /// in ascending bucket order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The `p`-th percentile (`0.0..=100.0`) by nearest rank over the bucket
    /// counts: the inclusive upper bound of the bucket holding that rank,
    /// clamped to the exact maximum. `None` if empty.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target_rank = ((p / 100.0) * self.count as f64).ceil().max(1.0);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative as f64 >= target_rank {
                return Some(bucket_bounds(i).1.min(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        // Every bucket's bounds agree with bucket_index at both ends.
        for b in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_index(lo), b, "low bound of bucket {b}");
            assert_eq!(bucket_index(hi), b, "high bound of bucket {b}");
            assert!(lo <= hi);
        }
        // Buckets tile the u64 range with no gaps.
        for b in 1..NUM_BUCKETS {
            assert_eq!(bucket_bounds(b - 1).1.wrapping_add(1), bucket_bounds(b).0);
        }
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 202.2).abs() < 1e-9);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // 0 -> bucket 0; 1 -> bucket 1; 5,5 -> bucket 3; 1000 -> bucket 10.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (10, 1)]);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let samples_a = [3u64, 17, 17, 900, 0];
        let samples_b = [1u64, 64, 1 << 40];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for &v in &samples_a {
            a.record(v);
            all.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 8);
        assert_eq!(a.max(), 1 << 40);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);

        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 rank is 500, bucket 9 (256..=511): estimate 511.
        assert_eq!(h.quantile(50.0), Some(511));
        // p100 is the exact max.
        assert_eq!(h.quantile(100.0), Some(1000));
        // p99 rank is 990, bucket 10 (512..=1023) clamped to max 1000.
        assert_eq!(h.quantile(99.0), Some(1000));
        // p0 clamps the rank to 1: bucket 1 holds value 1.
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(Histogram::new().quantile(50.0), None);
    }

    #[test]
    fn quantile_single_sample() {
        let mut h = Histogram::new();
        h.record(777);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.quantile(p), Some(777));
        }
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
